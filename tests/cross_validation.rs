//! Cross-validation: the die-level sampler and the host reference
//! sampler implement the same sampling semantics — uniform fanout with
//! replacement — so their outputs must agree statistically.

use beacon_gnn::{GnnModelConfig, HostSampler};
use beacon_graph::{generate, FeatureTable, NodeId};
use beacongnn::flash::sampler::{DieSampler, GnnDieConfig, SampleCommand};
use directgraph::{build::DirectGraphBuilder, AddrLayout, DirectGraph};
use std::collections::HashMap;

fn build_dg(graph: &beacon_graph::CsrGraph, feat_dim: usize, seed: u64) -> DirectGraph {
    let features = FeatureTable::synthetic(graph.num_nodes(), feat_dim, seed);
    DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
        .build(graph, &features)
        .unwrap()
}

/// Runs one full die-sampler cascade from `target` and returns visit
/// counts per node.
fn die_cascade(dg: &DirectGraph, sampler: &mut DieSampler, target: NodeId) -> HashMap<NodeId, u64> {
    let addr = dg.directory().primary_addr(target).unwrap();
    let mut frontier = vec![SampleCommand::root(addr, 0)];
    let mut visits: HashMap<NodeId, u64> = HashMap::new();
    while let Some(cmd) = frontier.pop() {
        let out = sampler.execute(&cmd, dg.image()).unwrap();
        if let Some(v) = out.visited {
            *visits.entry(v).or_insert(0) += 1;
        }
        frontier.extend(out.new_commands);
    }
    visits
}

#[test]
fn both_samplers_visit_subgraph_node_counts() {
    let graph = generate::uniform(500, 10, 3);
    let dg = build_dg(&graph, 16, 3);
    let model = GnnModelConfig::paper_default(16);
    let cfg = GnnDieConfig {
        num_hops: 3,
        fanout: 3,
        feature_bytes: 32,
    };

    let mut host = HostSampler::new(model, 7);
    let mut die = DieSampler::new(cfg, 7);
    for t in (0..100u32).map(NodeId::new) {
        let sg = host.sample_subgraph(&graph, t);
        let visits = die_cascade(&dg, &mut die, t);
        let die_total: u64 = visits.values().sum();
        assert_eq!(sg.len() as u64, model.subgraph_nodes());
        assert_eq!(die_total, model.subgraph_nodes());
    }
}

#[test]
fn hop1_marginal_distribution_is_uniform_over_neighbors() {
    // Sample hop-1 neighbors of one node many times through the die
    // sampler; each neighbor should be hit ~uniformly. Draws are keyed
    // on (run seed, command content), so re-issuing the same command
    // under one seed deterministically repeats — the statistical
    // ensemble is over *run seeds*, exactly like a seed sweep.
    let graph = generate::uniform(50, 8, 5);
    let dg = build_dg(&graph, 8, 5);
    let cfg = GnnDieConfig {
        num_hops: 1,
        fanout: 1,
        feature_bytes: 16,
    };
    let target = NodeId::new(0);
    let neighbors = graph.neighbors(target);
    let mut counts: HashMap<NodeId, u64> = HashMap::new();
    let trials = 16_000u64;
    for trial in 0..trials {
        let mut die = DieSampler::new(cfg, 0xC0FFEE ^ trial);
        let visits = die_cascade(&dg, &mut die, target);
        for (v, c) in visits {
            if v != target {
                *counts.entry(v).or_insert(0) += c;
            }
        }
    }
    // The generator samples neighbors with replacement, so a node can
    // appear multiple times in N(0); expected hits scale with
    // multiplicity.
    let mut multiplicity: HashMap<NodeId, u64> = HashMap::new();
    for &nb in neighbors {
        *multiplicity.entry(nb).or_insert(0) += 1;
    }
    for (&nb, &mult) in &multiplicity {
        let expect = trials as f64 * mult as f64 / neighbors.len() as f64;
        let c = *counts.get(&nb).unwrap_or(&0) as f64;
        let dev = (c - expect).abs() / expect;
        assert!(
            dev < 0.15,
            "neighbor {nb} hit {c} vs expected {expect} (dev {dev:.3})"
        );
    }
    // Nothing outside the neighbor list was visited at hop 1.
    for v in counts.keys() {
        assert!(neighbors.contains(v), "{v} is not a neighbor");
    }
}

#[test]
fn overflow_nodes_sample_across_full_neighbor_range() {
    // A node whose neighbors spill into secondary sections must still
    // sample from the *entire* range (paper §V-A), so late-index
    // neighbors (stored in secondaries) must be reachable.
    let mut b = beacon_graph::CsrGraphBuilder::new(4_000);
    // Node 0 has 3500 neighbors: indices 1..=3500.
    for i in 1..=3_500u32 {
        b.add_edge(NodeId::new(0), NodeId::new(i));
    }
    // Give other nodes one neighbor so sampling can proceed.
    for i in 1..4_000u32 {
        b.add_edge(NodeId::new(i), NodeId::new(0));
    }
    let graph = b.build();
    let dg = build_dg(&graph, 64, 9);

    // Confirm node 0 actually has secondaries.
    let p = dg
        .image()
        .parse_section(dg.directory().primary_addr(NodeId::new(0)).unwrap())
        .unwrap();
    let p = p.as_primary().unwrap().clone();
    assert!(
        !p.secondary_addrs.is_empty(),
        "test needs overflow neighbors"
    );
    let inline = p.inline_count() as u32;

    let cfg = GnnDieConfig {
        num_hops: 1,
        fanout: 8,
        feature_bytes: 128,
    };
    // Content-keyed draws repeat under one seed; sweep seeds to give
    // each trial an independent draw stream.
    let mut saw_overflow = false;
    for trial in 0..400u64 {
        let mut die = DieSampler::new(cfg, 13 + trial);
        let visits = die_cascade(&dg, &mut die, NodeId::new(0));
        if visits.keys().any(|v| v.as_u32() > inline) {
            saw_overflow = true;
            break;
        }
    }
    assert!(
        saw_overflow,
        "sampler never reached secondary-section neighbors"
    );
}

#[test]
fn subgraph_reconstruction_matches_die_stream() {
    // Reconstruct subgraphs from the die sampler's (parent, child)
    // stream and verify tree shape.
    use beacon_gnn::subgraph::{Subgraph, VisitRecord};

    let graph = generate::uniform(300, 6, 21);
    let dg = build_dg(&graph, 8, 21);
    let cfg = GnnDieConfig {
        num_hops: 2,
        fanout: 2,
        feature_bytes: 16,
    };
    let mut die = DieSampler::new(cfg, 3);
    let target = NodeId::new(42);
    let addr = dg.directory().primary_addr(target).unwrap();

    let mut records = Vec::new();
    let mut frontier = vec![SampleCommand::root(addr, 0)];
    while let Some(cmd) = frontier.pop() {
        let out = die.execute(&cmd, dg.image()).unwrap();
        if let Some(v) = out.visited {
            records.push(VisitRecord {
                node: v,
                hop: cmd.hop,
                parent: (cmd.parent != SampleCommand::NO_PARENT).then(|| NodeId::new(cmd.parent)),
            });
        }
        frontier.extend(out.new_commands);
    }
    let sg = Subgraph::reconstruct(&records).expect("stream reconstructs");
    assert_eq!(sg.target(), target);
    assert_eq!(sg.len(), records.len());
    assert_eq!(sg.len() as u64, 1 + 2 + 4); // 2 hops x fanout 2
    assert!(sg.depth() <= 2);
}
