//! Regression tests pinning the paper's figure *shapes* at fast test
//! scale, so calibration drift that would break a reproduced trend
//! fails CI rather than silently corrupting EXPERIMENTS.md.

use beacongnn::{Dataset, Experiment, Platform, SsdConfig, Workload};

fn quick_workload() -> Workload {
    Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(3_000)
        .batch_size(64)
        .batches(2)
        .seed(11)
        .prepare()
        .expect("workload prepares")
}

fn tput(w: &Workload, p: Platform, ssd: SsdConfig) -> f64 {
    Experiment::new(w).ssd(ssd).run(p).throughput()
}

#[test]
fn fig18b_shape_bandwidth() {
    // BG-SP is firmware-capped: channel bandwidth barely matters.
    // BG-1 gains from 333 -> 800 MB/s (page transfer is its bottleneck).
    let w = quick_workload();
    let slow = SsdConfig::paper_default().with_channel_bandwidth(333_000_000);
    let fast = SsdConfig::paper_default().with_channel_bandwidth(2_400_000_000);
    let sp_gain = tput(&w, Platform::BgSp, fast) / tput(&w, Platform::BgSp, slow);
    let bg1_gain = tput(&w, Platform::Bg1, fast) / tput(&w, Platform::Bg1, slow);
    assert!(
        sp_gain < 1.15,
        "BG-SP should be bandwidth-insensitive, got {sp_gain:.2}x"
    );
    assert!(
        bg1_gain > 1.2,
        "BG-1 should gain from bandwidth, got {bg1_gain:.2}x"
    );
}

#[test]
fn fig18e_shape_dies() {
    // Page-granular platforms cannot exploit more dies (the channel is
    // already saturated at 2 dies); BG-2 can.
    let w = quick_workload();
    let few = SsdConfig::paper_default().with_dies_per_channel(2);
    let many = SsdConfig::paper_default().with_dies_per_channel(16);
    let bg1_gain = tput(&w, Platform::Bg1, many) / tput(&w, Platform::Bg1, few);
    let bg2_gain = tput(&w, Platform::Bg2, many) / tput(&w, Platform::Bg2, few);
    assert!(
        bg1_gain < 1.1,
        "BG-1 die scaling should be flat, got {bg1_gain:.2}x"
    );
    assert!(
        bg2_gain > 1.2,
        "BG-2 should scale with dies, got {bg2_gain:.2}x"
    );
}

#[test]
fn fig18f_shape_page_size() {
    // BG-1 prefers small pages (less read amplification); BG-2 is
    // insensitive (it never moves whole pages).
    let small = Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(3_000)
        .batch_size(64)
        .batches(2)
        .seed(11)
        .page_size(2048)
        .prepare()
        .unwrap();
    let large = Workload::builder()
        .dataset(Dataset::Amazon)
        .nodes(3_000)
        .batch_size(64)
        .batches(2)
        .seed(11)
        .page_size(16384)
        .prepare()
        .unwrap();
    let bg1_ratio = Experiment::new(&small).run(Platform::Bg1).throughput()
        / Experiment::new(&large).run(Platform::Bg1).throughput();
    let bg2_ratio = Experiment::new(&small).run(Platform::Bg2).throughput()
        / Experiment::new(&large).run(Platform::Bg2).throughput();
    assert!(
        bg1_ratio > 2.0,
        "BG-1 should strongly prefer small pages, got {bg1_ratio:.2}x"
    );
    // BG-2 is near-insensitive (within ±30% at this small scale, vs
    // BG-1's >2x swing); the mild preference for large pages comes from
    // fewer secondary-section reads.
    assert!(
        (0.7..=1.3).contains(&bg2_ratio),
        "BG-2 should be page-size-insensitive, got {bg2_ratio:.2}x"
    );
}

#[test]
fn fig15_shape_barrier_valleys() {
    // BG-SP's die-activity curve has deep valleys at hop barriers; the
    // out-of-order BG-DGSP runs much steadier. Compare coefficients of
    // variation of the per-slice active-die curves.
    let w = quick_workload();
    let cov = |p: Platform| {
        let m = Experiment::new(&w).run(p);
        let end = simkit::SimTime::ZERO + m.prep_time;
        let curve = m.die_timeline.curve(simkit::Duration::from_us(20), end);
        let mean = curve.iter().sum::<f64>() / curve.len() as f64;
        let var = curve.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / curve.len() as f64;
        var.sqrt() / mean.max(1e-9)
    };
    let sp = cov(Platform::BgSp);
    let dgsp = cov(Platform::BgDgsp);
    assert!(
        sp > dgsp * 1.2,
        "BG-SP CoV {sp:.2} should exceed BG-DGSP {dgsp:.2}"
    );
}

#[test]
fn fig17_shape_bg2_shortens_lifetimes() {
    let w = quick_workload();
    let dgsp = Experiment::new(&w).run(Platform::BgDgsp);
    let bg2 = Experiment::new(&w).run(Platform::Bg2);
    let cut = 1.0 - bg2.cmd_breakdown.mean_lifetime_ns() / dgsp.cmd_breakdown.mean_lifetime_ns();
    assert!(
        cut > 0.2,
        "BG-2 should cut command lifetime vs BG-DGSP, got {:.0}%",
        cut * 100.0
    );
    // Flash-proper time stays a small slice on both.
    let (_, f1, _) = dgsp.cmd_breakdown.fractions();
    let (_, f2, _) = bg2.cmd_breakdown.fractions();
    assert!(f1 < 0.2 && f2 < 0.2, "flash fractions {f1:.2}/{f2:.2}");
}

#[test]
fn fig7a_shape_is_stable() {
    use beacongnn::flash::FlashTiming;
    use beacongnn::platforms::motivation::die_scaling_sweep;
    let sweep = die_scaling_sweep(&FlashTiming::ull(), 8, 4096, 100);
    let gain = sweep[7].throughput / sweep[0].throughput;
    let lat = sweep[7].avg_latency.as_ns() as f64 / sweep[0].avg_latency.as_ns() as f64;
    assert!((1.3..=1.8).contains(&gain), "throughput gain {gain:.2}");
    assert!(lat > 4.0, "latency blow-up {lat:.1}");
}

#[test]
fn energy_shape_staging_dominates_bg1() {
    use beacongnn::energy::EnergyCosts;
    let w = quick_workload();
    let m = Experiment::new(&w).run(Platform::Bg1);
    let b = m.energy.breakdown(&EnergyCosts::default_costs());
    assert!(
        b.staging_fraction() > 0.5,
        "BG-1 should spend most energy staging pages, got {:.0}%",
        b.staging_fraction() * 100.0
    );
    let m2 = Experiment::new(&w).run(Platform::Bg2);
    let b2 = m2.energy.breakdown(&EnergyCosts::default_costs());
    assert!(
        b2.flash_backend_fraction() > 0.5,
        "BG-2 energy should concentrate in the flash backend, got {:.0}%",
        b2.flash_backend_fraction() * 100.0
    );
}
