//! Integration tests for the `beacongnn` command-line tool.

use std::process::Command;

fn beacongnn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_beacongnn"))
}

#[test]
fn convert_then_inspect_roundtrip() {
    let dir = std::env::temp_dir().join(format!("beacongnn-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dgr = dir.join("ogbn.dgr");

    let out = beacongnn()
        .args(["convert", "--dataset", "ogbn", "--nodes", "800", "--out"])
        .arg(&dgr)
        .output()
        .expect("convert runs");
    assert!(
        out.status.success(),
        "convert failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dgr.exists());

    let out = beacongnn()
        .arg("inspect")
        .arg(&dgr)
        .output()
        .expect("inspect runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("800"), "node count shown: {stdout}");
    assert!(stdout.contains("passes"), "validation reported: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_reports_metrics() {
    let out = beacongnn()
        .args([
            "run",
            "--dataset",
            "amazon",
            "--nodes",
            "1000",
            "--batch",
            "8",
            "--batches",
            "1",
            "--platform",
            "BG-2",
        ])
        .output()
        .expect("run executes");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("throughput"));
    assert!(stdout.contains("BG-2"));
}

#[test]
fn compare_lists_all_platforms() {
    let out = beacongnn()
        .args([
            "compare",
            "--dataset",
            "movielens",
            "--nodes",
            "800",
            "--batch",
            "8",
        ])
        .output()
        .expect("compare executes");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for p in [
        "CC",
        "SmartSage",
        "GList",
        "BG-1",
        "BG-DG",
        "BG-SP",
        "BG-DGSP",
        "BG-2",
    ] {
        assert!(stdout.contains(p), "missing {p} in: {stdout}");
    }
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = beacongnn().arg("frobnicate").output().expect("executes");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn missing_dataset_flag_is_an_error() {
    let out = beacongnn()
        .args(["run", "--nodes", "100"])
        .output()
        .expect("executes");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--dataset"));
}
