//! Record-once / replay-many determinism: replaying a cascade recording
//! must be **byte-identical** to the full execution path — same metrics
//! registry JSON for every cell, at every worker count — and the disk
//! layer must round-trip recordings across cache instances. These are
//! the invariants that make replay a pure performance decision.

use std::sync::Arc;

use beacongnn::{
    Dataset, ParallelRunner, Platform, ReplayCache, RunCell, RunMatrix, SsdConfig, Workload,
};
use proptest::prelude::*;

fn workload(nodes: usize, batch: usize, seed: u64) -> Arc<Workload> {
    Arc::new(
        Workload::builder()
            .dataset(Dataset::Amazon)
            .nodes(nodes)
            .batch_size(batch)
            .batches(2)
            .seed(seed)
            .prepare()
            .unwrap(),
    )
}

/// A fig14-style platform comparison crossed with a fig18-style device
/// sweep, all sharing one workload: the shape the replay cache exists
/// for (one cascade, many timings).
fn figure_style_matrix(w: &Arc<Workload>) -> RunMatrix {
    let mut m = RunMatrix::new();
    m.add_platforms(&[Platform::Cc, Platform::Bg1, Platform::Bg2], w);
    for &cores in &[2usize, 8] {
        let ssd = SsdConfig::paper_default().with_cores(cores);
        m.push(RunCell::new(Platform::Bg2, Arc::clone(w)).ssd(ssd));
    }
    m
}

fn registries(results: &[beacongnn::RunMetrics]) -> Vec<String> {
    results
        .iter()
        .map(|m| m.metrics_registry().to_json_string())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full-run vs replay byte identity over the figure-style matrix at
    /// jobs 1, 2 and 8, across workload shapes and seeds.
    #[test]
    fn replay_is_byte_identical_at_every_jobs_count(
        nodes in 300usize..900,
        batch in 4usize..12,
        seed in 0u64..1_000,
    ) {
        let w = workload(nodes, batch, seed);
        let matrix = figure_style_matrix(&w);
        let full = registries(&matrix.run_sequential_with(&ReplayCache::disabled()));
        for jobs in [1usize, 2, 8] {
            let cache = ReplayCache::in_memory();
            let replayed = ParallelRunner::new(jobs).run_with(&matrix, &cache);
            prop_assert_eq!(&full, &registries(&replayed), "jobs={}", jobs);
            let stats = cache.stats();
            prop_assert_eq!(stats.records, 1, "one shared key records once");
            prop_assert_eq!(stats.hits, matrix.len() as u64);
            prop_assert_eq!(stats.fallbacks, 0);
        }
    }
}

#[test]
fn recording_round_trips_through_the_disk_cache() {
    let dir = std::env::temp_dir().join(format!("beacon-replay-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let w = workload(600, 8, 17);
    let matrix = figure_style_matrix(&w);
    let full = registries(&matrix.run_sequential_with(&ReplayCache::disabled()));

    // First "process": records once and persists a brc1- file.
    let first = ReplayCache::with_disk_dir(&dir);
    assert_eq!(first.disk_dir(), Some(dir.as_path()));
    let a = registries(&matrix.run_sequential_with(&first));
    assert_eq!(a, full);
    assert_eq!(first.stats().records, 1);
    assert_eq!(first.stats().disk_hits, 0);

    // Second "process": fresh in-memory map, same directory — must
    // reload the recording instead of re-recording, at any jobs count.
    let second = ReplayCache::with_disk_dir(&dir);
    let b = registries(&ParallelRunner::new(4).run_with(&matrix, &second));
    assert_eq!(b, full);
    let stats = second.stats();
    assert_eq!(stats.records, 0, "recording must come from disk");
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(stats.hits, matrix.len() as u64);

    // Evicting the in-memory entry (keeping the disk file) reloads too.
    second.clear();
    assert!(second.is_empty());
    let c = registries(&matrix.run_sequential_with(&second));
    assert_eq!(c, full);
    assert_eq!(second.stats().disk_hits, 2);
    assert_eq!(second.stats().records, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn key_breaking_cells_fall_back_to_the_full_path() {
    use beacon_graph::FeatureTable;
    // A custom-graph workload has no fingerprint, hence no replay key:
    // its cells must run the untouched full path (and be counted), even
    // when they sit in a matrix next to replayable cells.
    let graph = beacon_graph::DatasetSpec::preset(Dataset::Amazon)
        .at_scale(300)
        .build_graph(5);
    let features = FeatureTable::synthetic(300, 16, 5);
    let custom = Arc::new(
        Workload::builder()
            .custom_graph(graph, features)
            .batch_size(4)
            .batches(1)
            .prepare()
            .unwrap(),
    );
    assert!(custom.fingerprint().is_none());
    let keyed = workload(500, 8, 3);

    let mut matrix = RunMatrix::new();
    matrix.add_platforms(&[Platform::Cc, Platform::Bg2], &keyed);
    matrix.add_platforms(&[Platform::Cc, Platform::Bg2], &custom);

    let full = registries(&matrix.run_sequential_with(&ReplayCache::disabled()));
    let cache = ReplayCache::in_memory();
    let mixed = registries(&matrix.run_sequential_with(&cache));
    assert_eq!(mixed, full);
    let stats = cache.stats();
    assert_eq!(stats.fallbacks, 2, "both custom-graph cells fall back");
    assert_eq!(stats.records, 1);
    assert_eq!(stats.hits, 2);
}

#[test]
fn single_use_keys_skip_recording_unless_already_recorded() {
    let w = workload(500, 8, 29);
    // A seed sweep: every cell has a distinct key, so recording would
    // cost more than it saves — all cells run full.
    let mut sweep = RunMatrix::new();
    sweep.add_seed_sweep(Platform::Bg2, &w, 3);
    let cache = ReplayCache::in_memory();
    let full = registries(&sweep.run_sequential_with(&ReplayCache::disabled()));
    assert_eq!(registries(&sweep.run_sequential_with(&cache)), full);
    let stats = cache.stats();
    assert_eq!(stats.records, 0);
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.fallbacks, 3);

    // But once a recording exists (here: from a multi-cell matrix using
    // the workload's own seed), a later single-cell matrix replays it.
    let mut pair = RunMatrix::new();
    pair.add_platforms(&[Platform::Cc, Platform::Bg2], &w);
    pair.run_sequential_with(&cache);
    assert_eq!(cache.stats().records, 1);
    let mut single = RunMatrix::new();
    single.push(RunCell::new(Platform::Glist, Arc::clone(&w)));
    let lone = registries(&single.run_sequential_with(&cache));
    assert_eq!(
        lone,
        registries(&single.run_sequential_with(&ReplayCache::disabled()))
    );
    assert_eq!(cache.stats().records, 1, "no re-record for a cached key");
    assert_eq!(cache.stats().hits, 3);
}

#[test]
fn disabled_cache_never_records_or_counts() {
    let w = workload(400, 4, 11);
    let matrix = figure_style_matrix(&w);
    let cache = ReplayCache::disabled();
    assert!(!cache.is_active());
    matrix.run_sequential_with(&cache);
    assert_eq!(cache.stats(), Default::default());
    assert!(cache.is_empty());
}
