//! Full-system test spanning every crate: the §VI lifecycle of a
//! BeaconGNN deployment.
//!
//! 1. Synthesize a dataset and convert it to DirectGraph (§VI-B).
//! 2. Stand up a device (FTL) and run the host setup over NVMe:
//!    reserve blocks, validate, flush (§VI-A, §VI-E).
//! 3. Launch verified mini-batches (§VI-D) and simulate them end-to-end
//!    on BG-2.
//! 4. Age the flash, scrub it (§VI-F), wear the regular pool, reclaim
//!    (wear-leveling migration with address rewrite).
//! 5. Re-run the *same* batches on the migrated image and check the
//!    platform still produces identical functional work.

use beacongnn::flash::{FlashGeometry, ReliabilityModel};
use beacongnn::platforms::Engine;
use beacongnn::ssd::reliability::{reclaim_if_needed, ReclamationOutcome, Scrubber};
use beacongnn::ssd::{Ftl, HostAdapter};
use beacongnn::{Dataset, Platform, SsdConfig, Workload};
use simkit::Duration;

#[test]
fn full_deployment_lifecycle() {
    // 1. Prepare.
    let mut workload = Workload::builder()
        .dataset(Dataset::Ogbn)
        .nodes(2_000)
        .batch_size(16)
        .batches(2)
        .seed(77)
        .prepare()
        .expect("workload prepares");
    let pages = workload.directgraph().image().pages_written();

    // 2. Host setup over NVMe against a device FTL.
    let geo = FlashGeometry {
        channels: 4,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 64,
        pages_per_block: 32,
        page_size: 4096,
    };
    let mut host = HostAdapter::new(Ftl::new(&geo, 0.1), geo.pages_per_block);
    host.setup_directgraph(workload.directgraph())
        .expect("setup succeeds");
    assert_eq!(host.flushed_pages(), pages as u64);

    // 3. Launch verified batches and simulate them.
    for batch in workload.batches() {
        let targets: Vec<_> = batch
            .iter()
            .map(|&v| {
                (
                    v,
                    workload.directgraph().directory().primary_addr(v).unwrap(),
                )
            })
            .collect();
        host.start_batch(workload.directgraph(), &targets)
            .expect("batch verifies");
    }
    assert_eq!(host.batches_started(), 2);

    let before = Engine::new(
        Platform::Bg2,
        SsdConfig::paper_default(),
        workload.model(),
        workload.directgraph(),
        workload.seed(),
    )
    .run(workload.batches());
    assert!(before.throughput() > 0.0);

    // 4. Age + scrub, then wear the regular pool and reclaim.
    let mut scrubber = Scrubber::new(
        ReliabilityModel::z_nand(4096, 7).with_rber(1e-5),
        geo.pages_per_block,
    );
    let report = scrubber.scrub_pass(workload.directgraph(), Duration::from_secs(90 * 86_400));
    assert_eq!(
        report.pages_uncorrectable, 0,
        "scrubbing must not lose data"
    );

    let mut blocks = host.reserved_blocks().to_vec();
    {
        let ftl = host.ftl_mut();
        let logical = ftl.logical_pages() * 6 / 10;
        for _ in 0..6 {
            for lpa in 0..logical {
                ftl.write(lpa).expect("regular churn");
            }
        }
    }
    let outcome = reclaim_if_needed(
        workload.directgraph_mut(),
        host.ftl_mut(),
        &mut blocks,
        0.5,
        1 << 16,
        geo.pages_per_block,
    )
    .expect("reclamation runs");
    assert!(
        matches!(outcome, ReclamationOutcome::Migrated { .. }),
        "churn should trigger migration, got {outcome:?}"
    );

    // 5. The migrated image still validates and produces the same
    // functional work under the same seeds.
    beacongnn::directgraph::Validator::new(workload.directgraph())
        .verify_image()
        .expect("migrated image validates");
    let after = Engine::new(
        Platform::Bg2,
        SsdConfig::paper_default(),
        workload.model(),
        workload.directgraph(),
        workload.seed(),
    )
    .run(workload.batches());
    assert_eq!(
        after.nodes_visited, before.nodes_visited,
        "same sampling work after migration"
    );
    assert_eq!(after.targets, before.targets);
    // Timing may shift slightly (pages moved to different dies), but
    // the run must stay in the same regime.
    let ratio = after.throughput() / before.throughput();
    assert!(
        (0.5..=2.0).contains(&ratio),
        "throughput regime shifted {ratio:.2}x"
    );
}
