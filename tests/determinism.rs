//! Parallel-execution determinism regression tests.
//!
//! The contract under test: a [`RunMatrix`] produces byte-identical
//! metrics at any `jobs` count, and its cells reproduce the legacy
//! sequential [`Experiment`] path exactly. Every schedule-dependent
//! leak (seed derived from execution order, shared mutable state,
//! result-slot races) breaks one of these assertions.

use std::sync::Arc;

use beacongnn::energy::EnergyLedger;
use beacongnn::{Experiment, ParallelRunner, Platform, RunCell, RunMatrix, RunMetrics, Workload};

const SEEDS: [u64; 3] = [3, 2024, 0xBEAC];

fn workload(seed: u64) -> Arc<Workload> {
    Arc::new(
        Workload::builder()
            .nodes(1_500)
            .batch_size(24)
            .batches(2)
            .seed(seed)
            .prepare()
            .expect("workload prepares"),
    )
}

/// Everything deterministic about one run: timing, energy accounting,
/// and the functionally sampled subgraph.
#[derive(Debug, PartialEq)]
struct Signature {
    platform: &'static str,
    makespan_ns: u64,
    prep_ns: u64,
    nodes_visited: u64,
    flash_reads: u64,
    sampler_faults: u64,
    energy: EnergyLedger,
}

fn signature(m: &RunMetrics) -> Signature {
    Signature {
        platform: m.platform,
        makespan_ns: m.makespan.as_ns(),
        prep_ns: m.prep_time.as_ns(),
        nodes_visited: m.nodes_visited,
        flash_reads: m.flash_reads,
        sampler_faults: m.sampler_faults,
        energy: m.energy,
    }
}

fn matrix_for(w: &Arc<Workload>) -> RunMatrix {
    let mut matrix = RunMatrix::new();
    matrix.add_platforms(&[Platform::Cc, Platform::Bg1, Platform::Bg2], w);
    matrix.add_seed_sweep(Platform::Bg2, w, 2);
    matrix
}

#[test]
fn jobs_one_and_four_are_identical_across_seeds() {
    for seed in SEEDS {
        let w = workload(seed);
        let matrix = matrix_for(&w);
        let j1: Vec<Signature> = ParallelRunner::new(1)
            .run(&matrix)
            .iter()
            .map(signature)
            .collect();
        let j4: Vec<Signature> = ParallelRunner::new(4)
            .run(&matrix)
            .iter()
            .map(signature)
            .collect();
        assert_eq!(j1, j4, "jobs=1 vs jobs=4 diverged at workload seed {seed}");
    }
}

#[test]
fn matrix_matches_legacy_sequential_experiment() {
    for seed in SEEDS {
        let w = workload(seed);
        let platforms = [Platform::Cc, Platform::Bg1, Platform::Bg2];
        let mut matrix = RunMatrix::new();
        matrix.add_platforms(&platforms, &w);
        let parallel = matrix.run_parallel(4);
        let exp = Experiment::new(&w);
        for (p, m) in platforms.iter().zip(&parallel) {
            let legacy = exp.run(*p);
            assert_eq!(
                signature(&legacy),
                signature(m),
                "matrix cell diverged from Experiment::run({p:?}) at workload seed {seed}"
            );
        }
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Same matrix, same jobs count, different (nondeterministic)
    // work-stealing schedules: results must still agree, run to run.
    let w = workload(SEEDS[0]);
    let matrix = matrix_for(&w);
    let first: Vec<Signature> = matrix.run_parallel(3).iter().map(signature).collect();
    for _ in 0..2 {
        let again: Vec<Signature> = matrix.run_parallel(3).iter().map(signature).collect();
        assert_eq!(first, again);
    }
}

#[test]
fn seed_sweep_cells_differ_but_reproduce() {
    // The sweep's replicas must explore different TRNG streams (else
    // the sweep measures nothing) yet each replica is reproducible.
    let w = workload(SEEDS[1]);
    let mut matrix = RunMatrix::new();
    matrix.add_seed_sweep(Platform::Bg2, &w, 3);
    let runs = matrix.run_parallel(2);
    assert!(
        runs.windows(2)
            .any(|r| signature(&r[0]) != signature(&r[1])),
        "seed sweep replicas all produced identical runs"
    );
    let again = matrix.run_sequential();
    for (a, b) in runs.iter().zip(&again) {
        assert_eq!(signature(a), signature(b));
    }
}

#[test]
fn sampled_node_counts_are_schedule_independent() {
    // The functional side (which nodes get visited) must not depend on
    // the schedule either — compare across three job counts.
    let w = workload(SEEDS[2]);
    let mut matrix = RunMatrix::new();
    matrix.push(RunCell::new(Platform::Bg2, Arc::clone(&w)));
    matrix.push(RunCell::new(Platform::BgDgsp, Arc::clone(&w)));
    let counts = |jobs: usize| -> Vec<u64> {
        matrix
            .run_parallel(jobs)
            .iter()
            .map(|m| m.nodes_visited)
            .collect()
    };
    let baseline = counts(1);
    assert_eq!(baseline, counts(2));
    assert_eq!(baseline, counts(8));
    assert!(baseline.iter().all(|&n| n > 0));
}
