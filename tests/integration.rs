//! Cross-crate integration tests: the full pipeline from dataset
//! synthesis through DirectGraph conversion, platform simulation, and
//! reporting.

use beacongnn::energy::EnergyCosts;
use beacongnn::{Dataset, Experiment, Platform, Workload};

fn workload(dataset: Dataset, nodes: usize, batch: usize) -> Workload {
    Workload::builder()
        .dataset(dataset)
        .nodes(nodes)
        .batch_size(batch)
        .batches(2)
        .seed(17)
        .prepare()
        .expect("workload prepares")
}

#[test]
fn every_platform_runs_every_dataset() {
    for dataset in Dataset::ALL {
        let w = workload(dataset, 1_500, 8);
        let exp = Experiment::new(&w);
        for p in Platform::ALL {
            let m = exp.run(p);
            assert_eq!(m.targets, 16, "{dataset} {p}");
            assert!(m.throughput() > 0.0, "{dataset} {p}");
            assert!(m.flash_reads > 0, "{dataset} {p}");
        }
    }
}

#[test]
fn paper_headline_shape_holds() {
    // Paper abstract: up to 27.3x over CC and 11.6x over the
    // state-of-the-art ISC design (on average 21.7x / lower); we assert
    // the conservative shape: BG-2 is many times CC and clearly above
    // BG-1.
    let w = workload(Dataset::Amazon, 8_000, 128);
    let exp = Experiment::new(&w);
    let cc = exp.run(Platform::Cc).throughput();
    let bg1 = exp.run(Platform::Bg1).throughput();
    let bg2 = exp.run(Platform::Bg2).throughput();
    assert!(bg2 / cc > 5.0, "BG-2 vs CC = {:.1}x", bg2 / cc);
    assert!(bg2 / bg1 > 2.0, "BG-2 vs BG-1 = {:.1}x", bg2 / bg1);
}

#[test]
fn prior_isc_designs_beat_cc_but_trail_bg2() {
    let w = workload(Dataset::Amazon, 6_000, 64);
    let exp = Experiment::new(&w);
    let norm = exp.normalized_throughput(&[
        Platform::Cc,
        Platform::SmartSage,
        Platform::Glist,
        Platform::Bg2,
    ]);
    assert_eq!(norm[0].1, 1.0);
    assert!(norm[1].1 > 1.0, "SmartSage {:.2}", norm[1].1);
    assert!(norm[2].1 > 1.0, "GList {:.2}", norm[2].1);
    assert!(norm[3].1 > norm[1].1 && norm[3].1 > norm[2].1);
}

#[test]
fn energy_efficiency_ordering() {
    // Fig 19: BG-2 beats CC (9.86x) and BG-1 (4.25x) in work per joule.
    let w = workload(Dataset::Amazon, 6_000, 64);
    let exp = Experiment::new(&w);
    let costs = EnergyCosts::default_costs();
    let eff = |p: Platform| {
        let m = exp.run(p);
        m.energy.breakdown(&costs).efficiency(m.targets)
    };
    let (cc, bg1, bg2) = (eff(Platform::Cc), eff(Platform::Bg1), eff(Platform::Bg2));
    assert!(bg2 > 2.0 * cc, "BG-2/CC efficiency = {:.2}", bg2 / cc);
    assert!(bg2 > 1.5 * bg1, "BG-2/BG-1 efficiency = {:.2}", bg2 / bg1);
}

#[test]
fn bg2_power_stays_under_pcie_budget() {
    // §VII-D: BG-2 averages 13.4 W, far below the 75 W PCIe limit.
    let w = workload(Dataset::Amazon, 6_000, 64);
    let m = Experiment::new(&w).run(Platform::Bg2);
    let power = m
        .energy
        .breakdown(&EnergyCosts::default_costs())
        .avg_power(m.makespan);
    assert!(
        power < 75.0,
        "BG-2 average power {power:.1} W exceeds PCIe budget"
    );
    assert!(power > 0.0);
}

#[test]
fn functional_gnn_agrees_across_sampling_paths() {
    // The same model computed over host-sampled subgraphs must produce
    // finite, nonzero embeddings — and the die-sampler path visits a
    // statistically similar number of nodes.
    use beacon_gnn::{GnnForward, HostSampler};
    use beacongnn::flash::sampler::{DieSampler, GnnDieConfig, SampleCommand};

    let w = workload(Dataset::Ogbn, 2_000, 4);
    let model = w.model();
    let mut host = HostSampler::new(model, 5);
    let forward = GnnForward::new(model, 5);
    let mut host_nodes = 0u64;
    for &t in &w.batches()[0] {
        let sg = host.sample_subgraph(w.graph(), t);
        host_nodes += sg.len() as u64;
        let emb = forward.forward(&sg, w.features());
        assert!(emb.iter().all(|v| v.is_finite()));
    }

    let cfg = GnnDieConfig {
        num_hops: model.hops,
        fanout: model.fanout,
        feature_bytes: model.feature_bytes() as u16,
    };
    let mut die = DieSampler::new(cfg, 5);
    let mut die_nodes = 0u64;
    for &t in &w.batches()[0] {
        let addr = w.directgraph().directory().primary_addr(t).unwrap();
        let mut frontier = vec![SampleCommand::root(addr, 0)];
        while let Some(cmd) = frontier.pop() {
            let out = die.execute(&cmd, w.directgraph().image()).unwrap();
            if out.visited.is_some() {
                die_nodes += 1;
            }
            frontier.extend(out.new_commands);
        }
    }
    // Both paths visit ~40 nodes per target (graph has no zero-degree
    // nodes at this scale).
    let expect = model.subgraph_nodes() * w.batches()[0].len() as u64;
    assert_eq!(host_nodes, expect);
    assert_eq!(die_nodes, expect);
}

#[test]
fn traditional_ssd_compresses_the_gaps() {
    // §VII-E: on a 20 us SSD the BG-2 vs BG-DGSP gap vanishes.
    use beacongnn::SsdConfig;
    let w = workload(Dataset::Amazon, 6_000, 64);
    let exp = Experiment::new(&w).ssd(SsdConfig::traditional());
    let dgsp = exp.run(Platform::BgDgsp).throughput();
    let bg2 = exp.run(Platform::Bg2).throughput();
    let gap = bg2 / dgsp;
    assert!(
        (0.9..=1.25).contains(&gap),
        "on traditional flash BG-2 should roughly tie BG-DGSP, got {gap:.2}x"
    );
}

#[test]
fn report_tables_render() {
    use beacongnn::report::{ratio, Table};
    let w = workload(Dataset::Movielens, 1_000, 8);
    let exp = Experiment::new(&w);
    let mut t = Table::new(&["platform", "vs CC"]);
    for (p, x) in exp.normalized_throughput(&[Platform::Cc, Platform::Bg2]) {
        t.row_owned(vec![p.to_string(), ratio(x)]);
    }
    let s = t.render();
    assert!(s.contains("BG-2") && s.contains("CC"));
}
