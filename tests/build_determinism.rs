//! Cross-thread and cross-process determinism of the workload build
//! pipeline.
//!
//! The build pipeline (graph synthesis → feature synthesis → DirectGraph
//! serialization) runs on `simkit::par` worker threads with fixed chunk
//! boundaries and per-node RNG streams; these tests pin the contract
//! that its output is *byte-identical* at any thread count and across a
//! disk-cache round-trip. `cargo test` runs test functions concurrently
//! and `set_build_threads` is process-global, so each comparison
//! re-sets the thread count immediately before building — the pipeline
//! must hold its contract no matter which value is in effect.

use beacongnn::{Dataset, Workload, WorkloadCache};
use simkit::par;

fn build(dataset: Dataset, threads: usize) -> Workload {
    par::set_build_threads(threads);
    Workload::builder()
        .dataset(dataset)
        .nodes(600)
        .batch_size(16)
        .batches(2)
        .seed(41)
        .prepare()
        .expect("workload prepares")
}

/// The complete observable identity of a workload build.
fn identity(w: &Workload) -> (u64, usize, Vec<u32>, Vec<u32>) {
    let feature_bits: Vec<u32> = w.features().values().iter().map(|v| v.to_bits()).collect();
    let batch_ids: Vec<u32> = w.batches().iter().flatten().map(|v| v.as_u32()).collect();
    (
        w.directgraph().digest(),
        w.directgraph().image().pages_written(),
        feature_bits,
        batch_ids,
    )
}

#[test]
fn every_dataset_builds_identically_at_1_2_and_8_threads() {
    for dataset in Dataset::ALL {
        let reference = build(dataset, 1);
        let ref_id = identity(&reference);
        for threads in [2, 8] {
            let w = build(dataset, threads);
            assert_eq!(
                identity(&w),
                ref_id,
                "{dataset} image diverged at {threads} build threads"
            );
            assert_eq!(
                w.directgraph().directory(),
                reference.directgraph().directory(),
                "{dataset} directory diverged at {threads} build threads"
            );
            assert_eq!(
                w.directgraph().stats(),
                reference.directgraph().stats(),
                "{dataset} stats diverged at {threads} build threads"
            );
            assert_eq!(w.graph(), reference.graph());
        }
    }
    par::set_build_threads(1);
}

#[test]
fn disk_cache_round_trip_is_bit_identical_to_fresh_build() {
    let dir = std::env::temp_dir().join(format!("beacon-build-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let builder = || {
        Workload::builder()
            .dataset(Dataset::Amazon)
            .nodes(900)
            .batch_size(32)
            .batches(2)
            .seed(77)
    };
    let fresh = builder().prepare().unwrap();
    // Populate the cache (build + save), then load from a second cache
    // instance as a different process would.
    WorkloadCache::with_disk_dir(&dir)
        .get_or_prepare(builder())
        .unwrap();
    let loaded = WorkloadCache::with_disk_dir(&dir)
        .get_or_prepare(builder())
        .unwrap();
    assert_eq!(identity(&fresh), identity(&loaded));
    assert_eq!(fresh.graph(), loaded.graph());
    assert_eq!(fresh.spec(), loaded.spec());
    assert_eq!(fresh.model(), loaded.model());
    assert_eq!(fresh.seed(), loaded.seed());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_and_fresh_workloads_simulate_identically() {
    let dir = std::env::temp_dir().join(format!("beacon-build-sim-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let builder = || {
        Workload::builder()
            .dataset(Dataset::Ogbn)
            .nodes(700)
            .batch_size(16)
            .batches(2)
            .seed(13)
    };
    let fresh = std::sync::Arc::new(builder().prepare().unwrap());
    WorkloadCache::with_disk_dir(&dir)
        .get_or_prepare(builder())
        .unwrap();
    let loaded = WorkloadCache::with_disk_dir(&dir)
        .get_or_prepare(builder())
        .unwrap();
    for platform in [beacongnn::Platform::Cc, beacongnn::Platform::Bg2] {
        let a = beacongnn::RunCell::new(platform, std::sync::Arc::clone(&fresh)).execute();
        let b = beacongnn::RunCell::new(platform, std::sync::Arc::clone(&loaded)).execute();
        assert_eq!(
            (a.nodes_visited, a.flash_reads, a.makespan),
            (b.nodes_visited, b.flash_reads, b.makespan),
            "{platform:?} results diverged between fresh and cached workloads"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
