//! Property-based tests over the core data structures and invariants.

use beacon_gnn::{GnnModelConfig, HostSampler};
use beacon_graph::{generate, FeatureTable, NodeId};
use directgraph::{build::DirectGraphBuilder, AddrLayout, Validator};
use proptest::prelude::*;

fn arb_graph_params() -> impl Strategy<Value = (usize, f64, usize, u64)> {
    (50usize..400, 2.0f64..60.0, 1usize..300, 0u64..1_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every DirectGraph built from any generated graph preserves full
    /// neighbor coverage: inline + secondary neighbors equal the CSR
    /// adjacency exactly, in order.
    #[test]
    fn directgraph_preserves_adjacency((n, deg, feat, seed) in arb_graph_params()) {
        let cfg = generate::PowerLawConfig::new(n, deg);
        let graph = generate::power_law(&cfg, seed);
        let features = FeatureTable::synthetic(n, feat, seed);
        let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap();
        // Probe a sample of nodes (full scan is covered by unit tests).
        for v in graph.nodes().step_by((n / 17).max(1)) {
            let addr = dg.directory().primary_addr(v).unwrap();
            let p = dg.image().parse_section(addr).unwrap();
            let p = p.as_primary().unwrap().clone();
            prop_assert_eq!(p.total_neighbors as usize, graph.degree(v));
            let mut resolved = Vec::new();
            for &na in &p.inline_neighbors {
                resolved.push(dg.image().parse_section(na).unwrap().node());
            }
            for &sa in &p.secondary_addrs {
                let s = dg.image().parse_section(sa).unwrap();
                for &na in &s.as_secondary().unwrap().neighbors {
                    resolved.push(dg.image().parse_section(na).unwrap().node());
                }
            }
            prop_assert_eq!(resolved.as_slice(), graph.neighbors(v));
        }
    }

    /// Any well-formed image passes the firmware security validation.
    #[test]
    fn directgraph_images_validate((n, deg, feat, seed) in arb_graph_params()) {
        let cfg = generate::PowerLawConfig::new(n, deg);
        let graph = generate::power_law(&cfg, seed);
        let features = FeatureTable::synthetic(n, feat, seed);
        let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap();
        prop_assert!(Validator::new(&dg).verify_image().is_ok());
    }

    /// Relocation by any positive offset keeps every directory entry
    /// resolving to the right node.
    #[test]
    fn relocation_is_invariant(
        (n, deg, feat, seed) in arb_graph_params(),
        offset in 1u64..1_000_000,
    ) {
        let cfg = generate::PowerLawConfig::new(n, deg);
        let graph = generate::power_law(&cfg, seed);
        let features = FeatureTable::synthetic(n, feat, seed);
        let mut dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap();
        dg.relocate_pages(|p| directgraph::PageIndex::new(p.as_u64() + offset)).unwrap();
        for v in graph.nodes().step_by((n / 11).max(1)) {
            let addr = dg.directory().primary_addr(v).unwrap();
            prop_assert_eq!(dg.image().parse_section(addr).unwrap().node(), v);
        }
    }

    /// Host sampling only ever returns true neighbors, at any fanout
    /// and hop count.
    #[test]
    fn sampling_soundness(
        n in 20usize..200,
        degree in 1usize..12,
        hops in 1u8..4,
        fanout in 1u16..6,
        seed in 0u64..500,
    ) {
        let graph = generate::uniform(n, degree, seed);
        let model = GnnModelConfig { hops, fanout, feature_dim: 8, hidden_dim: 16 };
        let mut s = HostSampler::new(model, seed);
        let sg = s.sample_subgraph(&graph, NodeId::new(0));
        prop_assert!(sg.len() as u64 <= model.subgraph_nodes());
        for hop in 1..=hops {
            for (vi, node) in sg.at_hop(hop) {
                let parent = (0..sg.len())
                    .find(|&p| sg.children_of(p).contains(&vi))
                    .expect("has parent");
                prop_assert!(graph.has_edge(sg.node_at(parent), node));
            }
        }
    }

    /// Address layout pack/unpack is a bijection for every supported
    /// page size.
    #[test]
    fn addr_roundtrip(
        page_pow in 11u32..15, // 2KB..16KB
        page in 0u64..100_000,
        slot_seed in 0usize..64,
    ) {
        let layout = AddrLayout::for_page_size(1 << page_pow).unwrap();
        let slot = slot_seed % layout.max_sections_per_page();
        let addr = layout.pack(directgraph::PageIndex::new(page), slot);
        let (p, s) = layout.unpack(addr);
        prop_assert_eq!(p.as_u64(), page);
        prop_assert_eq!(s, slot);
    }

    /// The section parser never panics on arbitrary page bytes — it
    /// returns a structured error instead. (The §VI-E on-die check
    /// depends on malformed pages failing safely.)
    #[test]
    fn section_parser_is_panic_free_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        slot in 0usize..16,
    ) {
        let layout = AddrLayout::for_page_size(4096).unwrap();
        let mut store = directgraph::PageStore::new(layout);
        let mut page = vec![0u8; 4096];
        page[..bytes.len()].copy_from_slice(&bytes);
        store.write_page(directgraph::PageIndex::new(0), page.into_boxed_slice());
        let addr = layout.pack(directgraph::PageIndex::new(0), slot);
        // Must not panic; any Ok/Err outcome is acceptable.
        let _ = store.parse_section(addr);
        let _ = store.parse_all_sections(directgraph::PageIndex::new(0));
    }

    /// The DirectGraph loader never panics on arbitrary byte streams.
    #[test]
    fn loader_is_panic_free_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = directgraph::DirectGraph::load(bytes.as_slice());
    }

    /// FTL invariants hold under arbitrary write/trim sequences: every
    /// mapped LPA has a unique PPA and translate agrees with the last
    /// operation.
    #[test]
    fn ftl_mapping_invariants(ops in proptest::collection::vec((0u64..48, any::<bool>()), 1..300)) {
        use beacon_flash::FlashGeometry;
        let geo = FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 8,
            page_size: 4096,
        };
        let mut ftl = beacon_ssd::Ftl::new(&geo, 0.25);
        let mut shadow: std::collections::HashMap<u64, bool> = Default::default();
        for (lpa, is_write) in ops {
            if is_write {
                ftl.write(lpa).expect("within logical capacity");
                shadow.insert(lpa, true);
            } else {
                ftl.trim(lpa);
                shadow.insert(lpa, false);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for (&lpa, &mapped) in &shadow {
            match ftl.translate(lpa) {
                Some(ppa) => {
                    prop_assert!(mapped, "trimmed lpa {} still mapped", lpa);
                    prop_assert!(seen.insert(ppa), "duplicate ppa {}", ppa);
                }
                None => prop_assert!(!mapped, "written lpa {} unmapped", lpa),
            }
        }
    }

    /// ONFI command encode/decode is a bijection over the sampling
    /// command space.
    #[test]
    fn onfi_sample_roundtrip(
        target in any::<u32>(),
        hop in 0u8..8,
        count in 0u16..64,
        subgraph in any::<u32>(),
        parent in any::<u32>(),
    ) {
        use beacon_flash::sampler::SampleCommand;
        use beacon_flash::OnfiCommand;
        let cmd = OnfiCommand::GnnSample(SampleCommand {
            target: directgraph::PhysAddr::from_raw(target),
            hop,
            count,
            subgraph,
            parent,
        });
        prop_assert_eq!(OnfiCommand::decode(&cmd.encode()), Ok(cmd));
    }

    /// The timed engine completes on every platform for arbitrary
    /// (small) device geometries — no config-space panics, no stuck
    /// calendars.
    #[test]
    fn engine_survives_random_configs(
        channels_pow in 1u32..5,       // 2..16 channels
        dies_pow in 0u32..4,           // 1..8 dies/channel
        cores in 1usize..6,
        platform_idx in 0usize..8,
        seed in 0u64..64,
    ) {
        use beacongnn::{Experiment, Platform, SsdConfig, Workload};
        let w = Workload::builder()
            .dataset(beacongnn::Dataset::Ogbn)
            .nodes(400)
            .batch_size(4)
            .batches(1)
            .seed(seed)
            .prepare()
            .expect("workload prepares");
        let ssd = SsdConfig::paper_default()
            .with_channels(1 << channels_pow)
            .with_dies_per_channel(1 << dies_pow)
            .with_cores(cores);
        let platform = Platform::ALL[platform_idx];
        let m = Experiment::new(&w).ssd(ssd).seed(seed).run(platform);
        prop_assert_eq!(m.targets, 4);
        prop_assert!(m.throughput() > 0.0);
        prop_assert_eq!(m.sampler_faults, 0);
    }

    /// FP16 encode/decode round-trips within half-precision tolerance.
    #[test]
    fn fp16_roundtrip(v in -60_000.0f32..60_000.0) {
        let bytes = {
            let t = FeatureTable::from_rows(1, vec![v]);
            let graph = generate::uniform(1, 0, 0);
            let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
                .build(&graph, &t)
                .unwrap();
            let addr = dg.directory().primary_addr(NodeId::new(0)).unwrap();
            dg.image().parse_section(addr).unwrap().as_primary().unwrap().feature.clone()
        };
        let back = directgraph::build::decode_fp16(&bytes)[0];
        let tol = (v.abs() * 1e-3).max(1e-4);
        prop_assert!((back - v).abs() <= tol, "{} -> {}", v, back);
    }
}
