//! Observability-layer integration tests.
//!
//! The contract under test: enabling `simkit::obs` observability never
//! changes simulated timing, the per-run metrics report is
//! byte-identical across repeated runs, and the Chrome trace export is
//! well-formed JSON that Perfetto can load.

use beacongnn::{Experiment, Platform, Workload};

fn workload() -> Workload {
    Workload::builder()
        .nodes(1_500)
        .batch_size(24)
        .batches(2)
        .seed(2024)
        .prepare()
        .expect("workload prepares")
}

#[test]
fn observed_runs_match_unobserved_timing() {
    let w = workload();
    let exp = Experiment::new(&w);
    for platform in Platform::ALL {
        let plain = exp.run(platform);
        let observed = exp.run_observed(platform, 1 << 20);
        assert_eq!(plain.makespan, observed.makespan, "{platform}");
        assert_eq!(plain.prep_time, observed.prep_time, "{platform}");
        assert_eq!(plain.nodes_visited, observed.nodes_visited, "{platform}");
        assert_eq!(plain.flash_reads, observed.flash_reads, "{platform}");
        assert_eq!(plain.energy, observed.energy, "{platform}");
        assert!(plain.spans.is_empty(), "{platform}: obs-off run has spans");
        assert!(
            !observed.spans.is_empty(),
            "{platform}: observed run has no spans"
        );
    }
}

#[test]
fn metrics_report_is_byte_identical_across_runs() {
    let w = workload();
    let exp = Experiment::new(&w);
    let a = exp.run_observed(Platform::Bg2, 1 << 20).metrics_registry();
    let b = exp.run_observed(Platform::Bg2, 1 << 20).metrics_registry();
    assert_eq!(a.to_json_string(), b.to_json_string());
    // Required report sections (ISSUE acceptance list).
    for section in [
        "run",
        "command_breakdown",
        "die_utilization",
        "channel_utilization",
        "router",
        "ftl",
        "accelerator",
        "energy",
        "latency",
        "latency_breakdown",
    ] {
        assert!(a.get(section).is_some(), "missing section `{section}`");
    }
}

#[test]
fn chrome_trace_export_is_wellformed_json() {
    let w = workload();
    let m = Experiment::new(&w).run_observed(Platform::Bg2, 1 << 20);
    let mut buf = Vec::new();
    beacongnn::simkit::ChromeTraceWriter::write(&m.spans, &mut buf).expect("trace writes");
    let json = String::from_utf8(buf).expect("trace is UTF-8");
    check_json(&json);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"displayTimeUnit\""));
    // One complete event per die-sense span plus metadata records.
    assert!(json.matches("\"ph\":\"X\"").count() > 0);
    assert!(json.matches("\"ph\":\"M\"").count() > 0);
}

/// Minimal recursive-descent JSON validator: accepts exactly the value
/// grammar (objects, arrays, strings, numbers, literals) and rejects
/// trailing garbage. Enough to guarantee Perfetto/chrome://tracing and
/// `json.load` can parse the export without pulling in a JSON crate.
fn check_json(s: &str) {
    let bytes = s.as_bytes();
    let end = parse_value(bytes, skip_ws(bytes, 0));
    assert_eq!(skip_ws(bytes, end), bytes.len(), "trailing garbage");
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn parse_value(b: &[u8], i: usize) -> usize {
    match b.get(i) {
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, b"true"),
        Some(b'f') => parse_lit(b, i, b"false"),
        Some(b'n') => parse_lit(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        other => panic!("unexpected token {other:?} at byte {i}"),
    }
}

fn parse_object(b: &[u8], mut i: usize) -> usize {
    i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b'}') {
        return i + 1;
    }
    loop {
        i = parse_string(b, skip_ws(b, i));
        i = skip_ws(b, i);
        assert_eq!(b.get(i), Some(&b':'), "expected `:` at byte {i}");
        i = parse_value(b, skip_ws(b, i + 1));
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return i + 1,
            other => panic!("expected `,` or `}}`, got {other:?} at byte {i}"),
        }
    }
}

fn parse_array(b: &[u8], mut i: usize) -> usize {
    i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b']') {
        return i + 1;
    }
    loop {
        i = parse_value(b, skip_ws(b, i));
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b']') => return i + 1,
            other => panic!("expected `,` or `]`, got {other:?} at byte {i}"),
        }
    }
}

fn parse_string(b: &[u8], i: usize) -> usize {
    assert_eq!(b.get(i), Some(&b'"'), "expected string at byte {i}");
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'"' => return j + 1,
            b'\\' => j += 2,
            c if c < 0x20 => panic!("raw control byte {c:#x} in string at {j}"),
            _ => j += 1,
        }
    }
    panic!("unterminated string starting at byte {i}");
}

fn parse_number(b: &[u8], mut i: usize) -> usize {
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let start = i;
    while i < b.len() && (b[i].is_ascii_digit() || matches!(b[i], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        i += 1;
    }
    assert!(i > start, "empty number at byte {start}");
    i
}

fn parse_lit(b: &[u8], i: usize, lit: &[u8]) -> usize {
    assert_eq!(
        b.get(i..i + lit.len()),
        Some(lit),
        "bad literal at byte {i}"
    );
    i + lit.len()
}
