//! Property tests for the multi-SSD array engine's determinism
//! contract.
//!
//! The contract under test (see `beacon_platforms::array`): the array
//! replay's output — the full rendered metrics report, per-device and
//! fabric-link sections included — is a pure function of the simulated
//! configuration. Worker-thread count must be invisible, a one-device
//! array must be the serial engine verbatim, and the per-device work
//! counters must partition (not approximate) the single-engine totals,
//! across randomized graph shapes, array sizes, partitions, fabrics,
//! and seeds.

use beacon_gnn::GnnModelConfig;
use beacon_graph::{generate, CsrGraph, FeatureTable, NodeId, Partition};
use beacon_platforms::{ArrayConfig, ArrayEngine, Engine, Platform};
use beacon_ssd::{FabricConfig, SsdConfig};
use directgraph::{build::DirectGraphBuilder, AddrLayout, DirectGraph};
use proptest::prelude::*;
use simkit::Duration;

fn build(nodes: usize, degree: f64, seed: u64) -> (CsrGraph, DirectGraph) {
    let cfg = generate::PowerLawConfig::new(nodes, degree);
    let graph = generate::power_law(&cfg, seed);
    let features = FeatureTable::synthetic(nodes, 64, seed);
    let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
        .build(&graph, &features)
        .expect("synthetic graph builds");
    (graph, dg)
}

fn batches(nodes: usize, batch: usize, count: usize) -> Vec<Vec<NodeId>> {
    (0..count)
        .map(|bi| {
            (0..batch)
                .map(|i| NodeId::new(((bi * batch + i * 7) % nodes) as u32))
                .collect()
        })
        .collect()
}

fn partition_by(which: u8, graph: &CsrGraph, k: u32) -> Partition {
    match which % 3 {
        0 => Partition::hash(graph, k),
        1 => Partition::range(graph, k),
        _ => Partition::bfs_grow(graph, k),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Thread count is invisible: for random small configurations the
    /// array replay renders byte-identical metric reports (per-device
    /// counters, fabric-link counters, timings, energy) at 1, 2, and 8
    /// device-lane worker threads.
    #[test]
    fn array_report_is_thread_count_invariant(
        nodes in 300usize..900,
        degree in 8u32..30,
        batch in 4usize..24,
        devices in 2usize..6,
        which in 0u8..3,
        hop_ns in 100u64..5_000,
        seed in 0u64..1_000,
    ) {
        let (graph, dg) = build(nodes, degree as f64, seed);
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default();
        let part = partition_by(which, &graph, devices as u32);
        let array = ArrayConfig::pcie_p2p(devices)
            .with_fabric(FabricConfig::pcie_p2p().with_hop_latency(Duration::from_ns(hop_ns)));
        let b = batches(nodes, batch, 2);
        let cascade = ArrayEngine::new(Platform::Bg2, array, ssd, model, &dg, seed).record(&b);
        let run = |threads: usize| {
            ArrayEngine::new(Platform::Bg2, array, ssd, model, &dg, seed)
                .threads(threads)
                .run_recorded(&cascade, &part)
                .metrics_registry()
                .to_json_string()
        };
        let reference = run(1);
        for threads in [2usize, 8] {
            prop_assert_eq!(&run(threads), &reference, "threads={}", threads);
        }
    }

    /// Conservation: the per-device work counters are a partition of
    /// the single-engine totals — they sum exactly, never approximately,
    /// because both sides replay the same recorded command set.
    #[test]
    fn device_work_sums_to_single_engine(
        nodes in 300usize..900,
        batch in 8usize..32,
        devices in 2usize..8,
        which in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let (graph, dg) = build(nodes, 20.0, seed);
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default();
        let b = batches(nodes, batch, 1);
        let serial = Engine::new(Platform::Bg2, ssd, model, &dg, seed).run(&b);
        let part = partition_by(which, &graph, devices as u32);
        let array = ArrayEngine::new(Platform::Bg2, ArrayConfig::pcie_p2p(devices), ssd, model, &dg, seed)
            .run(&part, &b);
        let sum = |f: fn(&beacon_platforms::DeviceMetrics) -> u64| {
            array.per_device.iter().map(f).sum::<u64>()
        };
        prop_assert_eq!(array.per_device.len(), devices);
        prop_assert_eq!(sum(|d| d.targets), serial.targets);
        prop_assert_eq!(sum(|d| d.flash_reads), serial.flash_reads);
        prop_assert_eq!(sum(|d| d.nodes_visited), serial.nodes_visited);
        prop_assert_eq!(sum(|d| d.sampler_faults), serial.sampler_faults);
        prop_assert_eq!(array.metrics.flash_reads, serial.flash_reads);
    }

    /// A 1-device array is the serial engine verbatim: the merged
    /// metrics report matches the serial engine's byte for byte, and
    /// nothing crosses the fabric.
    #[test]
    fn one_device_array_is_serial_engine(
        nodes in 300usize..900,
        batch in 4usize..24,
        seed in 0u64..1_000,
    ) {
        let (graph, dg) = build(nodes, 16.0, seed);
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default();
        let b = batches(nodes, batch, 2);
        let serial = Engine::new(Platform::Bg2, ssd, model, &dg, seed).run(&b);
        let array = ArrayEngine::new(Platform::Bg2, ArrayConfig::pcie_p2p(1), ssd, model, &dg, seed)
            .run(&Partition::hash(&graph, 1), &b);
        prop_assert_eq!(
            array.metrics.metrics_registry().to_json_string(),
            serial.metrics_registry().to_json_string()
        );
        prop_assert_eq!(array.cross_edges, 0);
        prop_assert_eq!(array.fabric_bytes(), 0);
        prop_assert!((array.efficiency() - 1.0).abs() < 1e-12);
    }
}
