//! # beacon-energy — energy accounting (paper §VII-A, §VII-D)
//!
//! The paper estimates power with McPAT/DRAMPower for SSD components and
//! CACTI + scaled arithmetic energies for the accelerators. This crate
//! reproduces the *accounting structure*: simulations record raw event
//! quantities in an [`EnergyLedger`] (page reads, bytes moved per link,
//! busy core time, MACs), and [`EnergyCosts`] prices them into a
//! [`EnergyBreakdown`] whose component shares regenerate Fig 19.
//!
//! The default constants come from the same public literature the
//! paper's tools embody (NAND sense energy, DDR access energy per byte,
//! PCIe end-to-end transfer energy, scaled 32 nm MAC energy); absolute
//! joules are approximate, component *ratios* are the reproduction
//! target (see DESIGN.md).

use simkit::Duration;

/// Per-event energy constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCosts {
    /// Joules per flash page sense.
    pub flash_read_page: f64,
    /// Joules per byte moved on a flash channel.
    pub channel_per_byte: f64,
    /// Joules per byte accessed in SSD DRAM.
    pub dram_per_byte: f64,
    /// Joules per byte moved end-to-end over PCIe (wire + root complex +
    /// host memory copies).
    pub pcie_per_byte: f64,
    /// Watts per busy embedded core.
    pub core_power: f64,
    /// Watts of host CPU while sampling/translating.
    pub host_cpu_power: f64,
    /// Joules per multiply-accumulate (32 nm-scaled FP16).
    pub mac: f64,
    /// Joules per reduction element-add.
    pub reduce_op: f64,
    /// Joules per on-die sampler command execution.
    pub sampler_cmd: f64,
    /// Joules per command hop through the channel router.
    pub router_cmd: f64,
}

impl EnergyCosts {
    /// Literature-derived defaults (see crate docs).
    pub fn default_costs() -> Self {
        EnergyCosts {
            flash_read_page: 1.2e-6,
            channel_per_byte: 25e-12,
            dram_per_byte: 400e-12,
            pcie_per_byte: 600e-12,
            core_power: 0.3,
            // Incremental active power attributable to the host I/O /
            // sampling path (not package power — the host would idle at
            // tens of watts regardless; Fig 19 compares the GNN task's
            // marginal energy).
            host_cpu_power: 1.0,
            mac: 2e-12,
            reduce_op: 0.5e-12,
            sampler_cmd: 20e-9,
            router_cmd: 5e-9,
        }
    }
}

impl Default for EnergyCosts {
    fn default() -> Self {
        Self::default_costs()
    }
}

/// Raw event quantities recorded by a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyLedger {
    /// Flash page senses.
    pub flash_page_reads: u64,
    /// Bytes moved over flash channels.
    pub channel_bytes: u64,
    /// Bytes accessed in SSD DRAM.
    pub dram_bytes: u64,
    /// Bytes moved over PCIe.
    pub pcie_bytes: u64,
    /// Aggregate busy time across embedded cores.
    pub core_busy: Duration,
    /// Host CPU busy time (sampling, translation).
    pub host_cpu_busy: Duration,
    /// Accelerator multiply-accumulates.
    pub macs: u64,
    /// Accelerator reduction element-adds.
    pub reduce_ops: u64,
    /// On-die sampler command executions.
    pub sampler_cmds: u64,
    /// Router command hops.
    pub router_cmds: u64,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.flash_page_reads += other.flash_page_reads;
        self.channel_bytes += other.channel_bytes;
        self.dram_bytes += other.dram_bytes;
        self.pcie_bytes += other.pcie_bytes;
        self.core_busy += other.core_busy;
        self.host_cpu_busy += other.host_cpu_busy;
        self.macs += other.macs;
        self.reduce_ops += other.reduce_ops;
        self.sampler_cmds += other.sampler_cmds;
        self.router_cmds += other.router_cmds;
    }

    /// Prices the ledger into a component breakdown.
    pub fn breakdown(&self, costs: &EnergyCosts) -> EnergyBreakdown {
        EnergyBreakdown {
            flash: self.flash_page_reads as f64 * costs.flash_read_page
                + self.sampler_cmds as f64 * costs.sampler_cmd,
            channel: self.channel_bytes as f64 * costs.channel_per_byte
                + self.router_cmds as f64 * costs.router_cmd,
            dram: self.dram_bytes as f64 * costs.dram_per_byte,
            pcie: self.pcie_bytes as f64 * costs.pcie_per_byte,
            cores: self.core_busy.as_secs_f64() * costs.core_power,
            host: self.host_cpu_busy.as_secs_f64() * costs.host_cpu_power,
            accel: self.macs as f64 * costs.mac + self.reduce_ops as f64 * costs.reduce_op,
        }
    }
}

/// Energy per component, in joules (the Fig 19 stack).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Flash array senses + on-die sampling.
    pub flash: f64,
    /// Channel transfers + router hops.
    pub channel: f64,
    /// SSD DRAM traffic.
    pub dram: f64,
    /// PCIe traffic (host↔SSD↔discrete accelerator).
    pub pcie: f64,
    /// Embedded-core (firmware) energy.
    pub cores: f64,
    /// Host CPU energy.
    pub host: f64,
    /// Accelerator compute energy.
    pub accel: f64,
}

impl EnergyBreakdown {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.flash + self.channel + self.dram + self.pcie + self.cores + self.host + self.accel
    }

    /// Fraction of total spent moving data outside the SSD (PCIe +
    /// host) — the CC baseline's 57% in Fig 19.
    pub fn outside_storage_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            return 0.0;
        }
        (self.pcie + self.host) / t
    }

    /// Fraction spent on internal staging (channel + DRAM) — BG-1's 75%.
    pub fn staging_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            return 0.0;
        }
        (self.channel + self.dram) / t
    }

    /// Fraction spent in the flash backend (sense + sampling + channel).
    pub fn flash_backend_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            return 0.0;
        }
        (self.flash + self.channel) / t
    }

    /// Energy efficiency: work items (e.g. target nodes) per joule.
    ///
    /// # Panics
    ///
    /// Panics if total energy is zero with nonzero work.
    pub fn efficiency(&self, work_items: u64) -> f64 {
        if work_items == 0 {
            return 0.0;
        }
        let t = self.total();
        assert!(t > 0.0, "nonzero work with zero energy");
        work_items as f64 / t
    }

    /// Average power over a run of `makespan`, in watts.
    pub fn avg_power(&self, makespan: Duration) -> f64 {
        let s = makespan.as_secs_f64();
        if s == 0.0 {
            return 0.0;
        }
        self.total() / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_free() {
        let b = EnergyLedger::new().breakdown(&EnergyCosts::default_costs());
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.outside_storage_fraction(), 0.0);
        assert_eq!(b.efficiency(0), 0.0);
        assert_eq!(b.avg_power(Duration::ZERO), 0.0);
    }

    #[test]
    fn breakdown_prices_each_component() {
        let costs = EnergyCosts::default_costs();
        let ledger = EnergyLedger {
            flash_page_reads: 1_000,
            channel_bytes: 1 << 20,
            dram_bytes: 1 << 20,
            pcie_bytes: 1 << 20,
            core_busy: Duration::from_ms(10),
            host_cpu_busy: Duration::from_ms(1),
            macs: 1_000_000,
            reduce_ops: 1_000_000,
            sampler_cmds: 100,
            router_cmds: 100,
        };
        let b = ledger.breakdown(&costs);
        assert!(b.flash > 0.0 && b.channel > 0.0 && b.dram > 0.0);
        assert!(b.pcie > b.dram, "PCIe per byte costs more than DRAM");
        assert!(b.dram > b.channel, "DRAM per byte costs more than channel");
        let sum = b.flash + b.channel + b.dram + b.pcie + b.cores + b.host + b.accel;
        assert!((b.total() - sum).abs() < 1e-15);
    }

    #[test]
    fn merge_adds_quantities() {
        let mut a = EnergyLedger {
            flash_page_reads: 1,
            ..Default::default()
        };
        let b = EnergyLedger {
            flash_page_reads: 2,
            core_busy: Duration::from_us(5),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flash_page_reads, 3);
        assert_eq!(a.core_busy, Duration::from_us(5));
    }

    #[test]
    fn fractions_partition_sensibly() {
        let ledger = EnergyLedger {
            flash_page_reads: 10,
            channel_bytes: 1000,
            dram_bytes: 1000,
            pcie_bytes: 1000,
            host_cpu_busy: Duration::from_us(1),
            ..Default::default()
        };
        let b = ledger.breakdown(&EnergyCosts::default_costs());
        for f in [
            b.outside_storage_fraction(),
            b.staging_fraction(),
            b.flash_backend_fraction(),
        ] {
            assert!((0.0..=1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn efficiency_and_power() {
        let ledger = EnergyLedger {
            flash_page_reads: 1_000_000,
            ..Default::default()
        };
        let b = ledger.breakdown(&EnergyCosts::default_costs());
        let eff = b.efficiency(1_000);
        assert!(eff > 0.0);
        let p = b.avg_power(Duration::from_secs(1));
        assert!((p - b.total()).abs() < 1e-12);
    }
}
