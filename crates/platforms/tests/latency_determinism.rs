//! Property tests for the per-query latency layer's determinism
//! contract.
//!
//! The contract (see `simkit::obs::latency` and the engines' latency
//! wiring): the `latency` / `latency_breakdown` registry sections are a
//! pure function of the simulated configuration. Replaying a recorded
//! cascade must produce the identical report, the partitioned engine
//! must render it byte-identically at any worker-thread count, and a
//! one-device array must match the serial engine verbatim.

use beacon_gnn::GnnModelConfig;
use beacon_graph::{generate, CsrGraph, FeatureTable, NodeId, Partition};
use beacon_platforms::{
    ArrayConfig, ArrayEngine, Engine, EngineScratch, PartitionedEngine, Platform, RunMetrics,
};
use beacon_ssd::SsdConfig;
use directgraph::{build::DirectGraphBuilder, AddrLayout, DirectGraph};
use proptest::prelude::*;
use simkit::Duration;

fn build_graph(nodes: usize, degree: f64, feat_dim: usize, seed: u64) -> (CsrGraph, DirectGraph) {
    let cfg = generate::PowerLawConfig::new(nodes, degree);
    let graph = generate::power_law(&cfg, seed);
    let features = FeatureTable::synthetic(nodes, feat_dim, seed);
    let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
        .build(&graph, &features)
        .expect("synthetic graph builds");
    (graph, dg)
}

fn batches_for(nodes: usize, batch: usize, batches: usize) -> Vec<Vec<NodeId>> {
    (0..batches)
        .map(|bi| {
            (0..batch)
                .map(|i| NodeId::new(((bi * batch + i) % nodes) as u32))
                .collect()
        })
        .collect()
}

fn report(m: &RunMetrics) -> String {
    m.metrics_registry().to_json_string()
}

/// The report invariants every enabled latency run must satisfy:
/// one query per target, stage sums covering end-to-end latency
/// exactly, and a rendered histogram that accounts for every query.
fn check_report(m: &RunMetrics, targets: usize) {
    assert!(m.latency.is_enabled(), "latency tracking requested");
    assert_eq!(m.latency.queries().len(), targets);
    assert_eq!(m.latency.histogram().count(), targets as u64);
    for q in m.latency.queries() {
        assert_eq!(
            q.path.total_ns(),
            q.latency_ns(),
            "stage attribution must sum to the query latency"
        );
    }
    let json = report(m);
    assert!(json.contains("\"latency\""));
    assert!(json.contains("\"latency_breakdown\""));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replay invariance: recording a cascade and replaying it with
    /// latency tracking enabled renders the same registry bytes as the
    /// untouched full run — the sampler substitution cannot perturb a
    /// single queue wait, grant, or attributed nanosecond.
    #[test]
    fn latency_report_survives_replay_byte_identically(
        nodes in 300usize..900,
        batch in 4usize..24,
        n_batches in 1usize..3,
        epoch_ns in 1_000u64..200_000,
        seed in 0u64..1_000,
    ) {
        let (_, dg) = build_graph(nodes, 16.0, 64, seed);
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default();
        let epoch = Duration::from_ns(epoch_ns);
        let b = batches_for(nodes, batch, n_batches);
        let engine = || Engine::new(Platform::Bg2, ssd, model, &dg, seed).with_latency(epoch);

        let full = engine().run(&b);
        check_report(&full, batch * n_batches);

        let mut scratch = EngineScratch::new();
        let (recorded, recording) = engine().record_cascade(&mut scratch, &b);
        let replayed = engine().replay_with(&mut scratch, &recording, &b);
        prop_assert_eq!(&report(&recorded), &report(&full), "recording run drifted");
        prop_assert_eq!(&report(&replayed), &report(&full), "replay drifted");
    }

    /// Thread count is invisible to the latency report: the partitioned
    /// engine renders byte-identical `latency` / `latency_breakdown`
    /// sections (inside the full registry) at 1, 2, and 8 workers.
    #[test]
    fn partitioned_latency_is_thread_count_invariant(
        nodes in 300usize..900,
        batch in 4usize..24,
        n_batches in 1usize..3,
        channels in 1usize..6,
        epoch_ns in 1_000u64..200_000,
        seed in 0u64..1_000,
    ) {
        let (_, dg) = build_graph(nodes, 16.0, 64, seed);
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default().with_channels(channels);
        let b = batches_for(nodes, batch, n_batches);
        let run = |threads: usize| {
            PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, seed)
                .with_latency(Duration::from_ns(epoch_ns))
                .threads(threads)
                .run(&b)
        };
        let reference = run(1);
        check_report(&reference, batch * n_batches);
        let reference = report(&reference);
        for threads in [2usize, 8] {
            prop_assert_eq!(&report(&run(threads)), &reference, "threads={}", threads);
        }
    }
}

#[test]
fn array_latency_matches_serial_on_one_device() {
    let seed = 7u64;
    let (graph, dg) = build_graph(800, 16.0, 64, seed);
    let model = GnnModelConfig::paper_default(64);
    let ssd = SsdConfig::paper_default();
    let epoch = Duration::from_us(50);
    let b = batches_for(800, 16, 2);

    let serial = Engine::new(Platform::Bg2, ssd, model, &dg, seed)
        .with_latency(epoch)
        .run(&b);
    let array = ArrayEngine::new(
        Platform::Bg2,
        ArrayConfig::pcie_p2p(1),
        ssd,
        model,
        &dg,
        seed,
    )
    .with_latency(epoch)
    .run(&Partition::hash(&graph, 1), &b);
    assert_eq!(
        report(&array.metrics),
        report(&serial),
        "one-device array must be the serial engine verbatim"
    );
}

#[test]
fn array_latency_is_thread_count_invariant() {
    let seed = 11u64;
    let (graph, dg) = build_graph(900, 16.0, 64, seed);
    let model = GnnModelConfig::paper_default(64);
    let ssd = SsdConfig::paper_default();
    let part = Partition::hash(&graph, 4);
    let b = batches_for(900, 24, 2);
    let run = |threads: usize| {
        ArrayEngine::new(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            ssd,
            model,
            &dg,
            seed,
        )
        .with_latency(Duration::from_us(50))
        .threads(threads)
        .run(&part, &b)
    };
    let reference = run(1);
    check_report(&reference.metrics, 48);
    let reference = report(&reference.metrics);
    for threads in [2usize, 8] {
        assert_eq!(
            report(&run(threads).metrics),
            reference,
            "threads={threads}"
        );
    }
}
