//! Property tests for the partitioned engine's determinism contract.
//!
//! The contract under test (see `beacon_platforms::partition`): for a
//! partitionable platform, the partitioned engine's output — the full
//! rendered metrics report, trace included — is a pure function of the
//! simulated configuration. Worker-thread count must be invisible, the
//! input DirectGraph must come out of the run untouched, and the model
//! must stay a faithful retiming of the serial engine (identical work
//! counts, nearby makespan), across randomized graph shapes, geometries,
//! batch shapes, epochs, and seeds.

use beacon_gnn::GnnModelConfig;
use beacon_graph::{generate, FeatureTable, NodeId};
use beacon_platforms::{Engine, PartitionedEngine, Platform, RunMetrics};
use beacon_ssd::SsdConfig;
use directgraph::{build::DirectGraphBuilder, AddrLayout, DirectGraph};
use proptest::prelude::*;
use simkit::Duration;

fn build_dg(nodes: usize, degree: f64, feat_dim: usize, seed: u64) -> DirectGraph {
    let cfg = generate::PowerLawConfig::new(nodes, degree);
    let graph = generate::power_law(&cfg, seed);
    let features = FeatureTable::synthetic(nodes, feat_dim, seed);
    DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
        .build(&graph, &features)
        .expect("synthetic graph builds")
}

fn report(m: &RunMetrics) -> String {
    m.metrics_registry().to_json_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Thread count is invisible: for random small configurations, the
    /// partitioned engine renders byte-identical metric reports
    /// (counts, timings, energy, trace) at 1, 2, and 8 worker threads,
    /// and never mutates the DirectGraph it reads.
    #[test]
    fn partitioned_output_is_thread_count_invariant(
        nodes in 300usize..900,
        degree in 8u32..30,
        batch in 4usize..24,
        batches in 1usize..3,
        channels in 1usize..6,
        dies in 1usize..4,
        epoch_ns in 100u64..2_000,
        seed in 0u64..1_000,
    ) {
        let dg = build_dg(nodes, degree as f64, 64, seed);
        let dg_digest = dg.digest();
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default()
            .with_channels(channels)
            .with_dies_per_channel(dies)
            .with_router_epoch(Duration::from_ns(epoch_ns));
        let b: Vec<Vec<NodeId>> = (0..batches)
            .map(|bi| {
                (0..batch)
                    .map(|i| NodeId::new(((bi * batch + i) % nodes) as u32))
                    .collect()
            })
            .collect();
        let run = |threads: usize| {
            PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, seed)
                .with_trace(4096)
                .threads(threads)
                .run(&b)
        };
        let reference = report(&run(1));
        for threads in [2usize, 8] {
            prop_assert_eq!(&report(&run(threads)), &reference, "threads={}", threads);
        }
        prop_assert_eq!(dg.digest(), dg_digest, "run must not mutate the graph image");
    }

    /// Faithfulness: against the serial engine the partitioned model
    /// does the same work (targets, flash reads, visits, bytes) and its
    /// epoch retiming moves the makespan only within a narrow band.
    #[test]
    fn partitioned_work_matches_serial_engine(
        nodes in 400usize..900,
        batch in 8usize..32,
        seed in 0u64..1_000,
    ) {
        let dg = build_dg(nodes, 20.0, 64, seed);
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default();
        let b = vec![(0..batch).map(|i| NodeId::new((i % nodes) as u32)).collect::<Vec<_>>()];
        let serial = Engine::new(Platform::Bg2, ssd, model, &dg, seed).run(&b);
        let part = PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, seed).run(&b);
        prop_assert_eq!(part.targets, serial.targets);
        prop_assert_eq!(part.flash_reads, serial.flash_reads);
        prop_assert_eq!(part.nodes_visited, serial.nodes_visited);
        prop_assert_eq!(part.sampler_executed, serial.sampler_executed);
        prop_assert_eq!(part.energy.channel_bytes, serial.energy.channel_bytes);
        prop_assert_eq!(part.energy.router_cmds, serial.energy.router_cmds);
        prop_assert_eq!(part.energy.macs, serial.energy.macs);
        // Small batches leave little pipeline overlap to hide the
        // epoch quantization, so the relative band is wider than the
        // fixed-config unit test's: each command chain can be delayed
        // by roughly one epoch per hop, a visible fraction of a short
        // run's makespan.
        let ratio = part.makespan.as_ns() as f64 / serial.makespan.as_ns() as f64;
        prop_assert!(
            (0.8..=1.3).contains(&ratio),
            "partitioned makespan drifted {:.4}x from serial", ratio
        );
    }
}
