//! Shared cascade recordings: record a sampling cascade once, replay it
//! under any timing configuration.
//!
//! Since the die samplers key every draw on command *content* (see
//! `beacon_flash::draw_stream_seed`), the functional cascade — which
//! nodes get visited, which children each command spawns — is a pure
//! function of (DirectGraph image, mini-batches, model config, run
//! seed). Device timing, geometry, core counts, platform wiring: none
//! of it can change the cascade. A [`CascadeRecording`] captures that
//! pure function's output once so that every other cell of a timing
//! sweep can *replay* it ([`Engine::replay_with`](crate::Engine)) —
//! identical metrics, no page parsing, no sampling draws.
//!
//! Recordings are produced by `Engine::record_cascade` (BG-2 only: the
//! recorder requires a channel-separable spec so the cascade contains
//! nothing but `Visit` commands in parent/child order), but *replayed*
//! on any platform — barrier platforms re-buffer the replayed commands
//! per hop, host-lookup platforms re-derive their feature reads from
//! the replayed visits, and every platform re-times the identical
//! command stream under its own resource model.

use beacon_flash::{SampleCommand, SampleOutcome};
use beacon_graph::NodeId;
use directgraph::PhysAddr;

/// One flash command of a recorded sampling cascade: its content (what
/// the command asked for) and its outcome (what the die returned) —
/// everything a replay needs to re-time the command without re-running
/// the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CascadeRec {
    /// Target physical address (raw `PhysAddr` bits).
    pub(crate) target: u32,
    /// Subgraph (mini-batch slot) the command belongs to.
    pub(crate) subgraph: u32,
    /// Parent node id (`SampleCommand::NO_PARENT` for roots).
    pub(crate) parent: u32,
    /// Secondary-section draw count (0 = primary section).
    pub(crate) count: u16,
    /// Sampling hop (0 = mini-batch target).
    pub(crate) hop: u8,
    /// Whether the on-die §VI-E check aborted the command.
    pub(crate) fault: bool,
    /// Target die under the *recording* geometry (array replay re-homes
    /// commands with it; engine replay recomputes the die from `target`
    /// under its own geometry).
    pub(crate) die: u32,
    /// Visited node id, or `u32::MAX` when the command visited nothing
    /// (secondary sections, faulted commands).
    pub(crate) visited: u32,
    /// Feature bytes the command retrieved.
    pub(crate) feature_bytes: u32,
    /// Bytes its channel transfer moved under the recording spec
    /// (useful-bytes granularity).
    pub(crate) result_bytes: u32,
    /// First child record index; children are consecutive and every
    /// child index is greater than its parent's (topological order).
    pub(crate) children_start: u32,
    pub(crate) children_len: u32,
}

/// Serialized size of one [`CascadeRec`] (see
/// [`CascadeRecording::to_bytes`]).
const REC_BYTES: usize = 40;

/// A full recorded cascade: every flash command of every batch, in
/// spawn order. Batch `b`'s roots are the `batches[b].len()` records
/// starting at `batch_roots[b]`, in target order.
///
/// One recording serves every platform and every `SsdConfig` over the
/// same workload + seed; see the module docs for why.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CascadeRecording {
    pub(crate) recs: Vec<CascadeRec>,
    pub(crate) batch_roots: Vec<u32>,
}

impl CascadeRecording {
    /// Flash commands recorded.
    pub fn commands(&self) -> usize {
        self.recs.len()
    }

    /// Mini-batches recorded.
    pub fn batches(&self) -> usize {
        self.batch_roots.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Cheap shape check that `batches` is plausibly the workload this
    /// cascade was recorded from: batch count, per-batch root count and
    /// root subgraph slots must line up. (Root *targets* are verified
    /// against the live DirectGraph directory during replay.)
    pub fn matches_batches(&self, batches: &[Vec<NodeId>]) -> bool {
        if self.batch_roots.len() != batches.len() {
            return false;
        }
        for (b, batch) in batches.iter().enumerate() {
            let start = self.batch_roots[b] as usize;
            let Some(end) = start.checked_add(batch.len()) else {
                return false;
            };
            if end > self.recs.len() {
                return false;
            }
            for (slot, r) in self.recs[start..end].iter().enumerate() {
                if r.hop != 0 || r.parent != SampleCommand::NO_PARENT || r.subgraph != slot as u32 {
                    return false;
                }
            }
        }
        true
    }

    /// Reconstructs record `rec`'s command content.
    pub(crate) fn command(&self, rec: u32) -> SampleCommand {
        let r = &self.recs[rec as usize];
        SampleCommand {
            target: PhysAddr::from_raw(r.target),
            hop: r.hop,
            count: r.count,
            subgraph: r.subgraph,
            parent: r.parent,
        }
    }

    /// Fills `out` with record `rec`'s recorded outcome, reconstructing
    /// the child commands from the record's children range. Returns
    /// `true` if the recorded command faulted (the outcome is left
    /// cleared, exactly like `DieSampler::execute_into`'s error path).
    ///
    /// `out` must arrive cleared (fresh from the engine's outcome
    /// pool).
    pub(crate) fn fill_outcome(&self, rec: u32, out: &mut SampleOutcome) -> bool {
        let r = &self.recs[rec as usize];
        if r.fault {
            return true;
        }
        out.visited = (r.visited != u32::MAX).then(|| NodeId::new(r.visited));
        out.feature_bytes = r.feature_bytes as usize;
        let start = r.children_start as usize;
        let end = start + r.children_len as usize;
        for c in &self.recs[start..end] {
            out.new_commands.push(SampleCommand {
                target: PhysAddr::from_raw(c.target),
                hop: c.hop,
                count: c.count,
                subgraph: c.subgraph,
                parent: c.parent,
            });
        }
        false
    }

    /// Serializes the recording to a flat little-endian byte stream
    /// (fixed 40 bytes per record). The stream carries no checksum or
    /// identity — persistent layers (see `beacongnn::diskcache`) wrap
    /// it in their own envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf =
            Vec::with_capacity(16 + self.recs.len() * REC_BYTES + self.batch_roots.len() * 4);
        buf.extend_from_slice(&(self.recs.len() as u64).to_le_bytes());
        buf.extend_from_slice(&(self.batch_roots.len() as u64).to_le_bytes());
        for r in &self.recs {
            buf.extend_from_slice(&r.target.to_le_bytes());
            buf.extend_from_slice(&r.subgraph.to_le_bytes());
            buf.extend_from_slice(&r.parent.to_le_bytes());
            buf.extend_from_slice(&r.die.to_le_bytes());
            buf.extend_from_slice(&r.visited.to_le_bytes());
            buf.extend_from_slice(&r.feature_bytes.to_le_bytes());
            buf.extend_from_slice(&r.result_bytes.to_le_bytes());
            buf.extend_from_slice(&r.children_start.to_le_bytes());
            buf.extend_from_slice(&r.children_len.to_le_bytes());
            buf.extend_from_slice(&r.count.to_le_bytes());
            buf.push(r.hop);
            buf.push(r.fault as u8);
        }
        for &b in &self.batch_roots {
            buf.extend_from_slice(&b.to_le_bytes());
        }
        buf
    }

    /// Deserializes a recording produced by
    /// [`CascadeRecording::to_bytes`]. Returns `None` on truncation or
    /// structural corruption (out-of-range children, non-topological
    /// child order, unsorted batch roots).
    pub fn from_bytes(bytes: &[u8]) -> Option<CascadeRecording> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*at..*at + n)?;
            *at += n;
            Some(s)
        };
        let n_recs = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?) as usize;
        let n_batches = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?) as usize;
        if n_recs > u32::MAX as usize
            || bytes.len() != 16 + n_recs.checked_mul(REC_BYTES)? + n_batches.checked_mul(4)?
        {
            return None;
        }
        let mut recs = Vec::with_capacity(n_recs);
        for _ in 0..n_recs {
            let f = take(&mut at, REC_BYTES)?;
            let u32_at = |o: usize| u32::from_le_bytes(f[o..o + 4].try_into().unwrap());
            recs.push(CascadeRec {
                target: u32_at(0),
                subgraph: u32_at(4),
                parent: u32_at(8),
                die: u32_at(12),
                visited: u32_at(16),
                feature_bytes: u32_at(20),
                result_bytes: u32_at(24),
                children_start: u32_at(28),
                children_len: u32_at(32),
                count: u16::from_le_bytes(f[36..38].try_into().unwrap()),
                hop: f[38],
                fault: match f[39] {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
            });
        }
        let mut batch_roots = Vec::with_capacity(n_batches);
        for _ in 0..n_batches {
            batch_roots.push(u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()));
        }
        let rec = CascadeRecording { recs, batch_roots };
        rec.validate().then_some(rec)
    }

    /// Structural integrity: children ranges in bounds and strictly
    /// after their parent (topological order), batch roots nondecreasing
    /// and in bounds.
    fn validate(&self) -> bool {
        let n = self.recs.len() as u64;
        for (i, r) in self.recs.iter().enumerate() {
            let start = r.children_start as u64;
            let end = start + r.children_len as u64;
            if r.children_len > 0 && (start <= i as u64 || end > n) {
                return false;
            }
        }
        self.batch_roots.windows(2).all(|w| w[0] <= w[1])
            && self.batch_roots.last().is_none_or(|&b| (b as u64) <= n)
    }
}

/// Recorder state while a cascade-logging run is in flight. Records are
/// created at spawn — content filled from the spawned command — and
/// their outcomes filled in as the command moves through the pipeline
/// (the engine threads the record index through `Cmd::rec`).
#[derive(Debug, Default)]
pub(crate) struct CascadeRecorder {
    pub(crate) recs: Vec<CascadeRec>,
    pub(crate) batch_roots: Vec<u32>,
}

impl CascadeRecorder {
    /// Appends a record for a freshly spawned command; returns its
    /// index.
    pub(crate) fn append(&mut self, sample: &SampleCommand) -> u32 {
        let rid = u32::try_from(self.recs.len()).expect("cascade log overflow");
        self.recs.push(CascadeRec {
            target: sample.target.to_raw(),
            subgraph: sample.subgraph,
            parent: sample.parent,
            count: sample.count,
            hop: sample.hop,
            fault: false,
            die: 0,
            visited: u32::MAX,
            feature_bytes: 0,
            result_bytes: 0,
            children_start: 0,
            children_len: 0,
        });
        rid
    }

    /// Marks the start of a new batch's records.
    pub(crate) fn start_batch(&mut self) {
        self.batch_roots
            .push(u32::try_from(self.recs.len()).expect("cascade log overflow"));
    }

    pub(crate) fn finish(self) -> CascadeRecording {
        CascadeRecording {
            recs: self.recs,
            batch_roots: self.batch_roots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recording() -> CascadeRecording {
        CascadeRecording {
            recs: vec![
                CascadeRec {
                    target: 11,
                    subgraph: 0,
                    parent: SampleCommand::NO_PARENT,
                    count: 0,
                    hop: 0,
                    fault: false,
                    die: 3,
                    visited: 7,
                    feature_bytes: 400,
                    result_bytes: 424,
                    children_start: 1,
                    children_len: 2,
                },
                CascadeRec {
                    target: 21,
                    subgraph: 0,
                    parent: 7,
                    count: 0,
                    hop: 1,
                    fault: false,
                    die: 1,
                    visited: 9,
                    feature_bytes: 400,
                    result_bytes: 408,
                    children_start: 0,
                    children_len: 0,
                },
                CascadeRec {
                    target: 31,
                    subgraph: 0,
                    parent: 7,
                    count: 2,
                    hop: 1,
                    fault: true,
                    die: 2,
                    visited: u32::MAX,
                    feature_bytes: 0,
                    result_bytes: 8,
                    children_start: 0,
                    children_len: 0,
                },
            ],
            batch_roots: vec![0],
        }
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let rec = sample_recording();
        let bytes = rec.to_bytes();
        let back = CascadeRecording::from_bytes(&bytes).expect("round trip");
        assert_eq!(rec, back);
    }

    #[test]
    fn truncation_and_corruption_are_rejected() {
        let rec = sample_recording();
        let bytes = rec.to_bytes();
        assert!(CascadeRecording::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(CascadeRecording::from_bytes(&[]).is_none());
        // A child range pointing out of bounds must not validate.
        let mut bad = rec.clone();
        bad.recs[0].children_len = 9;
        assert!(CascadeRecording::from_bytes(&bad.to_bytes()).is_none());
        // A child range pointing at (or before) its parent breaks the
        // topological invariant the replay's spawn order relies on.
        let mut cyclic = rec.clone();
        cyclic.recs[0].children_start = 0;
        assert!(CascadeRecording::from_bytes(&cyclic.to_bytes()).is_none());
    }

    #[test]
    fn fill_outcome_reconstructs_children_and_faults() {
        let rec = sample_recording();
        let mut out = SampleOutcome {
            visited: None,
            feature_bytes: 0,
            new_commands: Vec::new(),
        };
        assert!(!rec.fill_outcome(0, &mut out));
        assert_eq!(out.visited, Some(NodeId::new(7)));
        assert_eq!(out.feature_bytes, 400);
        assert_eq!(out.new_commands.len(), 2);
        assert_eq!(out.new_commands[0], rec.command(1));
        assert_eq!(out.new_commands[1], rec.command(2));
        assert_eq!(out.new_commands[1].count, 2);

        let mut out2 = SampleOutcome {
            visited: None,
            feature_bytes: 0,
            new_commands: Vec::new(),
        };
        assert!(rec.fill_outcome(2, &mut out2), "faulted record");
        assert!(out2.visited.is_none() && out2.new_commands.is_empty());
    }

    #[test]
    fn matches_batches_checks_shape() {
        let rec = sample_recording();
        let batch = vec![NodeId::new(7)];
        assert!(rec.matches_batches(std::slice::from_ref(&batch)));
        assert!(!rec.matches_batches(&[batch.clone(), batch.clone()]));
        assert!(!rec.matches_batches(&[vec![
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
            NodeId::new(4)
        ]]));
    }
}
