//! Platform definitions (paper §VII-A).
//!
//! The evaluation compares eight systems: the CPU-centric baseline, the
//! two prior ISC designs (SmartSage, GList), and the BeaconGNN ablation
//! chain BG-1 → BG-DG → BG-SP → BG-DGSP → BG-2. All eight run through
//! one engine, differentiated only by the feature flags in
//! [`PlatformSpec`] — exactly the paper's ablation methodology.

use std::fmt;

/// Where neighbor sampling executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplingLocation {
    /// Host CPU samples over pages shipped through PCIe.
    HostCpu,
    /// SSD firmware samples over pages staged in SSD DRAM.
    Firmware,
    /// Die-level samplers sample in the flash control layer (§V-A).
    Die,
}

/// What crosses the flash channel per visited node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferGranularity {
    /// Whole flash pages (conventional SSDs — Challenge 2).
    Page,
    /// Only sampled commands + feature bytes (die-level sampling).
    Useful,
}

/// Who shepherds backend flash I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendControl {
    /// Firmware threads on the embedded cores (Challenge 3).
    Firmware,
    /// The hardware command router of §V-B (BG-2).
    HardwareRouter,
}

/// Where GNN computation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeLocation {
    /// Discrete PCIe accelerator (TPU-class), features cross PCIe.
    DiscreteAccel,
    /// The bus-attached SSD-internal spatial accelerator (§V-C).
    SsdAccel,
}

/// The eight evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// CPU-centric baseline: host sampling, discrete accelerator.
    Cc,
    /// SmartSage: in-SSD firmware sampling, host-side compute.
    SmartSage,
    /// GList: host sampling, in-SSD feature lookup + compute.
    Glist,
    /// BeaconGNN-1.0: GList + SmartSage combined (full offload, no
    /// further optimization).
    Bg1,
    /// BG-1 + DirectGraph (out-of-order sampling, no host translation).
    BgDg,
    /// BG-1 + die-level samplers (useful-bytes channel transfer).
    BgSp,
    /// BG-DG + BG-SP combined.
    BgDgsp,
    /// BeaconGNN-2.0: BG-DGSP + hardware command routing.
    Bg2,
}

impl Platform {
    /// All platforms in the paper's presentation order.
    pub const ALL: [Platform; 8] = [
        Platform::Cc,
        Platform::SmartSage,
        Platform::Glist,
        Platform::Bg1,
        Platform::BgDg,
        Platform::BgSp,
        Platform::BgDgsp,
        Platform::Bg2,
    ];

    /// The BeaconGNN ablation chain (Fig 14's BG-X bars).
    pub const BG_CHAIN: [Platform; 5] = [
        Platform::Bg1,
        Platform::BgDg,
        Platform::BgSp,
        Platform::BgDgsp,
        Platform::Bg2,
    ];

    /// The platform's feature specification.
    pub fn spec(self) -> PlatformSpec {
        match self {
            Platform::Cc => PlatformSpec {
                name: "CC",
                hop_barrier: true,
                direct_graph: false,
                sampling: SamplingLocation::HostCpu,
                transfer: TransferGranularity::Page,
                backend_control: BackendControl::Firmware,
                compute: ComputeLocation::DiscreteAccel,
                features_cross_pcie: true,
                host_feature_lookup: true,
            },
            Platform::SmartSage => PlatformSpec {
                name: "SmartSage",
                hop_barrier: true,
                direct_graph: false,
                sampling: SamplingLocation::Firmware,
                transfer: TransferGranularity::Page,
                backend_control: BackendControl::Firmware,
                compute: ComputeLocation::DiscreteAccel,
                features_cross_pcie: true,
                host_feature_lookup: true,
            },
            Platform::Glist => PlatformSpec {
                name: "GList",
                hop_barrier: true,
                direct_graph: false,
                sampling: SamplingLocation::HostCpu,
                transfer: TransferGranularity::Page,
                backend_control: BackendControl::Firmware,
                compute: ComputeLocation::SsdAccel,
                features_cross_pcie: false,
                host_feature_lookup: false,
            },
            Platform::Bg1 => PlatformSpec {
                name: "BG-1",
                hop_barrier: true,
                direct_graph: false,
                sampling: SamplingLocation::Firmware,
                transfer: TransferGranularity::Page,
                backend_control: BackendControl::Firmware,
                compute: ComputeLocation::SsdAccel,
                features_cross_pcie: false,
                host_feature_lookup: false,
            },
            Platform::BgDg => PlatformSpec {
                name: "BG-DG",
                hop_barrier: false,
                direct_graph: true,
                sampling: SamplingLocation::Firmware,
                transfer: TransferGranularity::Page,
                backend_control: BackendControl::Firmware,
                compute: ComputeLocation::SsdAccel,
                features_cross_pcie: false,
                host_feature_lookup: false,
            },
            Platform::BgSp => PlatformSpec {
                name: "BG-SP",
                hop_barrier: true,
                direct_graph: false,
                sampling: SamplingLocation::Die,
                transfer: TransferGranularity::Useful,
                backend_control: BackendControl::Firmware,
                compute: ComputeLocation::SsdAccel,
                features_cross_pcie: false,
                host_feature_lookup: false,
            },
            Platform::BgDgsp => PlatformSpec {
                name: "BG-DGSP",
                hop_barrier: false,
                direct_graph: true,
                sampling: SamplingLocation::Die,
                transfer: TransferGranularity::Useful,
                backend_control: BackendControl::Firmware,
                compute: ComputeLocation::SsdAccel,
                features_cross_pcie: false,
                host_feature_lookup: false,
            },
            Platform::Bg2 => PlatformSpec {
                name: "BG-2",
                hop_barrier: false,
                direct_graph: true,
                sampling: SamplingLocation::Die,
                transfer: TransferGranularity::Useful,
                backend_control: BackendControl::HardwareRouter,
                compute: ComputeLocation::SsdAccel,
                features_cross_pcie: false,
                host_feature_lookup: false,
            },
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        self.spec().name
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The feature flags that define a platform in the unified engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlatformSpec {
    /// Display name.
    pub name: &'static str,
    /// Hops serialize with a host round-trip between them (Challenge 1).
    pub hop_barrier: bool,
    /// Uses DirectGraph addressing (no per-node host/FTL translation).
    pub direct_graph: bool,
    /// Where sampling runs.
    pub sampling: SamplingLocation,
    /// What crosses the channel.
    pub transfer: TransferGranularity,
    /// Who controls the backend.
    pub backend_control: BackendControl,
    /// Where computation runs.
    pub compute: ComputeLocation,
    /// Whether feature vectors must cross PCIe to reach the compute
    /// engine.
    pub features_cross_pcie: bool,
    /// Whether the *host* performs feature-table lookup (CC and
    /// SmartSage): every visited node costs an extra host-issued
    /// feature-page read whose page crosses PCIe. GList's headline
    /// optimization — and half of BG-1's full-stage offload — is
    /// removing exactly this.
    pub host_feature_lookup: bool,
}

impl PlatformSpec {
    /// Whether the pipeline is channel-separable: the hardware router
    /// controls the backend, sampling happens on the dies, only useful
    /// bytes cross the channel, and neither the host nor a hop barrier
    /// sits in the command path — so a command's whole lifetime touches
    /// one channel's resources. Exactly BG-2 in the paper's lineup.
    /// This is the precondition for both the partitioned per-channel
    /// engine and the multi-SSD array replay.
    pub fn channel_separable(&self) -> bool {
        self.backend_control == BackendControl::HardwareRouter
            && self.sampling == SamplingLocation::Die
            && self.transfer == TransferGranularity::Useful
            && !self.hop_barrier
            && !self.features_cross_pcie
            && !self.host_feature_lookup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bg2_is_fully_optimized() {
        let s = Platform::Bg2.spec();
        assert!(!s.hop_barrier);
        assert!(s.direct_graph);
        assert_eq!(s.sampling, SamplingLocation::Die);
        assert_eq!(s.transfer, TransferGranularity::Useful);
        assert_eq!(s.backend_control, BackendControl::HardwareRouter);
        assert_eq!(s.compute, ComputeLocation::SsdAccel);
        assert!(!s.features_cross_pcie);
    }

    #[test]
    fn ablation_chain_differs_stepwise() {
        // BG-DG = BG-1 + DirectGraph only.
        let bg1 = Platform::Bg1.spec();
        let bgdg = Platform::BgDg.spec();
        assert!(bg1.hop_barrier && !bgdg.hop_barrier);
        assert_eq!(bg1.transfer, bgdg.transfer);
        // BG-SP = BG-1 + die samplers only.
        let bgsp = Platform::BgSp.spec();
        assert!(bgsp.hop_barrier);
        assert_eq!(bgsp.sampling, SamplingLocation::Die);
        // BG-DGSP combines both; BG-2 adds the router.
        let dgsp = Platform::BgDgsp.spec();
        assert_eq!(dgsp.backend_control, BackendControl::Firmware);
        assert_eq!(
            Platform::Bg2.spec().backend_control,
            BackendControl::HardwareRouter
        );
    }

    #[test]
    fn prior_work_shapes() {
        // SmartSage offloads sampling, computes off-device.
        let ss = Platform::SmartSage.spec();
        assert_eq!(ss.sampling, SamplingLocation::Firmware);
        assert_eq!(ss.compute, ComputeLocation::DiscreteAccel);
        assert!(ss.features_cross_pcie);
        // GList offloads feature lookup + compute, samples on host.
        let gl = Platform::Glist.spec();
        assert_eq!(gl.sampling, SamplingLocation::HostCpu);
        assert_eq!(gl.compute, ComputeLocation::SsdAccel);
        assert!(!gl.features_cross_pcie);
    }

    #[test]
    fn names_and_order() {
        let names: Vec<&str> = Platform::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "CC",
                "SmartSage",
                "GList",
                "BG-1",
                "BG-DG",
                "BG-SP",
                "BG-DGSP",
                "BG-2"
            ]
        );
        assert_eq!(Platform::Bg2.to_string(), "BG-2");
    }
}
