//! Computational storage arrays (paper §VIII, "practicality and future
//! proof").
//!
//! The paper expects BeaconGNN to scale out: multiple BeaconGNN SSDs in
//! an array, communicating over direct P2P links, with capacity and
//! compute growing linearly. This module models that array:
//!
//! * the graph partitions across SSDs (node → SSD by hash);
//! * each SSD runs the single-device pipeline on the commands whose
//!   target section lives on it;
//! * a sampled neighbor on another SSD turns into a P2P command hop plus
//!   the eventual feature transfer back to the requesting SSD's
//!   accelerator buffer.
//!
//! The model composes measured single-SSD behaviour with the
//! cross-partition traffic the sampler actually generates: it runs the
//! real engine once to obtain the per-visit command/feature volumes,
//! counts true cross-partition edges from the sampled command stream,
//! and solves for the array's steady-state throughput under the P2P
//! bandwidth constraint.

use beacon_flash::{DieSampler, GnnDieConfig, SampleCommand};
use beacon_gnn::GnnModelConfig;
use beacon_graph::{NodeId, Partition};
use beacon_ssd::SsdConfig;
use directgraph::DirectGraph;

use crate::engine::Engine;
use crate::spec::Platform;

/// Configuration of a BeaconGNN storage array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayConfig {
    /// SSDs in the array.
    pub ssds: usize,
    /// Per-link P2P bandwidth in bytes/second (PCIe P2P class).
    pub p2p_bandwidth: u64,
    /// Fixed latency per P2P command hop.
    pub p2p_hop_ns: u64,
}

impl ArrayConfig {
    /// A PCIe-P2P array of `ssds` devices at 4 GB/s per link.
    pub fn pcie_p2p(ssds: usize) -> Self {
        ArrayConfig {
            ssds,
            p2p_bandwidth: 4_000_000_000,
            p2p_hop_ns: 600,
        }
    }
}

/// Result of an array-scaling evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayScaling {
    /// SSDs in the array.
    pub ssds: usize,
    /// Single-SSD throughput (targets/s) of the same workload.
    pub single_throughput: f64,
    /// Array throughput (targets/s).
    pub array_throughput: f64,
    /// Fraction of sampled edges that crossed partitions.
    pub cross_fraction: f64,
}

impl ArrayScaling {
    /// Scaling efficiency: achieved speedup over ideal (`1.0` = linear).
    pub fn efficiency(&self) -> f64 {
        if self.single_throughput == 0.0 || self.ssds == 0 {
            return 0.0;
        }
        (self.array_throughput / self.single_throughput) / self.ssds as f64
    }
}

/// Evaluates array scaling for `platform` on a prepared workload.
///
/// Methodology: (1) run the single-SSD engine for the workload to get
/// its throughput and per-visit traffic; (2) replay the sampling
/// cascade functionally to count cross-partition hops under a
/// `node % ssds` partition; (3) each SSD serves `1/ssds` of the targets
/// at single-SSD speed while the P2P fabric carries cross-partition
/// commands and feature returns — whichever is slower bounds the array.
pub fn evaluate_array(
    platform: Platform,
    array: ArrayConfig,
    ssd: SsdConfig,
    model: GnnModelConfig,
    dg: &DirectGraph,
    batches: &[Vec<NodeId>],
    seed: u64,
) -> ArrayScaling {
    // Hash partitioning is the zero-metadata default; callers with a
    // locality-aware layout use [`evaluate_array_partitioned`].
    let n = dg.directory().len() as u32;
    let hash = Partition::hash(&trivial_graph(n), array.ssds as u32);
    evaluate_array_partitioned(platform, array, ssd, model, dg, batches, seed, &hash)
}

/// A node-count-only graph used to build id-based partitions (hash and
/// range partitioning never look at edges).
fn trivial_graph(n: u32) -> beacon_graph::CsrGraph {
    beacon_graph::CsrGraphBuilder::new(n as usize).build()
}

/// [`evaluate_array`] with an explicit node partition (e.g.
/// [`Partition::bfs_grow`] over the source graph, which cuts far fewer
/// sampled edges than hashing on clustered graphs).
///
/// # Panics
///
/// Panics if the array is empty or the partition's part count differs
/// from the array size.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_array_partitioned(
    platform: Platform,
    array: ArrayConfig,
    ssd: SsdConfig,
    model: GnnModelConfig,
    dg: &DirectGraph,
    batches: &[Vec<NodeId>],
    seed: u64,
    partition: &Partition,
) -> ArrayScaling {
    assert!(array.ssds >= 1, "array needs at least one SSD");
    assert_eq!(
        partition.parts() as usize,
        array.ssds,
        "partition/array size mismatch"
    );
    let single = Engine::new(platform, ssd, model, dg, seed).run(batches);
    let single_throughput = single.throughput();

    if array.ssds == 1 {
        return ArrayScaling {
            ssds: 1,
            single_throughput,
            array_throughput: single_throughput,
            cross_fraction: 0.0,
        };
    }

    // Count cross-partition edges + feature bytes by replaying the
    // cascade functionally (deterministic under the same seed family).
    // A sampled edge crosses when child and parent live on different
    // SSDs; a feature return crosses when the visited node lives away
    // from the target's home SSD (where aggregation happens).
    let die_cfg = GnnDieConfig {
        num_hops: model.hops,
        fanout: model.fanout,
        feature_bytes: model.feature_bytes() as u16,
    };
    let mut sampler = DieSampler::new(die_cfg, seed);
    let mut total_edges = 0u64;
    let mut cross_edges = 0u64;
    let mut cross_feature_bytes = 0u64;
    for batch in batches {
        for &target in batch {
            let addr = dg
                .directory()
                .primary_addr(target)
                .expect("target in directory");
            let home = partition.part_of(target);
            // Frontier carries (command, parent's partition).
            let mut frontier = vec![(SampleCommand::root(addr, 0), home)];
            while let Some((cmd, parent_part)) = frontier.pop() {
                let out = sampler
                    .execute(&cmd, dg.image())
                    .expect("well-formed image");
                let here = match out.visited {
                    Some(node) => {
                        let part = partition.part_of(node);
                        if cmd.parent != SampleCommand::NO_PARENT {
                            total_edges += 1;
                            if part != parent_part {
                                cross_edges += 1;
                            }
                        }
                        if part != home {
                            cross_feature_bytes += out.feature_bytes as u64;
                        }
                        part
                    }
                    // Secondary sections live with their owner.
                    None => parent_part,
                };
                for child in out.new_commands {
                    frontier.push((child, here));
                }
            }
        }
    }
    let cross_fraction = if total_edges == 0 {
        0.0
    } else {
        cross_edges as f64 / total_edges as f64
    };

    // Per-target cross traffic: command hops (16 B each) + features.
    let targets: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let cross_bytes_per_target = (cross_edges * 16 + cross_feature_bytes) as f64 / targets as f64;

    // Compute capacity: each SSD serves its shard at single-SSD speed.
    let compute_limit = single_throughput * array.ssds as f64;
    // Fabric capacity: every SSD has one P2P port; aggregate fabric
    // bandwidth is ssds × link bandwidth (full-duplex mesh/switch).
    let fabric_bytes_per_sec = array.p2p_bandwidth as f64 * array.ssds as f64;
    let fabric_limit = if cross_bytes_per_target > 0.0 {
        fabric_bytes_per_sec / cross_bytes_per_target
    } else {
        f64::INFINITY
    };
    // Hop latency adds pipeline depth, not steady-state throughput loss;
    // it shows up only if it starves the pipeline (ignored at
    // mini-batch scale).
    let array_throughput = compute_limit.min(fabric_limit);

    ArrayScaling {
        ssds: array.ssds,
        single_throughput,
        array_throughput,
        cross_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_graph::{generate, FeatureTable};
    use directgraph::{build::DirectGraphBuilder, AddrLayout};

    fn setup() -> (DirectGraph, GnnModelConfig, Vec<Vec<NodeId>>) {
        let cfg = generate::PowerLawConfig::new(3_000, 25.0);
        let graph = generate::power_law(&cfg, 5);
        let feats = FeatureTable::synthetic(3_000, 100, 5);
        let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &feats)
            .unwrap();
        let batches = vec![(0..64).map(NodeId::new).collect()];
        (dg, GnnModelConfig::paper_default(100), batches)
    }

    #[test]
    fn single_ssd_is_identity() {
        let (dg, model, batches) = setup();
        let s = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(1),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        assert_eq!(s.ssds, 1);
        assert_eq!(s.array_throughput, s.single_throughput);
        assert_eq!(s.cross_fraction, 0.0);
        assert!((s.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ample_p2p_scales_linearly() {
        let (dg, model, batches) = setup();
        let s = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        // §VIII's expectation: both capacity and computation grow
        // linearly with SSDs when the fabric keeps up.
        assert!(s.efficiency() > 0.95, "efficiency {:.2}", s.efficiency());
        assert!(s.cross_fraction > 0.5, "4-way partition should cross often");
    }

    #[test]
    fn starved_fabric_caps_scaling() {
        let (dg, model, batches) = setup();
        let thin = ArrayConfig {
            ssds: 8,
            p2p_bandwidth: 2_000_000,
            p2p_hop_ns: 600,
        };
        let s = evaluate_array(
            Platform::Bg2,
            thin,
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        assert!(
            s.efficiency() < 0.5,
            "thin fabric must bound scaling: {:.2}",
            s.efficiency()
        );
        assert!(s.array_throughput < s.single_throughput * 8.0);
    }

    #[test]
    fn locality_partition_reduces_cross_traffic() {
        // Build a clustered graph so a locality-aware partition can
        // shine, and reconstruct it for partitioning.
        let mut b = beacon_graph::CsrGraphBuilder::new(2_000);
        let mut rng = simkit::SplitMix64::new(4);
        for c in 0..4usize {
            let base = c * 500;
            for i in 0..500usize {
                for _ in 0..8 {
                    let j = rng.next_bounded(500) as usize;
                    if i != j {
                        b.add_edge(
                            NodeId::new((base + i) as u32),
                            NodeId::new((base + j) as u32),
                        );
                    }
                }
            }
        }
        let graph = b.build();
        let feats = beacon_graph::FeatureTable::synthetic(2_000, 64, 4);
        let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &feats)
            .unwrap();
        let model = GnnModelConfig::paper_default(64);
        let batches = vec![(0..64u32).map(|i| NodeId::new(i * 31 % 2_000)).collect()];

        let hash = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            3,
        );
        let part = Partition::bfs_grow(&graph, 4);
        let local = evaluate_array_partitioned(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            3,
            &part,
        );
        assert!(
            local.cross_fraction < hash.cross_fraction / 2.0,
            "bfs {:.3} vs hash {:.3}",
            local.cross_fraction,
            hash.cross_fraction
        );
    }

    #[test]
    fn more_ssds_more_cross_traffic() {
        let (dg, model, batches) = setup();
        let two = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(2),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        let eight = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(8),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        assert!(eight.cross_fraction > two.cross_fraction);
    }
}
