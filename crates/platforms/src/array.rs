//! Computational storage arrays (paper §VIII, "practicality and future
//! proof").
//!
//! The paper expects BeaconGNN to scale out: multiple BeaconGNN SSDs in
//! an array, communicating over direct P2P links, with capacity and
//! compute growing linearly. This module models that array two ways:
//!
//! * [`ArrayEngine`] — the simulated path: a discrete-event multi-SSD
//!   simulation with one *device lane* per SSD, advanced under the same
//!   conservative-lookahead round protocol as the per-channel
//!   [`PartitionedEngine`](crate::PartitionedEngine), with the
//!   partition-aware host router dispatching each mini-batch target to
//!   its owning device and cross-partition expansions riding the
//!   explicit fabric cost model of [`FabricConfig`].
//! * [`evaluate_array`] / [`evaluate_array_partitioned`] — the analytic
//!   steady-state solver kept as a cross-check: single-SSD throughput ×
//!   devices, capped by aggregate fabric bandwidth over the measured
//!   cross-partition byte volume.
//!
//! ## The simulated path: recorded-cascade replay
//!
//! The die samplers are stateful (each die's TRNG advances across
//! commands in execution order), so re-running sampling per device
//! would change the sampled subgraphs with the device count. Instead
//! the array simulation is a two-phase *record/replay*:
//!
//! 1. [`ArrayEngine::record`] runs the serial single-SSD engine once
//!    and logs the functional sampling cascade — every flash command
//!    with its content, die, transfer bytes, visited node and children
//!    ([`CascadeRecording`](crate::replay): one record per command,
//!    children consecutive, child index > parent index). The same
//!    recording type also drives [`Engine::replay_with`]'s single-SSD
//!    timing replay across the experiment matrix.
//! 2. [`ArrayEngine::run_recorded`] re-times that fixed command set on
//!    N devices. A prepass assigns every record an *owner* device (the
//!    partition of its visited node; secondary-section records inherit
//!    their parent's owner) and a *home* device (the owner of its root
//!    target, where aggregation happens). Each device lane replays its
//!    records through the BG-2 pipeline shape — router issue, die
//!    sense, channel transfer, router parse, DRAM staging — on its own
//!    full SSD backend. A child owned by another device becomes a
//!    fabric command hop; a feature retrieved away from its home device
//!    becomes a fabric feature return that gates the home device's
//!    compute start.
//!
//! Because the command set is fixed by the recording, per-device work
//! counts sum to the single-device engine's counts *by construction*,
//! and a 1-device array returns the serial engine's metrics verbatim.
//!
//! ## Determinism
//!
//! The lane protocol is the per-channel engine's, lifted from channels
//! to devices: lanes drain events strictly below a shared horizon (the
//! next multiple of the fabric hop latency — the minimum cross-device
//! delay — above the earliest pending event), and everything crossing a
//! device boundary is buffered, globally sorted by `(time, record
//! index)`, and applied by the coordinator alone: fabric link grants in
//! sorted order, deliveries quantized to the next window boundary.
//! Thread count is invisible; any [`threads`](ArrayEngine::threads)
//! value produces byte-identical reports.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use beacon_energy::EnergyLedger;
use beacon_flash::{DieSampler, GnnDieConfig, SampleCommand};
use beacon_gnn::{GnnModelConfig, MinibatchWorkload};
use beacon_graph::{NodeId, Partition};
use beacon_ssd::{FabricConfig, SsdConfig};
use directgraph::DirectGraph;
use simkit::obs::SpanRecorder;
use simkit::sync::{EpochWindow, MessagePool};
use simkit::{
    profile, BandwidthResource, Calendar, ChainTable, Duration, LatencyReport, PathArena, PathAttr,
    QueryLat, SerialResource, SimTime, Stage, Trace, NO_PATH,
};

use crate::engine::{Engine, EngineScratch, FlashServiceMemo, NODE_ID_BYTES, ON_DIE_SAMPLE_TIME};
use crate::metrics::{
    AccelOccupancy, CmdBreakdown, HopWindow, PoolCounters, RunMetrics, StageBreakdown,
    TimelineBuilder,
};
use crate::partition::accel_config;
use crate::replay::{CascadeRec, CascadeRecording};
use crate::spec::Platform;

/// Sentinel for "lane calendar is empty" in the shared next-event
/// atomics.
const IDLE: u64 = u64::MAX;

/// Bytes of one cross-device command hop (a forwarded sampling
/// command: packed address + hop/count/subgraph header).
const CMD_HOP_BYTES: u64 = 16;

/// Configuration of a BeaconGNN storage array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayConfig {
    /// SSDs in the array.
    pub ssds: usize,
    /// The inter-device fabric (per-link bandwidth + hop latency).
    pub fabric: FabricConfig,
}

impl ArrayConfig {
    /// A PCIe-P2P array of `ssds` devices at 4 GB/s per link.
    pub fn pcie_p2p(ssds: usize) -> Self {
        ArrayConfig {
            ssds,
            fabric: FabricConfig::pcie_p2p(),
        }
    }

    /// An NVMe-oF array of `ssds` devices (10 GB/s links, 5 µs hops).
    pub fn nvme_of(ssds: usize) -> Self {
        ArrayConfig {
            ssds,
            fabric: FabricConfig::nvme_of(),
        }
    }

    /// Replaces the fabric model.
    pub fn with_fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = fabric;
        self
    }
}

/// Result of an analytic array-scaling evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayScaling {
    /// SSDs in the array.
    pub ssds: usize,
    /// Single-SSD throughput (targets/s) of the same workload.
    pub single_throughput: f64,
    /// Array throughput (targets/s).
    pub array_throughput: f64,
    /// Fraction of sampled edges that crossed partitions.
    pub cross_fraction: f64,
}

impl ArrayScaling {
    /// Scaling efficiency: achieved speedup over ideal (`1.0` = linear).
    pub fn efficiency(&self) -> f64 {
        if self.single_throughput == 0.0 || self.ssds == 0 {
            return 0.0;
        }
        (self.array_throughput / self.single_throughput) / self.ssds as f64
    }
}

/// Evaluates analytic array scaling for `platform` on a prepared
/// workload.
///
/// Methodology: (1) run the single-SSD engine for the workload to get
/// its throughput and per-visit traffic; (2) replay the sampling
/// cascade functionally to count cross-partition hops under a
/// `node % ssds` partition; (3) each SSD serves `1/ssds` of the targets
/// at single-SSD speed while the P2P fabric carries cross-partition
/// commands and feature returns — whichever is slower bounds the array.
pub fn evaluate_array(
    platform: Platform,
    array: ArrayConfig,
    ssd: SsdConfig,
    model: GnnModelConfig,
    dg: &DirectGraph,
    batches: &[Vec<NodeId>],
    seed: u64,
) -> ArrayScaling {
    // Hash partitioning is the zero-metadata default; callers with a
    // locality-aware layout use [`evaluate_array_partitioned`].
    let n = dg.directory().len() as u32;
    let hash = Partition::hash(&trivial_graph(n), array.ssds as u32);
    evaluate_array_partitioned(platform, array, ssd, model, dg, batches, seed, &hash)
}

/// A node-count-only graph used to build id-based partitions (hash and
/// range partitioning never look at edges).
fn trivial_graph(n: u32) -> beacon_graph::CsrGraph {
    beacon_graph::CsrGraphBuilder::new(n as usize).build()
}

/// [`evaluate_array`] with an explicit node partition (e.g.
/// [`Partition::bfs_grow`] over the source graph, which cuts far fewer
/// sampled edges than hashing on clustered graphs).
///
/// # Panics
///
/// Panics if the array is empty or the partition's part count differs
/// from the array size.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_array_partitioned(
    platform: Platform,
    array: ArrayConfig,
    ssd: SsdConfig,
    model: GnnModelConfig,
    dg: &DirectGraph,
    batches: &[Vec<NodeId>],
    seed: u64,
    partition: &Partition,
) -> ArrayScaling {
    assert!(array.ssds >= 1, "array needs at least one SSD");
    assert_eq!(
        partition.parts() as usize,
        array.ssds,
        "partition/array size mismatch"
    );
    let single = Engine::new(platform, ssd, model, dg, seed).run(batches);
    let single_throughput = single.throughput();

    if array.ssds == 1 {
        return ArrayScaling {
            ssds: 1,
            single_throughput,
            array_throughput: single_throughput,
            cross_fraction: 0.0,
        };
    }

    // Count cross-partition edges + feature bytes by replaying the
    // cascade functionally (deterministic under the same seed family).
    // A sampled edge crosses when child and parent live on different
    // SSDs; a feature return crosses when the visited node lives away
    // from the target's home SSD (where aggregation happens).
    let die_cfg = GnnDieConfig {
        num_hops: model.hops,
        fanout: model.fanout,
        feature_bytes: model.feature_bytes() as u16,
    };
    let mut sampler = DieSampler::new(die_cfg, seed);
    let mut total_edges = 0u64;
    let mut cross_edges = 0u64;
    let mut cross_feature_bytes = 0u64;
    for batch in batches {
        for &target in batch {
            let addr = dg
                .directory()
                .primary_addr(target)
                .expect("target in directory");
            let home = partition.part_of(target);
            // Frontier carries (command, parent's partition).
            let mut frontier = vec![(SampleCommand::root(addr, 0), home)];
            while let Some((cmd, parent_part)) = frontier.pop() {
                let out = sampler
                    .execute(&cmd, dg.image())
                    .expect("well-formed image");
                let here = match out.visited {
                    Some(node) => {
                        let part = partition.part_of(node);
                        if cmd.parent != SampleCommand::NO_PARENT {
                            total_edges += 1;
                            if part != parent_part {
                                cross_edges += 1;
                            }
                        }
                        if part != home {
                            cross_feature_bytes += out.feature_bytes as u64;
                        }
                        part
                    }
                    // Secondary sections live with their owner.
                    None => parent_part,
                };
                for child in out.new_commands {
                    frontier.push((child, here));
                }
            }
        }
    }
    let cross_fraction = if total_edges == 0 {
        0.0
    } else {
        cross_edges as f64 / total_edges as f64
    };

    // Per-target cross traffic: command hops (16 B each) + features.
    let targets: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let cross_bytes_per_target =
        (cross_edges * CMD_HOP_BYTES + cross_feature_bytes) as f64 / targets as f64;

    // Compute capacity: each SSD serves its shard at single-SSD speed.
    let compute_limit = single_throughput * array.ssds as f64;
    // Fabric capacity: every SSD has one P2P port; aggregate fabric
    // bandwidth is ssds × link bandwidth (full-duplex mesh/switch).
    let fabric_bytes_per_sec = array.fabric.bandwidth as f64 * array.ssds as f64;
    let fabric_limit = if cross_bytes_per_target > 0.0 {
        fabric_bytes_per_sec / cross_bytes_per_target
    } else {
        f64::INFINITY
    };
    // Hop latency adds pipeline depth, not steady-state throughput loss;
    // it shows up only if it starves the pipeline (ignored at
    // mini-batch scale).
    let array_throughput = compute_limit.min(fabric_limit);

    ArrayScaling {
        ssds: array.ssds,
        single_throughput,
        array_throughput,
        cross_fraction,
    }
}

// ---------------------------------------------------------------------------
// Simulated path: recorded-cascade replay over device lanes.
// ---------------------------------------------------------------------------

/// A recorded sampling cascade plus the serial single-SSD run that
/// produced it: the input to [`ArrayEngine::run_recorded`].
///
/// Recording depends only on the workload (platform, SSD, model, graph,
/// seed, batches) — not on the array size, fabric, or partition — so
/// one cascade can be replayed across a whole device-count × partition
/// × fabric sweep.
pub struct ArrayCascade {
    recording: CascadeRecording,
    single: RunMetrics,
    batches: Vec<Vec<NodeId>>,
}

impl ArrayCascade {
    /// The serial single-SSD run's metrics (the array's baseline).
    pub fn single_metrics(&self) -> &RunMetrics {
        &self.single
    }

    /// The shared cascade recording (also replayable through
    /// [`Engine::replay_with`](crate::Engine)).
    pub fn recording(&self) -> &CascadeRecording {
        &self.recording
    }

    /// Flash commands recorded.
    pub fn commands(&self) -> usize {
        self.recording.commands()
    }
}

/// Per-device work and busy-time counters of one array run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceMetrics {
    /// Device index.
    pub device: usize,
    /// Mini-batch targets homed on this device.
    pub targets: u64,
    /// Flash page reads this device served.
    pub flash_reads: u64,
    /// Nodes visited by commands owned by this device.
    pub nodes_visited: u64,
    /// Sampling commands the §VI-E check aborted on this device.
    pub sampler_faults: u64,
    /// Bytes its flash channels moved.
    pub channel_bytes: u64,
    /// Events its lane processed.
    pub events_processed: u64,
    /// Die busy time summed over its dies.
    pub die_busy: Duration,
    /// Channel busy time summed over its channels.
    pub channel_busy: Duration,
    /// Its DRAM's busy time (feature staging).
    pub dram_busy: Duration,
    /// Its accelerator's compute time over all batches.
    pub compute_time: Duration,
}

/// Per-link fabric counters of one array run (one egress link per
/// device).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricLinkMetrics {
    /// Source device of this egress link.
    pub device: usize,
    /// Bytes the link carried (command hops + feature returns).
    pub bytes: u64,
    /// Messages the link carried.
    pub messages: u64,
    /// Link busy time.
    pub busy: Duration,
}

/// The complete result of one simulated array run: the merged
/// array-level [`RunMetrics`] plus per-device and fabric-link
/// breakdowns and the partition's traffic statistics.
#[derive(Debug, Clone)]
pub struct ArrayRunMetrics {
    /// Devices in the array.
    pub devices: usize,
    /// Merged array-level metrics (targets, makespan, timelines, …).
    pub metrics: RunMetrics,
    /// Single-SSD throughput of the recorded baseline run.
    pub single_throughput: f64,
    /// Per-device breakdown, in device order.
    pub per_device: Vec<DeviceMetrics>,
    /// Per-link fabric counters, in device order.
    pub links: Vec<FabricLinkMetrics>,
    /// Sampled edges (visited child commands) in the cascade.
    pub total_edges: u64,
    /// Sampled edges whose child was owned by a different device than
    /// its parent (each one crossed the fabric as a command hop).
    pub cross_edges: u64,
    /// Feature bytes retrieved away from their home device (each byte
    /// crossed the fabric as a feature return).
    pub cross_feature_bytes: u64,
    /// Rounds of the conservative-lookahead protocol.
    pub rounds: u64,
    /// Cross-device messages delivered.
    pub messages: u64,
}

impl ArrayRunMetrics {
    /// Array throughput in target nodes per second.
    pub fn throughput(&self) -> f64 {
        self.metrics.throughput()
    }

    /// Scaling efficiency: achieved speedup over ideal (`1.0` =
    /// linear).
    pub fn efficiency(&self) -> f64 {
        if self.single_throughput == 0.0 || self.devices == 0 {
            return 0.0;
        }
        (self.throughput() / self.single_throughput) / self.devices as f64
    }

    /// Fraction of sampled edges that crossed devices.
    pub fn cross_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cross_edges as f64 / self.total_edges as f64
        }
    }

    /// Total bytes the fabric carried.
    pub fn fabric_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes).sum()
    }

    /// Snapshots the run into a [`simkit::MetricsRegistry`]: the merged
    /// [`RunMetrics`] sections followed by an `array` section, one
    /// `device_<i>` section per device, and one `fabric_link_<i>`
    /// section per egress link. Section and field order is fixed, so
    /// two identical runs serialize byte-identically at any thread
    /// count.
    pub fn metrics_registry(&self) -> simkit::MetricsRegistry {
        let mut reg = self.metrics.metrics_registry();
        let a = reg.section("array");
        a.set_u64("devices", self.devices as u64);
        a.set_f64("single_throughput_targets_per_s", self.single_throughput);
        a.set_f64("efficiency", self.efficiency());
        a.set_u64("total_edges", self.total_edges);
        a.set_u64("cross_edges", self.cross_edges);
        a.set_f64("cross_fraction", self.cross_fraction());
        a.set_u64("cross_feature_bytes", self.cross_feature_bytes);
        a.set_u64("fabric_bytes", self.fabric_bytes());
        a.set_u64("rounds", self.rounds);
        a.set_u64("messages", self.messages);
        for d in &self.per_device {
            let s = reg.section(&format!("device_{}", d.device));
            s.set_u64("targets", d.targets);
            s.set_u64("flash_reads", d.flash_reads);
            s.set_u64("nodes_visited", d.nodes_visited);
            s.set_u64("sampler_faults", d.sampler_faults);
            s.set_u64("channel_bytes", d.channel_bytes);
            s.set_u64("events_processed", d.events_processed);
            s.set_duration("die_busy", d.die_busy);
            s.set_duration("channel_busy", d.channel_busy);
            s.set_duration("dram_busy", d.dram_busy);
            s.set_duration("compute_time", d.compute_time);
        }
        for l in &self.links {
            let s = reg.section(&format!("fabric_link_{}", l.device));
            s.set_u64("bytes", l.bytes);
            s.set_u64("messages", l.messages);
            s.set_duration("busy", l.busy);
        }
        reg
    }
}

/// Owner/home assignment and cross-traffic statistics of one cascade
/// under one partition.
struct Prepass {
    /// Owning device of each record (partition of its visited node;
    /// secondary-section records inherit their parent's owner).
    owner: Vec<u32>,
    /// Home device of each record (owner of its root target).
    home: Vec<u32>,
    /// Global query index of each record's root target (roots are
    /// numbered sequentially across batches; children inherit).
    qid: Vec<u32>,
    total_edges: u64,
    cross_edges: u64,
    cross_feature_bytes: u64,
}

fn prepass(log: &CascadeRecording, batches: &[Vec<NodeId>], partition: &Partition) -> Prepass {
    let recs = &log.recs;
    let mut owner = vec![0u32; recs.len()];
    let mut home = vec![0u32; recs.len()];
    let mut qid = vec![0u32; recs.len()];
    let mut total_edges = 0u64;
    let mut cross_edges = 0u64;
    let mut cross_feature_bytes = 0u64;
    // Roots first: a root's visited node is its target.
    let mut next_qid = 0u32;
    for (bi, batch) in batches.iter().enumerate() {
        let base = log.batch_roots[bi] as usize;
        for (j, &target) in batch.iter().enumerate() {
            let p = partition.part_of(target);
            owner[base + j] = p;
            home[base + j] = p;
            qid[base + j] = next_qid;
            next_qid += 1;
        }
    }
    // One forward pass assigns children (every child index is greater
    // than its parent's, so parents are always resolved first).
    for i in 0..recs.len() {
        let (po, ph, pq) = (owner[i], home[i], qid[i]);
        let cs = recs[i].children_start as usize;
        for c in cs..cs + recs[i].children_len as usize {
            let visited = recs[c].visited;
            let co = if visited != u32::MAX {
                total_edges += 1;
                let p = partition.part_of(NodeId::new(visited));
                if p != po {
                    cross_edges += 1;
                }
                p
            } else {
                po
            };
            owner[c] = co;
            home[c] = ph;
            qid[c] = pq;
        }
    }
    for (i, r) in recs.iter().enumerate() {
        if r.feature_bytes > 0 && owner[i] != home[i] {
            cross_feature_bytes += r.feature_bytes as u64;
        }
    }
    Prepass {
        owner,
        home,
        qid,
        total_edges,
        cross_edges,
        cross_feature_bytes,
    }
}

/// Read-only replay context shared by every lane and the coordinator.
struct ReplayCtx<'c> {
    recs: &'c [CascadeRec],
    owner: &'c [u32],
    home: &'c [u32],
    qid: &'c [u32],
}

/// Device-lane pipeline events. `Arrive` carries only the record index
/// (the arrival instant is the command's lifetime start); later stages
/// thread the timing they need for the latency breakdown.
#[derive(Debug, Clone, Copy)]
enum DevEvent {
    Arrive(u32),
    Die(u32, SimTime),
    Xfer(u32, SimTime, SimTime),
    Done(u32, SimTime, Duration),
    Finish(u32, SimTime, Duration),
}

/// Cross-device messages. Keys are `(record index << 1) | type bit`,
/// so spawn and feature keys never collide and the global sort is
/// total.
#[derive(Debug, Clone, Copy)]
enum AMsg {
    /// Forward a sampled child command to its owning device.
    Spawn {
        from: u32,
        to: u32,
        rec: u32,
        /// Inherited critical-path attribution (zeroed when latency
        /// tracking is off).
        path: PathAttr,
    },
    /// Return retrieved feature bytes to the record's home device.
    Feature {
        from: u32,
        to: u32,
        rec: u32,
        bytes: u64,
        /// The retrieving command's attribution at retirement, so the
        /// fabric return extends its query's chain.
        path: PathAttr,
    },
}

fn spawn_key(rec: u32) -> u128 {
    (rec as u128) << 1
}

fn feature_key(rec: u32) -> u128 {
    ((rec as u128) << 1) | 1
}

/// One device's event loop: a full SSD backend (all channels, dies and
/// DRAM), a private calendar, and lane-local metric accumulators that
/// merge in fixed device order after the run.
struct DevLane {
    dev: usize,
    ssd: SsdConfig,
    dies: Vec<SerialResource>,
    chans: Vec<SerialResource>,
    dram: BandwidthResource,
    calendar: Calendar<DevEvent>,
    cal_base: simkit::PoolStats,
    memo: FlashServiceMemo,
    outbox: MessagePool<AMsg>,

    record_hops: bool,
    hop_first: Vec<Option<SimTime>>,
    hop_last: Vec<Option<SimTime>>,
    cmd_breakdown: CmdBreakdown,
    die_timeline: TimelineBuilder,
    channel_timeline: TimelineBuilder,
    nodes_visited: u64,
    flash_reads: u64,
    sampler_faults: u64,
    router_cmds: u64,
    channel_bytes: u64,
    dram_bytes: u64,
    events_processed: u64,
    prep_end: SimTime,

    /// Per-query latency tracking (off by default; see
    /// [`ArrayEngine::with_latency`]).
    lat_on: bool,
    /// Attributions of this device's in-flight records.
    arena: PathArena,
    /// Record index → arena handle ([`NO_PATH`] when idle; empty when
    /// tracking is off).
    lat_of: Vec<u32>,
    /// Winning chain per global query id (merged in device order).
    chains: ChainTable,
}

impl DevLane {
    fn new(dev: usize, ssd: SsdConfig, hops: usize, lat: Option<(usize, usize)>) -> Self {
        let geo = &ssd.geometry;
        DevLane {
            dev,
            dies: vec![SerialResource::new(); geo.total_dies()],
            chans: vec![SerialResource::new(); geo.channels],
            dram: BandwidthResource::new(ssd.dram_bandwidth),
            calendar: Calendar::new(),
            cal_base: simkit::PoolStats::default(),
            memo: FlashServiceMemo::new(ssd.timing, ON_DIE_SAMPLE_TIME, geo.page_size),
            outbox: MessagePool::new(),
            record_hops: true,
            hop_first: vec![None; hops],
            hop_last: vec![None; hops],
            cmd_breakdown: CmdBreakdown::default(),
            die_timeline: TimelineBuilder::new(),
            channel_timeline: TimelineBuilder::new(),
            nodes_visited: 0,
            flash_reads: 0,
            sampler_faults: 0,
            router_cmds: 0,
            channel_bytes: 0,
            dram_bytes: 0,
            events_processed: 0,
            prep_end: SimTime::ZERO,
            lat_on: lat.is_some(),
            arena: PathArena::default(),
            lat_of: lat.map_or_else(Vec::new, |(recs, _)| vec![NO_PATH; recs]),
            chains: ChainTable::new(lat.map_or(0, |(_, queries)| queries)),
            ssd,
        }
    }

    fn next_time_ns(&self) -> u64 {
        self.calendar.peek_time().map_or(IDLE, |t| t.as_ns())
    }

    /// Drains every event strictly below `horizon`.
    fn run_round(&mut self, ctx: &ReplayCtx<'_>, horizon: SimTime) {
        loop {
            match self.calendar.peek_time() {
                Some(t) if t < horizon => {}
                _ => break,
            }
            let (now, ev) = self.calendar.pop().expect("peeked event");
            self.events_processed += 1;
            match ev {
                DevEvent::Arrive(rec) => self.on_arrive(ctx, rec, now),
                DevEvent::Die(rec, created) => self.on_die(ctx, rec, created, now),
                DevEvent::Xfer(rec, die_start, created) => {
                    self.on_xfer(ctx, rec, die_start, created, now)
                }
                DevEvent::Done(rec, xfer_end, chan_wait) => {
                    self.on_done(ctx, rec, xfer_end, chan_wait, now)
                }
                DevEvent::Finish(rec, xfer_end, chan_wait) => {
                    self.finish(ctx, rec, xfer_end, chan_wait, now)
                }
            }
        }
    }

    /// The arena handle of an in-flight record ([`NO_PATH`] when
    /// tracking is off).
    fn lat(&self, rec: u32) -> u32 {
        if self.lat_on {
            self.lat_of[rec as usize]
        } else {
            NO_PATH
        }
    }

    fn on_arrive(&mut self, ctx: &ReplayCtx<'_>, rec: u32, now: SimTime) {
        if self.record_hops {
            let h = ctx.recs[rec as usize].hop as usize;
            self.hop_first[h] = Some(self.hop_first[h].map_or(now, |t| t.min(now)));
        }
        self.router_cmds += 1;
        let h = self.lat(rec);
        if h != NO_PATH {
            self.arena
                .get_mut(h)
                .add(Stage::Other, self.ssd.router_latency);
        }
        self.calendar
            .schedule(now + self.ssd.router_latency, DevEvent::Die(rec, now));
    }

    fn on_die(&mut self, ctx: &ReplayCtx<'_>, rec: u32, created: SimTime, now: SimTime) {
        let r = &ctx.recs[rec as usize];
        let grant = self.dies[r.die as usize].acquire(now, self.memo.die_service);
        self.die_timeline.push(grant.start, grant.end);
        self.flash_reads += 1;
        if r.fault {
            self.sampler_faults += 1;
        }
        self.cmd_breakdown
            .wait_before_flash
            .record_duration(grant.start.saturating_duration_since(created));
        let h = self.lat(rec);
        if h != NO_PATH {
            let p = self.arena.get_mut(h);
            p.add(Stage::Queue, grant.start.saturating_duration_since(now));
            p.add(Stage::DieSense, grant.end - grant.start);
        }
        self.calendar
            .schedule(grant.end, DevEvent::Xfer(rec, grant.start, created));
    }

    fn on_xfer(
        &mut self,
        ctx: &ReplayCtx<'_>,
        rec: u32,
        die_start: SimTime,
        _created: SimTime,
        now: SimTime,
    ) {
        let r = &ctx.recs[rec as usize];
        let bytes = r.result_bytes as u64;
        let service = self.memo.xfer_service(bytes);
        let chan = r.die as usize % self.ssd.geometry.channels;
        let grant = self.chans[chan].acquire(now, service);
        self.channel_timeline.push(grant.start, grant.end);
        self.channel_bytes += bytes;
        let chan_wait = grant.start.saturating_duration_since(now);
        self.cmd_breakdown
            .flash
            .record_duration((now - die_start) + (grant.end - grant.start));
        let h = self.lat(rec);
        if h != NO_PATH {
            let p = self.arena.get_mut(h);
            p.add(Stage::Queue, chan_wait);
            p.add(Stage::Channel, grant.end - grant.start);
            p.add(Stage::Other, self.ssd.router_latency);
        }
        // Trailing router parse is a fixed, contention-free hop.
        self.calendar.schedule(
            grant.end + self.ssd.router_latency,
            DevEvent::Done(rec, grant.end, chan_wait),
        );
    }

    fn on_done(
        &mut self,
        ctx: &ReplayCtx<'_>,
        rec: u32,
        xfer_end: SimTime,
        chan_wait: Duration,
        now: SimTime,
    ) {
        let fb = ctx.recs[rec as usize].feature_bytes as u64;
        if fb > 0 && !self.ssd.dram_bypass {
            // Stage in this device's own DRAM; the lane owns it, so the
            // transfer is lane-local (unlike the per-channel engine's
            // shared-DRAM coordinator round trip).
            let grant = self.dram.transfer(now, fb);
            self.dram_bytes += fb;
            let h = self.lat(rec);
            if h != NO_PATH {
                let p = self.arena.get_mut(h);
                p.add(Stage::Queue, grant.start.saturating_duration_since(now));
                p.add(Stage::Dram, grant.end - grant.start);
            }
            self.calendar
                .schedule(grant.end, DevEvent::Finish(rec, xfer_end, chan_wait));
        } else {
            self.finish(ctx, rec, xfer_end, chan_wait, now);
        }
    }

    fn finish(
        &mut self,
        ctx: &ReplayCtx<'_>,
        rec: u32,
        xfer_end: SimTime,
        chan_wait: Duration,
        now: SimTime,
    ) {
        let ri = rec as usize;
        let r = &ctx.recs[ri];
        self.cmd_breakdown
            .wait_after_flash
            .record_duration(chan_wait + now.saturating_duration_since(xfer_end));
        if self.record_hops {
            let h = r.hop as usize;
            self.hop_last[h] = Some(self.hop_last[h].map_or(now, |t| t.max(now)));
        }
        if r.visited != u32::MAX {
            self.nodes_visited += 1;
        }
        // At retirement the record's chain competes for its query's
        // longest path, and children inherit the attribution so far.
        let inherit = {
            let h = self.lat(rec);
            if h != NO_PATH {
                let p = *self.arena.get(h);
                self.chains.observe(ctx.qid[ri] as usize, now, &p);
                self.arena.release(h);
                self.lat_of[ri] = NO_PATH;
                p
            } else {
                PathAttr::default()
            }
        };
        let me = self.dev as u32;
        let cs = r.children_start;
        for c in cs..cs + r.children_len {
            let to = ctx.owner[c as usize];
            if to == me {
                if self.lat_on {
                    self.lat_of[c as usize] = self.arena.alloc(inherit);
                }
                self.calendar.schedule(now, DevEvent::Arrive(c));
            } else {
                self.outbox.push(
                    now,
                    spawn_key(c),
                    AMsg::Spawn {
                        from: me,
                        to,
                        rec: c,
                        path: inherit,
                    },
                );
            }
        }
        if r.feature_bytes > 0 && ctx.home[ri] != me {
            self.outbox.push(
                now,
                feature_key(rec),
                AMsg::Feature {
                    from: me,
                    to: ctx.home[ri],
                    rec,
                    bytes: r.feature_bytes as u64,
                    path: inherit,
                },
            );
        }
        self.prep_end = self.prep_end.max(now);
    }
}

/// An inbound delivery queued for a device lane: `(time_ns, event,
/// inherited path attribution)` — the path rider is `None` when
/// latency tracking is off.
type ADelivery = (u64, DevEvent, Option<PathAttr>);

/// State shared between the coordinator (main thread) and the lane
/// workers; the exact shape of the per-channel engine's, lifted to
/// device lanes.
struct AShared {
    epochs: EpochWindow,
    horizon: AtomicU64,
    done: AtomicBool,
    record_hops: AtomicBool,
    prep_end_max: AtomicU64,
    next_times: Vec<AtomicU64>,
    /// Per-device inbound deliveries.
    mailboxes: Vec<Mutex<Vec<ADelivery>>>,
    pool: Mutex<MessagePool<AMsg>>,
    barrier: Barrier,
}

impl AShared {
    fn new(lanes: usize, parties: usize, epochs: EpochWindow) -> Self {
        AShared {
            epochs,
            horizon: AtomicU64::new(0),
            done: AtomicBool::new(false),
            record_hops: AtomicBool::new(true),
            prep_end_max: AtomicU64::new(0),
            next_times: (0..lanes).map(|_| AtomicU64::new(IDLE)).collect(),
            mailboxes: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
            pool: Mutex::new(MessagePool::new()),
            barrier: Barrier::new(parties),
        }
    }
}

/// Runs one device lane's round: drain inbound deliveries, advance to
/// the horizon, publish the lane's next event time and its outbound
/// messages.
fn lane_round(lane: &mut DevLane, ctx: &ReplayCtx<'_>, shared: &AShared, li: usize) {
    let horizon = SimTime::from_ns(shared.horizon.load(Ordering::Acquire));
    lane.record_hops = shared.record_hops.load(Ordering::Acquire);
    let inbound = std::mem::take(&mut *shared.mailboxes[li].lock().expect("mailbox"));
    for (t, ev, path) in inbound {
        // An inbound arrival materializes its inherited path in this
        // device's arena.
        if let (Some(p), DevEvent::Arrive(rec)) = (path, ev) {
            lane.lat_of[rec as usize] = lane.arena.alloc(p);
        }
        lane.calendar.schedule(SimTime::from_ns(t), ev);
    }
    lane.run_round(ctx, horizon);
    shared.next_times[li].store(lane.next_time_ns(), Ordering::Release);
    shared
        .prep_end_max
        .fetch_max(lane.prep_end.as_ns(), Ordering::AcqRel);
    if !lane.outbox.is_empty() {
        shared.pool.lock().expect("pool").absorb(&mut lane.outbox);
    }
}

/// Advances every lane one round: inline for the serial fallback,
/// through the barrier for persistent workers. Identical protocol on
/// identical shared state, so `threads(1)` is the byte-exact reference
/// for any thread count.
trait RoundDriver {
    fn round(&mut self, ctx: &ReplayCtx<'_>, shared: &AShared);
}

struct SerialDriver<'l> {
    lanes: &'l mut [DevLane],
}

impl RoundDriver for SerialDriver<'_> {
    fn round(&mut self, ctx: &ReplayCtx<'_>, shared: &AShared) {
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            lane_round(lane, ctx, shared, li);
        }
    }
}

struct BarrierDriver;

impl RoundDriver for BarrierDriver {
    fn round(&mut self, _ctx: &ReplayCtx<'_>, shared: &AShared) {
        shared.barrier.wait();
        // Workers run their lanes here.
        shared.barrier.wait();
    }
}

/// Coordinator-side state: the fabric links (which lanes may not
/// touch) plus the batch-pipeline bookkeeping.
struct ACoordinator {
    links: Vec<BandwidthResource>,
    hop_latency: Duration,
    link_bytes: Vec<u64>,
    link_msgs: Vec<u64>,
    /// Per home device: when the last inbound feature return of the
    /// current batch lands (gates that device's compute start).
    feature_ready: Vec<SimTime>,
    energy: EnergyLedger,
    prep_total: Duration,
    compute_total: Duration,
    device_compute: Vec<Duration>,
    device_targets: Vec<u64>,
    makespan: SimTime,
    targets_total: u64,
    rounds: u64,
    messages: u64,
    lat_on: bool,
    /// Chains extended by cross-device feature returns (the fabric leg
    /// from the retrieving device back to the query's home device).
    lat_chains: ChainTable,
    lat_batches: Vec<ABatchLat>,
}

/// One mini-batch's shared latency context in the array engine: the
/// global prep barrier plus per-device compute windows and feature
/// gates (queries retire on their home device's accelerator).
struct ABatchLat {
    submit: SimTime,
    prep_gate: SimTime,
    feature_ready: Vec<SimTime>,
    compute_start: Vec<SimTime>,
    compute_end: Vec<SimTime>,
}

impl ACoordinator {
    /// Applies one round's messages in globally sorted `(time, key)`
    /// order: fabric-link grants are issued in that order, command
    /// hops are quantized to the next lookahead boundary and posted
    /// into lane mailboxes, feature returns fold into the home
    /// device's batch-level readiness. Returns the earliest delivery
    /// time, or [`IDLE`].
    fn process_messages(&mut self, ctx: &ReplayCtx<'_>, shared: &AShared) -> u64 {
        let mut pool = shared.pool.lock().expect("pool");
        if pool.is_empty() {
            return IDLE;
        }
        let mut min_delivery = IDLE;
        for (at, _key, msg) in pool.drain_sorted() {
            self.messages += 1;
            match msg {
                AMsg::Spawn {
                    from,
                    to,
                    rec,
                    path,
                } => {
                    let grant = self.links[from as usize].transfer(at, CMD_HOP_BYTES);
                    self.link_bytes[from as usize] += CMD_HOP_BYTES;
                    self.link_msgs[from as usize] += 1;
                    let arrive = shared.epochs.quantize(at, grant.end + self.hop_latency);
                    let path = self.lat_on.then(|| {
                        let mut p = path;
                        p.add(Stage::Queue, grant.start.saturating_duration_since(at));
                        p.add(Stage::Fabric, (grant.end - grant.start) + self.hop_latency);
                        p.add(
                            Stage::Queue,
                            arrive.saturating_duration_since(grant.end + self.hop_latency),
                        );
                        p
                    });
                    shared.mailboxes[to as usize]
                        .lock()
                        .expect("mailbox")
                        .push((arrive.as_ns(), DevEvent::Arrive(rec), path));
                    min_delivery = min_delivery.min(arrive.as_ns());
                }
                AMsg::Feature {
                    from,
                    to,
                    rec,
                    bytes,
                    path,
                } => {
                    let grant = self.links[from as usize].transfer(at, bytes);
                    self.link_bytes[from as usize] += bytes;
                    self.link_msgs[from as usize] += 1;
                    let ready = grant.end + self.hop_latency;
                    if self.lat_on {
                        // The return leg extends the retrieving chain to
                        // the home device, competing for the query's
                        // longest path.
                        let mut p = path;
                        p.add(Stage::Queue, grant.start.saturating_duration_since(at));
                        p.add(Stage::Fabric, (grant.end - grant.start) + self.hop_latency);
                        self.lat_chains
                            .observe(ctx.qid[rec as usize] as usize, ready, &p);
                    }
                    let slot = &mut self.feature_ready[to as usize];
                    *slot = (*slot).max(ready);
                }
            }
        }
        min_delivery
    }
}

/// The simulated multi-SSD array engine: N device lanes behind a
/// partition-aware host router, advanced under conservative lookahead
/// with the fabric hop latency as the window.
///
/// ```
/// use beacon_graph::{generate, FeatureTable, NodeId, Partition};
/// use beacon_gnn::GnnModelConfig;
/// use beacon_platforms::{ArrayConfig, ArrayEngine, Platform};
/// use beacon_ssd::SsdConfig;
/// use directgraph::{build::DirectGraphBuilder, AddrLayout};
///
/// let cfg = generate::PowerLawConfig::new(1_000, 20.0);
/// let graph = generate::power_law(&cfg, 1);
/// let feats = FeatureTable::synthetic(1_000, 64, 1);
/// let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
///     .build(&graph, &feats).unwrap();
///
/// let model = GnnModelConfig::paper_default(64);
/// let batches = vec![(0..16).map(NodeId::new).collect::<Vec<_>>()];
/// let part = Partition::hash(&graph, 4);
/// let engine = ArrayEngine::new(
///     Platform::Bg2, ArrayConfig::pcie_p2p(4), SsdConfig::paper_default(), model, &dg, 42);
/// let serial = engine.run(&part, &batches);
/// let threaded = ArrayEngine::new(
///     Platform::Bg2, ArrayConfig::pcie_p2p(4), SsdConfig::paper_default(), model, &dg, 42)
///     .threads(4)
///     .run(&part, &batches);
/// assert_eq!(serial.metrics.makespan, threaded.metrics.makespan);
/// ```
pub struct ArrayEngine<'a> {
    platform: Platform,
    array: ArrayConfig,
    ssd: SsdConfig,
    model: GnnModelConfig,
    dg: &'a DirectGraph,
    seed: u64,
    threads: usize,
    lat_epoch: Option<Duration>,
}

impl<'a> ArrayEngine<'a> {
    /// Creates an array engine (serial round protocol until
    /// [`threads`](Self::threads) raises it).
    ///
    /// # Panics
    ///
    /// Panics if the array is empty, the fabric hop latency is zero
    /// (it is the lookahead window), or the SSD geometry's page size
    /// differs from the DirectGraph layout's.
    pub fn new(
        platform: Platform,
        array: ArrayConfig,
        ssd: SsdConfig,
        model: GnnModelConfig,
        dg: &'a DirectGraph,
        seed: u64,
    ) -> Self {
        assert!(array.ssds >= 1, "array needs at least one SSD");
        assert!(
            !array.fabric.hop_latency.is_zero(),
            "fabric hop latency must be positive (it is the lookahead window)"
        );
        assert_eq!(
            ssd.geometry.page_size,
            dg.layout().page_size(),
            "SSD geometry and DirectGraph layout disagree on page size"
        );
        ArrayEngine {
            platform,
            array,
            ssd,
            model,
            dg,
            seed,
            threads: 1,
            lat_epoch: None,
        }
    }

    /// Sets the device-worker thread count. Output is byte-identical
    /// at any value; values above the device count are clamped, and
    /// below 2 the round protocol runs inline with no threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables per-query latency tracking (see
    /// [`Engine::with_latency`](crate::Engine::with_latency)): chains
    /// are followed per device lane — fabric hops included — and merged
    /// in device order, so [`RunMetrics::latency`] is byte-identical at
    /// any thread count. Also applies to the recording run, so a
    /// 1-device array returns the serial engine's latency report
    /// verbatim. `epoch` is the windowed time-series granularity
    /// ([`Duration::ZERO`] for a single window).
    pub fn with_latency(mut self, epoch: Duration) -> Self {
        self.lat_epoch = Some(epoch);
        self
    }

    /// Phase 1: runs the serial single-SSD engine once and records the
    /// sampling cascade. The result is reusable across device counts,
    /// partitions, fabrics and thread counts (it depends on neither).
    ///
    /// On platforms that are not channel-separable the cascade is
    /// empty and only a 1-device replay (the serial metrics verbatim)
    /// is possible.
    pub fn record(&self, batches: &[Vec<NodeId>]) -> ArrayCascade {
        let _phase = profile::phase("array/record");
        let mut scratch = EngineScratch::new();
        let mut engine = Engine::new(self.platform, self.ssd, self.model, self.dg, self.seed);
        if let Some(epoch) = self.lat_epoch {
            engine = engine.with_latency(epoch);
        }
        if self.platform.spec().channel_separable() {
            let (single, recording) = engine.record_cascade(&mut scratch, batches);
            ArrayCascade {
                recording,
                single,
                batches: batches.to_vec(),
            }
        } else {
            let single = engine.run_with(&mut scratch, batches);
            ArrayCascade {
                recording: CascadeRecording::default(),
                single,
                batches: batches.to_vec(),
            }
        }
    }

    /// Record + replay in one call.
    pub fn run(&self, partition: &Partition, batches: &[Vec<NodeId>]) -> ArrayRunMetrics {
        let cascade = self.record(batches);
        self.run_recorded(&cascade, partition)
    }

    /// Phase 2: replays a recorded cascade on the array. A 1-device
    /// array returns the recorded serial run's metrics verbatim.
    ///
    /// # Panics
    ///
    /// Panics if the partition's part count differs from the array
    /// size, or if the array has more than one device and the platform
    /// is not channel-separable (only BG-2's pipeline decomposes into
    /// independent device lanes).
    pub fn run_recorded(&self, cascade: &ArrayCascade, partition: &Partition) -> ArrayRunMetrics {
        let devs = self.array.ssds;
        assert_eq!(
            partition.parts() as usize,
            devs,
            "partition/array size mismatch"
        );
        let pre = prepass(&cascade.recording, &cascade.batches, partition);
        let single_throughput = cascade.single.throughput();
        if devs == 1 {
            let m = cascade.single.clone();
            let per_device = vec![DeviceMetrics {
                device: 0,
                targets: m.targets,
                flash_reads: m.flash_reads,
                nodes_visited: m.nodes_visited,
                sampler_faults: m.sampler_faults,
                channel_bytes: m.energy.channel_bytes,
                events_processed: m.pools.events_processed,
                die_busy: m.stages.flash_read,
                channel_busy: m.stages.channel,
                dram_busy: m.stages.dram,
                compute_time: m.compute_time,
            }];
            return ArrayRunMetrics {
                devices: 1,
                metrics: m,
                single_throughput,
                per_device,
                links: vec![FabricLinkMetrics::default()],
                total_edges: pre.total_edges,
                cross_edges: 0,
                cross_feature_bytes: 0,
                rounds: 0,
                messages: 0,
            };
        }
        assert!(
            self.platform.spec().channel_separable(),
            "multi-device array replay requires a channel-separable platform (BG-2)"
        );
        self.replay(cascade, partition, pre, single_throughput)
    }

    fn replay(
        &self,
        cascade: &ArrayCascade,
        partition: &Partition,
        pre: Prepass,
        single_throughput: f64,
    ) -> ArrayRunMetrics {
        let _phase = profile::phase("array/replay");
        let devs = self.array.ssds;
        let hops = self.model.hops as usize + 2;
        let ctx = ReplayCtx {
            recs: &cascade.recording.recs,
            owner: &pre.owner,
            home: &pre.home,
            qid: &pre.qid,
        };
        let lat = self.lat_epoch.map(|_| {
            (
                cascade.recording.recs.len(),
                cascade.batches.iter().map(Vec::len).sum::<usize>(),
            )
        });
        let mut lanes: Vec<DevLane> = (0..devs)
            .map(|d| {
                let mut lane = DevLane::new(d, self.ssd, hops, lat);
                lane.cal_base = lane.calendar.pool_stats();
                lane
            })
            .collect();

        let threads = self.threads.min(devs);
        let workers = if threads >= 2 { threads } else { 0 };
        let shared = AShared::new(
            devs,
            workers + 1,
            EpochWindow::new(self.array.fabric.hop_latency),
        );
        let mut coord = ACoordinator {
            links: (0..devs)
                .map(|_| BandwidthResource::new(self.array.fabric.bandwidth))
                .collect(),
            hop_latency: self.array.fabric.hop_latency,
            link_bytes: vec![0; devs],
            link_msgs: vec![0; devs],
            feature_ready: vec![SimTime::ZERO; devs],
            energy: EnergyLedger::new(),
            prep_total: Duration::ZERO,
            compute_total: Duration::ZERO,
            device_compute: vec![Duration::ZERO; devs],
            device_targets: vec![0; devs],
            makespan: SimTime::ZERO,
            targets_total: 0,
            rounds: 0,
            messages: 0,
            lat_on: self.lat_epoch.is_some(),
            lat_chains: ChainTable::new(lat.map_or(0, |(_, queries)| queries)),
            lat_batches: Vec::new(),
        };

        if workers == 0 {
            let mut driver = SerialDriver { lanes: &mut lanes };
            self.run_batches(cascade, partition, &ctx, &shared, &mut coord, &mut driver);
        } else {
            // Round-robin the lanes over persistent workers; the
            // global message sort makes the grouping invisible.
            let mut groups: Vec<Vec<(usize, DevLane)>> = (0..workers).map(|_| Vec::new()).collect();
            for (li, lane) in lanes.drain(..).enumerate() {
                groups[li % workers].push((li, lane));
            }
            let shared_ref = &shared;
            let ctx_ref = &ctx;
            std::thread::scope(|s| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|mut group| {
                        s.spawn(move || loop {
                            shared_ref.barrier.wait();
                            if shared_ref.done.load(Ordering::Acquire) {
                                return group;
                            }
                            for (li, lane) in group.iter_mut() {
                                lane_round(lane, ctx_ref, shared_ref, *li);
                            }
                            shared_ref.barrier.wait();
                        })
                    })
                    .collect();
                let mut driver = BarrierDriver;
                self.run_batches(cascade, partition, &ctx, &shared, &mut coord, &mut driver);
                shared.done.store(true, Ordering::Release);
                shared.barrier.wait();
                let mut by_device: Vec<Option<DevLane>> = (0..devs).map(|_| None).collect();
                for handle in handles {
                    for (li, lane) in handle.join().expect("device worker") {
                        by_device[li] = Some(lane);
                    }
                }
                lanes = by_device
                    .into_iter()
                    .map(|l| l.expect("every lane returned"))
                    .collect();
            });
        }

        profile::count("array/rounds", coord.rounds);
        profile::count("array/messages", coord.messages);
        profile::count("array/devices", devs as u64);
        self.merge(cascade, pre, coord, lanes, single_throughput)
    }

    /// The serial engine's batch pipeline with `run_prep` replaced by
    /// the round loop and per-device compute: each device aggregates
    /// the targets homed on it, gated by its inbound feature returns.
    fn run_batches(
        &self,
        cascade: &ArrayCascade,
        partition: &Partition,
        ctx: &ReplayCtx<'_>,
        shared: &AShared,
        coord: &mut ACoordinator,
        driver: &mut dyn RoundDriver,
    ) {
        let spec = self.platform.spec();
        let accel = accel_config(&spec);
        let devs = self.array.ssds;
        let mut compute_free = vec![SimTime::ZERO; devs];
        let mut prep_cursor = SimTime::ZERO;
        let mut compute_ends: Vec<Vec<SimTime>> = Vec::with_capacity(cascade.batches.len());

        for (bi, batch) in cascade.batches.iter().enumerate() {
            coord.targets_total += batch.len() as u64;
            shared.record_hops.store(bi == 0, Ordering::Release);
            // §VI-D double buffering, array-wide: every device's DRAM
            // region must have released its half before the next prep
            // starts (the round loop advances all lanes together).
            let buffer_ready = if bi >= 2 {
                compute_ends[bi - 2]
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(SimTime::ZERO)
            } else {
                SimTime::ZERO
            };
            let prep_start = prep_cursor.max(buffer_ready);
            // BG-2 is direct-graph: one customized NVMe command per
            // device carries its shard of primary-section addresses
            // (host→device is the host PCIe link, not the fabric).
            let start = prep_start + self.ssd.host.nvme_roundtrip;
            coord.energy.pcie_bytes += batch.len() as u64 * NODE_ID_BYTES;
            for slot in &mut coord.feature_ready {
                *slot = SimTime::ZERO;
            }

            let base = cascade.recording.batch_roots[bi];
            let root_path = coord.lat_on.then(PathAttr::default);
            for j in 0..batch.len() {
                let rec = base + j as u32;
                let owner = ctx.owner[rec as usize] as usize;
                shared.mailboxes[owner].lock().expect("mailbox").push((
                    start.as_ns(),
                    DevEvent::Arrive(rec),
                    root_path,
                ));
            }
            let mut pending_min = start.as_ns();

            loop {
                let lanes_min = shared
                    .next_times
                    .iter()
                    .map(|t| t.load(Ordering::Acquire))
                    .min()
                    .unwrap_or(IDLE);
                let min_next = lanes_min.min(pending_min);
                if min_next == IDLE {
                    break;
                }
                let horizon = shared.epochs.horizon_for(SimTime::from_ns(min_next));
                shared.horizon.store(horizon.as_ns(), Ordering::Release);
                driver.round(ctx, shared);
                coord.rounds += 1;
                pending_min = coord.process_messages(ctx, shared);
            }

            let prep_end = SimTime::from_ns(shared.prep_end_max.load(Ordering::Acquire)).max(start);
            coord.prep_total += prep_end - prep_start;
            prep_cursor = prep_end;

            // Per-device compute overlaps the next batch's prep. A
            // device aggregates its home targets once the global prep
            // drained, its inbound feature returns landed, and its own
            // accelerator freed up.
            let mut ends = vec![SimTime::ZERO; devs];
            let mut starts = vec![SimTime::ZERO; devs];
            let mut home_counts = vec![0u64; devs];
            for &t in batch {
                home_counts[partition.part_of(t) as usize] += 1;
            }
            for (d, &count) in home_counts.iter().enumerate() {
                if count == 0 {
                    ends[d] = compute_free[d];
                    starts[d] = compute_free[d];
                    continue;
                }
                let wl = MinibatchWorkload::new(self.model, count).with_training(true);
                let compute_start = prep_end.max(coord.feature_ready[d]).max(compute_free[d]);
                starts[d] = compute_start;
                if !self.ssd.dram_bypass {
                    let bytes =
                        count * self.model.subgraph_nodes() * self.model.feature_bytes() as u64;
                    coord.energy.dram_bytes += bytes;
                }
                let ct = wl.compute_time(&accel);
                coord.compute_total += ct;
                coord.device_compute[d] += ct;
                coord.device_targets[d] += count;
                compute_free[d] = compute_start + ct;
                ends[d] = compute_free[d];
                coord.makespan = coord.makespan.max(compute_free[d]);
                coord.energy.macs += wl.total_macs();
                coord.energy.reduce_ops += wl.total_reduce_ops();
            }
            coord.makespan = coord.makespan.max(prep_end);
            if coord.lat_on {
                coord.lat_batches.push(ABatchLat {
                    submit: start,
                    prep_gate: prep_end,
                    feature_ready: coord.feature_ready.clone(),
                    compute_start: starts.clone(),
                    compute_end: ends.clone(),
                });
            }
            compute_ends.push(ends);
        }
    }

    /// Folds lane-local accumulators (in fixed device order) and the
    /// coordinator into the merged [`RunMetrics`] plus per-device and
    /// fabric-link breakdowns.
    fn merge(
        &self,
        cascade: &ArrayCascade,
        pre: Prepass,
        coord: ACoordinator,
        lanes: Vec<DevLane>,
        single_throughput: f64,
    ) -> ArrayRunMetrics {
        let spec = self.platform.spec();
        let accel = accel_config(&spec);
        let devs = self.array.ssds;
        let hops = self.model.hops as usize + 2;
        let mut cmd_breakdown = CmdBreakdown::default();
        let mut die_timeline = TimelineBuilder::new();
        let mut channel_timeline = TimelineBuilder::new();
        let mut hop_first: Vec<Option<SimTime>> = vec![None; hops];
        let mut hop_last: Vec<Option<SimTime>> = vec![None; hops];
        let mut pools = PoolCounters::default();
        let mut energy = coord.energy;
        let mut nodes_visited = 0u64;
        let mut flash_reads = 0u64;
        let mut sampler_faults = 0u64;
        let mut flash_busy = Duration::ZERO;
        let mut channel_busy = Duration::ZERO;
        let mut dram_busy = Duration::ZERO;
        let mut per_device = Vec::with_capacity(devs);

        for lane in &lanes {
            cmd_breakdown
                .wait_before_flash
                .merge(&lane.cmd_breakdown.wait_before_flash);
            cmd_breakdown.flash.merge(&lane.cmd_breakdown.flash);
            cmd_breakdown
                .wait_after_flash
                .merge(&lane.cmd_breakdown.wait_after_flash);
            die_timeline.absorb(&lane.die_timeline);
            channel_timeline.absorb(&lane.channel_timeline);
            for h in 0..hops {
                hop_first[h] = match (hop_first[h], lane.hop_first[h]) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                hop_last[h] = match (hop_last[h], lane.hop_last[h]) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
            }
            let cal = lane.calendar.pool_stats();
            pools.events_processed += lane.events_processed;
            pools.event_slots_allocated += cal.slots_allocated - lane.cal_base.slots_allocated;
            pools.event_slots_reused += cal.slots_reused - lane.cal_base.slots_reused;
            pools.calendar_wheel_high_water =
                pools.calendar_wheel_high_water.max(cal.wheel_high_water);
            pools.calendar_far_high_water = pools.calendar_far_high_water.max(cal.far_high_water);
            energy.flash_page_reads += lane.flash_reads;
            energy.sampler_cmds += lane.flash_reads;
            energy.router_cmds += lane.router_cmds;
            energy.channel_bytes += lane.channel_bytes;
            energy.dram_bytes += lane.dram_bytes;
            nodes_visited += lane.nodes_visited;
            flash_reads += lane.flash_reads;
            sampler_faults += lane.sampler_faults;
            let lane_die_busy: Duration = lane.dies.iter().map(SerialResource::busy_total).sum();
            let lane_chan_busy: Duration = lane.chans.iter().map(SerialResource::busy_total).sum();
            flash_busy += lane_die_busy;
            channel_busy += lane_chan_busy;
            dram_busy += lane.dram.busy_total();
            per_device.push(DeviceMetrics {
                device: lane.dev,
                targets: coord.device_targets[lane.dev],
                flash_reads: lane.flash_reads,
                nodes_visited: lane.nodes_visited,
                sampler_faults: lane.sampler_faults,
                channel_bytes: lane.channel_bytes,
                events_processed: lane.events_processed,
                die_busy: lane_die_busy,
                channel_busy: lane_chan_busy,
                dram_busy: lane.dram.busy_total(),
                compute_time: coord.device_compute[lane.dev],
            });
        }
        profile::count("array/events_processed", pools.events_processed);

        let links: Vec<FabricLinkMetrics> = (0..devs)
            .map(|d| FabricLinkMetrics {
                device: d,
                bytes: coord.link_bytes[d],
                messages: coord.link_msgs[d],
                busy: coord.links[d].busy_total(),
            })
            .collect();
        let fabric_busy: Duration = links.iter().map(|l| l.busy).sum();

        let stages = StageBreakdown {
            flash_read: flash_busy,
            channel: channel_busy,
            firmware: Duration::ZERO,
            dram: dram_busy,
            // Cross-device traffic rides PCIe-P2P / NVMe-oF links.
            pcie: fabric_busy,
            host: Duration::ZERO,
            accel: coord.compute_total,
        };
        let hop_windows = hop_first
            .iter()
            .zip(&hop_last)
            .enumerate()
            .filter_map(|(h, (f, l))| {
                f.zip(*l).map(|(start, end)| HopWindow {
                    hop: h as u8,
                    start,
                    end,
                })
            })
            .collect();
        let accel_occupancy = {
            let cw = coord.compute_total.as_secs_f64();
            let peak_macs =
                cw * accel.systolic.clock_hz() as f64 * accel.systolic.macs_per_cycle() as f64;
            let peak_reduce = cw * accel.vector.clock_hz() as f64 * accel.vector.lanes() as f64;
            AccelOccupancy {
                systolic: if peak_macs > 0.0 {
                    energy.macs as f64 / peak_macs
                } else {
                    0.0
                },
                vector: if peak_reduce > 0.0 {
                    energy.reduce_ops as f64 / peak_reduce
                } else {
                    0.0
                },
            }
        };

        let latency = if let Some(epoch) = self.lat_epoch {
            // Chain tables fold commutatively, but keep the fixed
            // device order anyway (cheap, and self-evidently stable).
            let mut chains = ChainTable::new(coord.targets_total as usize);
            chains.absorb(&coord.lat_chains);
            for lane in &lanes {
                chains.absorb(&lane.chains);
            }
            // Extend each query's winning chain through its home
            // device's compute tail: the wait for the prep barrier is
            // queueing, the wait for the last inbound feature return is
            // fabric time, the wait for the accelerator is queueing,
            // and the compute window is accelerator time — so stage
            // nanoseconds sum exactly to `end - submit`.
            let mut queries = Vec::with_capacity(coord.targets_total as usize);
            let mut qid = 0usize;
            for (bi, batch) in cascade.batches.iter().enumerate() {
                let b = &coord.lat_batches[bi];
                let base = cascade.recording.batch_roots[bi] as usize;
                for slot in 0..batch.len() {
                    let d = pre.owner[base + slot] as usize;
                    let (chain_end, mut path) = match chains.get(qid) {
                        Some(&(e, p)) => (e, p),
                        None => (b.submit, PathAttr::default()),
                    };
                    let g1 = b.prep_gate.max(chain_end);
                    path.add(Stage::Queue, g1 - chain_end);
                    let g2 = g1.max(b.feature_ready[d]);
                    path.add(Stage::Fabric, g2 - g1);
                    let cs = b.compute_start[d];
                    path.add(Stage::Queue, cs.saturating_duration_since(g2));
                    path.add(Stage::Accel, b.compute_end[d] - cs);
                    queries.push(QueryLat {
                        batch: bi as u32,
                        slot: slot as u32,
                        submit: b.submit,
                        end: b.compute_end[d],
                        path,
                    });
                    qid += 1;
                }
            }
            LatencyReport::build(epoch, queries)
        } else {
            LatencyReport::disabled()
        };

        let metrics = RunMetrics {
            platform: spec.name,
            targets: coord.targets_total,
            batches: cascade.batches.len() as u64,
            nodes_visited,
            flash_reads,
            sampler_faults,
            makespan: coord.makespan - SimTime::ZERO,
            prep_time: coord.prep_total,
            compute_time: coord.compute_total,
            cmd_breakdown,
            stages,
            hop_windows,
            die_timeline,
            channel_timeline,
            energy,
            total_dies: self.ssd.geometry.total_dies() * devs,
            total_channels: self.ssd.geometry.channels * devs,
            trace: Trace::with_capacity(0),
            pools,
            spans: SpanRecorder::disabled(),
            sampler_executed: cascade.single.sampler_executed,
            router: None,
            ftl: None,
            accel_occupancy,
            latency,
        };

        ArrayRunMetrics {
            devices: devs,
            metrics,
            single_throughput,
            per_device,
            links,
            total_edges: pre.total_edges,
            cross_edges: pre.cross_edges,
            cross_feature_bytes: pre.cross_feature_bytes,
            rounds: coord.rounds,
            messages: coord.messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_graph::{generate, FeatureTable};
    use directgraph::{build::DirectGraphBuilder, AddrLayout};

    fn setup() -> (DirectGraph, GnnModelConfig, Vec<Vec<NodeId>>) {
        let cfg = generate::PowerLawConfig::new(3_000, 25.0);
        let graph = generate::power_law(&cfg, 5);
        let feats = FeatureTable::synthetic(3_000, 100, 5);
        let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &feats)
            .unwrap();
        let batches = vec![(0..64).map(NodeId::new).collect()];
        (dg, GnnModelConfig::paper_default(100), batches)
    }

    fn clustered_dg(clusters: usize, per: usize) -> (beacon_graph::CsrGraph, DirectGraph) {
        let n = clusters * per;
        let mut b = beacon_graph::CsrGraphBuilder::new(n);
        let mut rng = simkit::SplitMix64::new(4);
        for c in 0..clusters {
            let base = c * per;
            for i in 0..per {
                for _ in 0..8 {
                    let j = rng.next_bounded(per as u64) as usize;
                    if i != j {
                        b.add_edge(
                            NodeId::new((base + i) as u32),
                            NodeId::new((base + j) as u32),
                        );
                    }
                }
            }
        }
        let graph = b.build();
        let feats = beacon_graph::FeatureTable::synthetic(n, 64, 4);
        let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &feats)
            .unwrap();
        (graph, dg)
    }

    fn digest(m: &ArrayRunMetrics) -> String {
        m.metrics_registry().to_json_string()
    }

    #[test]
    fn single_ssd_is_identity() {
        let (dg, model, batches) = setup();
        let s = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(1),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        assert_eq!(s.ssds, 1);
        assert_eq!(s.array_throughput, s.single_throughput);
        assert_eq!(s.cross_fraction, 0.0);
        assert!((s.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ample_p2p_scales_linearly() {
        let (dg, model, batches) = setup();
        let s = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        // §VIII's expectation: both capacity and computation grow
        // linearly with SSDs when the fabric keeps up.
        assert!(s.efficiency() > 0.95, "efficiency {:.2}", s.efficiency());
        assert!(s.cross_fraction > 0.5, "4-way partition should cross often");
    }

    #[test]
    fn starved_fabric_caps_scaling() {
        let (dg, model, batches) = setup();
        let thin = ArrayConfig::pcie_p2p(8)
            .with_fabric(FabricConfig::pcie_p2p().with_bandwidth(2_000_000));
        let s = evaluate_array(
            Platform::Bg2,
            thin,
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        assert!(
            s.efficiency() < 0.5,
            "thin fabric must bound scaling: {:.2}",
            s.efficiency()
        );
        assert!(s.array_throughput < s.single_throughput * 8.0);
    }

    #[test]
    fn locality_partition_reduces_cross_traffic() {
        // Build a clustered graph so a locality-aware partition can
        // shine, and reconstruct it for partitioning.
        let (graph, dg) = clustered_dg(4, 500);
        let model = GnnModelConfig::paper_default(64);
        let batches = vec![(0..64u32).map(|i| NodeId::new(i * 31 % 2_000)).collect()];

        let hash = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            3,
        );
        let part = Partition::bfs_grow(&graph, 4);
        let local = evaluate_array_partitioned(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            3,
            &part,
        );
        assert!(
            local.cross_fraction < hash.cross_fraction / 2.0,
            "bfs {:.3} vs hash {:.3}",
            local.cross_fraction,
            hash.cross_fraction
        );
    }

    #[test]
    fn more_ssds_more_cross_traffic() {
        let (dg, model, batches) = setup();
        let two = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(2),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        let eight = evaluate_array(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(8),
            SsdConfig::paper_default(),
            model,
            &dg,
            &batches,
            7,
        );
        assert!(eight.cross_fraction > two.cross_fraction);
    }

    // ---- simulated path ----

    #[test]
    fn array_thread_count_is_invisible() {
        let (dg, model, batches) = setup();
        let part = Partition::hash(&trivial_graph(3_000), 4);
        let engine = ArrayEngine::new(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            7,
        );
        let cascade = engine.record(&batches);
        let reference = digest(&engine.run_recorded(&cascade, &part));
        for threads in [2, 8] {
            let m = ArrayEngine::new(
                Platform::Bg2,
                ArrayConfig::pcie_p2p(4),
                SsdConfig::paper_default(),
                model,
                &dg,
                7,
            )
            .threads(threads)
            .run_recorded(&cascade, &part);
            assert_eq!(digest(&m), reference, "threads={threads}");
        }
    }

    #[test]
    fn one_device_array_is_serial_engine_exactly() {
        let (dg, model, batches) = setup();
        let serial =
            Engine::new(Platform::Bg2, SsdConfig::paper_default(), model, &dg, 7).run(&batches);
        let part = Partition::hash(&trivial_graph(3_000), 1);
        let array = ArrayEngine::new(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(1),
            SsdConfig::paper_default(),
            model,
            &dg,
            7,
        )
        .run(&part, &batches);
        assert_eq!(
            array.metrics.metrics_registry().to_json_string(),
            serial.metrics_registry().to_json_string()
        );
        assert_eq!(array.devices, 1);
        assert_eq!(array.cross_edges, 0);
        assert!((array.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn device_work_sums_to_single_engine() {
        let (dg, model, batches) = setup();
        let part = Partition::hash(&trivial_graph(3_000), 4);
        let engine = ArrayEngine::new(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            7,
        );
        let cascade = engine.record(&batches);
        let single = cascade.single_metrics();
        let (s_reads, s_visited, s_bytes, s_faults, s_targets) = (
            single.flash_reads,
            single.nodes_visited,
            single.energy.channel_bytes,
            single.sampler_faults,
            single.targets,
        );
        let m = engine.run_recorded(&cascade, &part);
        assert_eq!(
            m.per_device.iter().map(|d| d.flash_reads).sum::<u64>(),
            s_reads
        );
        assert_eq!(
            m.per_device.iter().map(|d| d.nodes_visited).sum::<u64>(),
            s_visited
        );
        assert_eq!(
            m.per_device.iter().map(|d| d.channel_bytes).sum::<u64>(),
            s_bytes
        );
        assert_eq!(
            m.per_device.iter().map(|d| d.sampler_faults).sum::<u64>(),
            s_faults
        );
        assert_eq!(
            m.per_device.iter().map(|d| d.targets).sum::<u64>(),
            s_targets
        );
        assert_eq!(m.metrics.flash_reads, s_reads);
        assert_eq!(m.metrics.nodes_visited, s_visited);
        // Every device did some work under a hash partition.
        assert!(m.per_device.iter().all(|d| d.flash_reads > 0));
        // Fabric carried the cross traffic the prepass counted.
        assert_eq!(
            m.fabric_bytes(),
            m.cross_edges * CMD_HOP_BYTES + m.cross_feature_bytes
        );
    }

    #[test]
    fn thin_fabric_stretches_makespan() {
        let (dg, model, batches) = setup();
        let part = Partition::hash(&trivial_graph(3_000), 4);
        let engine = ArrayEngine::new(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            7,
        );
        let cascade = engine.record(&batches);
        let ample = engine.run_recorded(&cascade, &part);
        let thin = ArrayEngine::new(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4)
                .with_fabric(FabricConfig::pcie_p2p().with_bandwidth(50_000_000)),
            SsdConfig::paper_default(),
            model,
            &dg,
            7,
        )
        .run_recorded(&cascade, &part);
        // Same command set, same fabric traffic — only slower links.
        assert_eq!(thin.fabric_bytes(), ample.fabric_bytes());
        assert!(
            thin.metrics.makespan > ample.metrics.makespan,
            "thin {} vs ample {}",
            thin.metrics.makespan,
            ample.metrics.makespan
        );
    }

    #[test]
    fn locality_partition_cuts_fabric_traffic_in_replay() {
        let (graph, dg) = clustered_dg(4, 500);
        let model = GnnModelConfig::paper_default(64);
        let batches: Vec<Vec<NodeId>> =
            vec![(0..64u32).map(|i| NodeId::new(i * 31 % 2_000)).collect()];
        let engine = ArrayEngine::new(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(4),
            SsdConfig::paper_default(),
            model,
            &dg,
            3,
        );
        let cascade = engine.record(&batches);
        let hash = engine.run_recorded(&cascade, &Partition::hash(&graph, 4));
        let local = engine.run_recorded(&cascade, &Partition::bfs_grow(&graph, 4));
        assert!(
            local.fabric_bytes() < hash.fabric_bytes() / 2,
            "bfs {} vs hash {}",
            local.fabric_bytes(),
            hash.fabric_bytes()
        );
        assert!(local.cross_fraction() < hash.cross_fraction());
        // Work totals are partition-invariant (same recorded cascade).
        assert_eq!(hash.metrics.flash_reads, local.metrics.flash_reads);
    }

    #[test]
    fn array_metrics_registry_has_device_and_fabric_sections() {
        let (dg, model, batches) = setup();
        let part = Partition::hash(&trivial_graph(3_000), 2);
        let m = ArrayEngine::new(
            Platform::Bg2,
            ArrayConfig::pcie_p2p(2),
            SsdConfig::paper_default(),
            model,
            &dg,
            7,
        )
        .run(&part, &batches);
        let reg = m.metrics_registry();
        let names = reg.section_names();
        assert!(names.contains(&"array"));
        assert!(names.contains(&"device_0"));
        assert!(names.contains(&"device_1"));
        assert!(names.contains(&"fabric_link_0"));
        assert!(names.contains(&"fabric_link_1"));
    }
}
