//! The Fig 7a motivation experiment: page-granular channel transfer
//! throttles ULL die scaling.
//!
//! The paper reads 1–8 ULL dies on one channel simultaneously and shows
//! that 8 dies deliver only ~49% more throughput than 1 while average
//! latency rises ~7.7×, because every page queues for the shared
//! channel bus whose transfer time (5.12 µs for 4 KB at 800 MB/s)
//! exceeds the 3 µs sense time.

use beacon_flash::{DieModel, FlashTiming, RegisterMode};
use simkit::{Duration, SerialResource, SimTime};

/// Result of one die-scaling measurement point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieScalingPoint {
    /// Active dies on the channel.
    pub dies: usize,
    /// Page reads completed per second.
    pub throughput: f64,
    /// Mean end-to-end page-read latency.
    pub avg_latency: Duration,
}

/// Runs the Fig 7a experiment: `reads_per_die` back-to-back page reads
/// on each of `dies` dies sharing one channel, at `page_size` bytes.
pub fn die_scaling_point(
    timing: &FlashTiming,
    dies: usize,
    page_size: usize,
    reads_per_die: usize,
) -> DieScalingPoint {
    assert!(dies > 0 && reads_per_die > 0);
    let mut channel = SerialResource::new();
    let xfer = timing.command_overhead + timing.transfer_time(page_size as u64);

    // Single-register dies (the conventional ONFI read path): a die
    // cannot sense its next page until its previous page has left for
    // the channel. Issue round-robin; to keep channel acquisitions in
    // nondecreasing time order, process per-round in order of
    // readiness.
    let mut die_models: Vec<DieModel> = (0..dies)
        .map(|_| DieModel::new(1, timing.read_latency, RegisterMode::Single))
        .collect();
    let mut total_latency = Duration::ZERO;
    let mut last_end = SimTime::ZERO;
    let mut completed = 0u64;
    for _round in 0..reads_per_die {
        let mut order: Vec<usize> = (0..dies).collect();
        order.sort_by_key(|&d| die_models[d].plane_free(0));
        for d in order {
            let issue = die_models[d].plane_free(0);
            let grant_sense = die_models[d].read(0, issue);
            let grant = channel.acquire(grant_sense.data_ready, xfer);
            die_models[d].note_transfer_done(0, grant.end);
            total_latency += grant.end - issue;
            last_end = last_end.max(grant.end);
            completed += 1;
        }
    }
    DieScalingPoint {
        dies,
        throughput: completed as f64 / (last_end - SimTime::ZERO).as_secs_f64(),
        avg_latency: total_latency / completed,
    }
}

/// Runs the full 1..=`max_dies` sweep.
pub fn die_scaling_sweep(
    timing: &FlashTiming,
    max_dies: usize,
    page_size: usize,
    reads_per_die: usize,
) -> Vec<DieScalingPoint> {
    (1..=max_dies)
        .map(|d| die_scaling_point(timing, d, page_size, reads_per_die))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ull_die_scaling_matches_paper_shape() {
        // Paper Fig 7a: 1 -> 8 dies gives ~49% more throughput at ~7.7x
        // the latency on ULL flash with 4 KB pages.
        let sweep = die_scaling_sweep(&FlashTiming::ull(), 8, 4096, 200);
        let t1 = sweep[0].throughput;
        let t8 = sweep[7].throughput;
        let gain = t8 / t1 - 1.0;
        assert!(
            (0.3..=0.8).contains(&gain),
            "throughput gain at 8 dies should be ~49%, got {:.0}%",
            gain * 100.0
        );
        let lat_ratio = sweep[7].avg_latency.as_ns() as f64 / sweep[0].avg_latency.as_ns() as f64;
        assert!(
            (5.0..=11.0).contains(&lat_ratio),
            "latency blow-up should be ~7.7x, got {lat_ratio:.1}x"
        );
    }

    #[test]
    fn traditional_flash_scales_better() {
        // With 20 us reads, the channel is NOT the bottleneck, so die
        // scaling is much closer to linear.
        let sweep = die_scaling_sweep(&FlashTiming::traditional(), 4, 4096, 100);
        let gain = sweep[3].throughput / sweep[0].throughput;
        assert!(
            gain > 2.5,
            "traditional flash should scale ~linearly, got {gain:.2}x"
        );
    }

    #[test]
    fn single_die_latency_is_sense_plus_transfer() {
        let p = die_scaling_point(&FlashTiming::ull(), 1, 4096, 10);
        let expect = FlashTiming::ull().read_latency
            + FlashTiming::ull().command_overhead
            + FlashTiming::ull().transfer_time(4096);
        assert_eq!(p.avg_latency, expect);
    }

    #[test]
    fn smaller_pages_relieve_the_channel() {
        let big = die_scaling_point(&FlashTiming::ull(), 8, 16384, 100);
        let small = die_scaling_point(&FlashTiming::ull(), 8, 2048, 100);
        assert!(small.throughput > big.throughput);
    }
}
