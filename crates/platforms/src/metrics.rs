//! Run metrics: everything the paper's figures are drawn from.

use beacon_energy::EnergyLedger;
use beacon_ssd::{FtlStats, RouterStats};
use simkit::obs::{MetricsRegistry, SpanRecorder};
use simkit::stats::Summary;
use simkit::{Duration, LatencyReport, SimTime};

/// Per-command latency phases (paper Fig 17). Lifetime runs from when
/// the command's address is available at the frontend controller to when
/// its result is available there.
#[derive(Debug, Clone, Default)]
pub struct CmdBreakdown {
    /// Queueing before the die starts sensing.
    pub wait_before_flash: Summary,
    /// Die sense + on-die processing + channel transfer.
    pub flash: Summary,
    /// From transfer completion to result fully processed.
    pub wait_after_flash: Summary,
}

impl CmdBreakdown {
    /// Records one command's phase durations.
    pub fn record(&mut self, wait_before: Duration, flash: Duration, wait_after: Duration) {
        self.wait_before_flash.record_duration(wait_before);
        self.flash.record_duration(flash);
        self.wait_after_flash.record_duration(wait_after);
    }

    /// Mean total lifetime in nanoseconds (0 when empty).
    pub fn mean_lifetime_ns(&self) -> f64 {
        self.wait_before_flash.mean().unwrap_or(0.0)
            + self.flash.mean().unwrap_or(0.0)
            + self.wait_after_flash.mean().unwrap_or(0.0)
    }

    /// `(wait_before, flash, wait_after)` fractions of the mean
    /// lifetime.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.mean_lifetime_ns();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.wait_before_flash.mean().unwrap_or(0.0) / total,
            self.flash.mean().unwrap_or(0.0) / total,
            self.wait_after_flash.mean().unwrap_or(0.0) / total,
        )
    }
}

/// Busy time per resource class (paper Fig 15f's stage breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Flash die sense time.
    pub flash_read: Duration,
    /// Flash channel transfer time.
    pub channel: Duration,
    /// Embedded-core (firmware) busy time.
    pub firmware: Duration,
    /// SSD DRAM busy time.
    pub dram: Duration,
    /// PCIe busy time.
    pub pcie: Duration,
    /// Host CPU busy time.
    pub host: Duration,
    /// Accelerator busy time.
    pub accel: Duration,
}

/// One hop's activity window in the data-preparation stage (Fig 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopWindow {
    /// Hop id (0 = targets; `hops` = final feature retrieval).
    pub hop: u8,
    /// First command of this hop entering the backend.
    pub start: SimTime,
    /// Last command of this hop fully processed.
    pub end: SimTime,
}

impl HopWindow {
    /// Window length.
    pub fn span(&self) -> Duration {
        self.end - self.start
    }
}

/// Builds per-slice active-unit curves (Fig 15a–e) from unordered busy
/// intervals.
#[derive(Debug, Clone, Default)]
pub struct TimelineBuilder {
    intervals: Vec<(SimTime, SimTime)>,
    busy: Duration,
}

impl TimelineBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one busy interval of one unit.
    ///
    /// Contiguous extensions of the most recent interval (the common
    /// case: back-to-back grants on a serially reused unit) are merged
    /// in place rather than appended, and the busy total is maintained
    /// incrementally so neither query re-walks the interval list.
    pub fn push(&mut self, start: SimTime, end: SimTime) {
        debug_assert!(start <= end);
        self.busy += end - start;
        if let Some(last) = self.intervals.last_mut() {
            if last.1 == start {
                last.1 = end;
                return;
            }
        }
        self.intervals.push((start, end));
    }

    /// Appends another builder's intervals in their recorded order —
    /// the merge step for per-partition timelines. The busy total is
    /// exact; interval boundaries follow the concatenated push order
    /// (contiguous merging applies only at the seam).
    pub fn absorb(&mut self, other: &TimelineBuilder) {
        for &(s, e) in &other.intervals {
            self.push(s, e);
        }
    }

    /// Total busy unit-time recorded.
    pub fn busy_total(&self) -> Duration {
        self.busy
    }

    /// Number of intervals recorded.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns `true` if no intervals were recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Produces the mean number of simultaneously busy units per
    /// `slice`-wide window over `[0, end]`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is zero.
    pub fn curve(&self, slice: Duration, end: SimTime) -> Vec<f64> {
        assert!(!slice.is_zero(), "slice must be positive");
        let nslices = (end.as_ns()).div_ceil(slice.as_ns()).max(1) as usize;
        let mut acc = vec![0u64; nslices];
        for &(s, e) in &self.intervals {
            let mut t = s;
            let e = e.min(end);
            while t < e {
                let idx = (t.as_ns() / slice.as_ns()) as usize;
                let slice_end = SimTime::from_ns((idx as u64 + 1) * slice.as_ns()).min(e);
                if idx < nslices {
                    acc[idx] += (slice_end - t).as_ns();
                }
                t = slice_end;
            }
        }
        acc.into_iter()
            .map(|ns| ns as f64 / slice.as_ns() as f64)
            .collect()
    }

    /// Mean busy units over `[0, end]`.
    pub fn mean_active(&self, end: SimTime) -> f64 {
        if end == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total().as_ns() as f64 / end.as_ns() as f64
    }
}

/// Allocator-recycling counters from the engine's event and outcome
/// pools (populated per run; see `simkit::profile` for the richer
/// opt-in instrumentation).
///
/// Values are *cold-equivalent*: `*_allocated` is the run's peak slots
/// in use (what a fresh slab would have grown to), `*_reused` the
/// schedules/commands served within that peak. They describe the run's
/// concurrency demand, not how warm the executing worker's scratch
/// happened to be — so they are byte-identical at any worker count and
/// under record/replay. Actual warm-scratch slab growth is reported
/// through the `engine/*` profile counters instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Events dispatched by the engine's drain loop.
    pub events_processed: u64,
    /// Peak calendar slab slots in use (cold-equivalent allocations).
    pub event_slots_allocated: u64,
    /// Calendar schedules served within the peak (cold-equivalent
    /// free-list reuse).
    pub event_slots_reused: u64,
    /// Peak sample-outcome slots in use (cold-equivalent allocations).
    pub outcome_slots_allocated: u64,
    /// Sample-outcome acquisitions served within the peak
    /// (cold-equivalent free-list reuse).
    pub outcome_slots_reused: u64,
    /// High-water mark of events resident in the calendar's near-horizon
    /// wheel during the run (max across lanes for partitioned runs).
    /// Diagnostic only — not part of the serialized metrics registry.
    pub calendar_wheel_high_water: u64,
    /// High-water mark of events parked in the calendar's far/overflow
    /// tier during the run (max across lanes for partitioned runs).
    /// Diagnostic only — not part of the serialized metrics registry.
    pub calendar_far_high_water: u64,
}

/// Sustained occupancy of the accelerator arrays over the compute
/// window: delivered work (MACs / reduce ops) divided by the array's
/// peak capacity over the total compute time. Both are in `[0, 1]` and
/// include the time the *other* array holds the pipeline, so they read
/// as "fraction of the compute window this array did useful work".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccelOccupancy {
    /// Systolic (GEMM) array occupancy.
    pub systolic: f64,
    /// Vector (aggregation) array occupancy.
    pub vector: f64,
}

/// The complete result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Platform display name.
    pub platform: &'static str,
    /// Target nodes processed.
    pub targets: u64,
    /// Mini-batches processed.
    pub batches: u64,
    /// Nodes visited during data preparation (subgraph vertices).
    pub nodes_visited: u64,
    /// Flash page reads issued.
    pub flash_reads: u64,
    /// Sampling commands aborted by the on-die §VI-E check (missing or
    /// malformed sections); their subtrees are dropped and control
    /// returns to firmware.
    pub sampler_faults: u64,
    /// End-to-end makespan (prep ∥ compute pipeline).
    pub makespan: Duration,
    /// Total data-preparation time (sum over batches).
    pub prep_time: Duration,
    /// Total computation time (sum over batches).
    pub compute_time: Duration,
    /// Per-command latency phases.
    pub cmd_breakdown: CmdBreakdown,
    /// Busy time per resource class.
    pub stages: StageBreakdown,
    /// Hop activity windows of the *first* batch (Fig 16 plots one
    /// batch's data preparation).
    pub hop_windows: Vec<HopWindow>,
    /// Die busy intervals (Fig 15 curves).
    pub die_timeline: TimelineBuilder,
    /// Channel busy intervals (Fig 15 curves).
    pub channel_timeline: TimelineBuilder,
    /// Raw energy quantities.
    pub energy: EnergyLedger,
    /// Die count of the simulated backend (for utilization fractions).
    pub total_dies: usize,
    /// Channel count of the simulated backend.
    pub total_channels: usize,
    /// Optional event trace (empty unless enabled via
    /// [`Engine::with_trace`](crate::Engine::with_trace)).
    pub trace: simkit::Trace,
    /// Event/outcome pool recycling behaviour of this run.
    pub pools: PoolCounters,
    /// Observability spans (empty unless enabled via
    /// [`Engine::with_obs`](crate::Engine::with_obs); export with
    /// [`simkit::ChromeTraceWriter`]).
    pub spans: SpanRecorder,
    /// Sampling commands executed by the on-die samplers (sampler
    /// hits), summed over dies.
    pub sampler_executed: u64,
    /// Command-router traffic statistics, mirrored from the functional
    /// [`beacon_ssd::CommandRouter`] on hardware-router platforms when
    /// observability is enabled; `None` otherwise.
    pub router: Option<RouterStats>,
    /// FTL write/GC statistics from replaying the DirectGraph flush,
    /// collected only when observability is enabled; `None` otherwise.
    pub ftl: Option<FtlStats>,
    /// Accelerator array occupancy over the compute window.
    pub accel_occupancy: AccelOccupancy,
    /// Per-query latency report (disabled/empty unless enabled via
    /// [`Engine::with_latency`](crate::Engine::with_latency) or the
    /// partitioned/array equivalents).
    pub latency: LatencyReport,
}

impl RunMetrics {
    /// Throughput in target nodes per second.
    pub fn throughput(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.targets as f64 / self.makespan.as_secs_f64()
    }

    /// A one-paragraph human-readable summary of the run.
    pub fn summary(&self) -> String {
        let (wb, fl, wa) = self.cmd_breakdown.fractions();
        format!(
            "{}: {} targets in {} ({:.0} targets/s); prep {} ∥ compute {}; \
             {} flash reads over {} dies ({:.0}% busy) and {} channels ({:.0}% busy); \
             command lifetime {:.1}us (wait-before {:.0}% / flash {:.0}% / wait-after {:.0}%){}",
            self.platform,
            self.targets,
            self.makespan,
            self.throughput(),
            self.prep_time,
            self.compute_time,
            self.flash_reads,
            self.total_dies,
            self.die_utilization() * 100.0,
            self.total_channels,
            self.channel_utilization() * 100.0,
            self.cmd_breakdown.mean_lifetime_ns() / 1_000.0,
            wb * 100.0,
            fl * 100.0,
            wa * 100.0,
            if self.sampler_faults > 0 {
                format!("; {} sampler faults", self.sampler_faults)
            } else {
                String::new()
            },
        )
    }

    /// Snapshots the whole run into a [`MetricsRegistry`] — the
    /// structured per-run report behind `--metrics`.
    ///
    /// Section and field order is fixed; every value derives from the
    /// simulation alone (no wall-clock, no host identity), so two
    /// identical runs serialize byte-identically at any `--jobs`.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();

        let run = reg.section("run");
        run.set_u64("schema_version", 1);
        run.set_str("platform", self.platform);
        run.set_u64("targets", self.targets);
        run.set_u64("batches", self.batches);
        run.set_u64("nodes_visited", self.nodes_visited);
        run.set_u64("flash_reads", self.flash_reads);
        run.set_u64("sampler_executed", self.sampler_executed);
        run.set_u64("sampler_faults", self.sampler_faults);
        run.set_duration("makespan", self.makespan);
        run.set_duration("prep_time", self.prep_time);
        run.set_duration("compute_time", self.compute_time);
        run.set_f64("throughput_targets_per_s", self.throughput());

        let cmd = reg.section("command_breakdown");
        cmd.set_summary(
            "wait_before_flash_ns",
            &self.cmd_breakdown.wait_before_flash,
        );
        cmd.set_summary("flash_ns", &self.cmd_breakdown.flash);
        cmd.set_summary("wait_after_flash_ns", &self.cmd_breakdown.wait_after_flash);
        cmd.set_f64("mean_lifetime_ns", self.cmd_breakdown.mean_lifetime_ns());
        let (wb, fl, wa) = self.cmd_breakdown.fractions();
        cmd.set_f64("frac_wait_before", wb);
        cmd.set_f64("frac_flash", fl);
        cmd.set_f64("frac_wait_after", wa);

        let stages = reg.section("stages");
        stages.set_duration("flash_read", self.stages.flash_read);
        stages.set_duration("channel", self.stages.channel);
        stages.set_duration("firmware", self.stages.firmware);
        stages.set_duration("dram", self.stages.dram);
        stages.set_duration("pcie", self.stages.pcie);
        stages.set_duration("host", self.stages.host);
        stages.set_duration("accel", self.stages.accel);

        let du = self.die_utilization();
        let cu = self.channel_utilization();
        let dies = reg.section("die_utilization");
        dies.set_u64("total_dies", self.total_dies as u64);
        dies.set_u64("busy_ns", self.die_timeline.busy_total().as_ns());
        dies.set_u64("intervals", self.die_timeline.len() as u64);
        dies.set_f64("utilization", du);
        let chans = reg.section("channel_utilization");
        chans.set_u64("total_channels", self.total_channels as u64);
        chans.set_u64("busy_ns", self.channel_timeline.busy_total().as_ns());
        chans.set_u64("intervals", self.channel_timeline.len() as u64);
        chans.set_f64("utilization", cu);

        let hops = reg.section("hops");
        hops.set_u64("windows", self.hop_windows.len() as u64);
        for w in &self.hop_windows {
            hops.set_u64(&format!("hop{}_start_ns", w.hop), w.start.as_ns());
            hops.set_u64(&format!("hop{}_end_ns", w.hop), w.end.as_ns());
        }

        let router = reg.section("router");
        router.set_bool("present", self.router.is_some());
        self.router.unwrap_or_default().record_into(router);

        let ftl = reg.section("ftl");
        ftl.set_bool("present", self.ftl.is_some());
        self.ftl.unwrap_or_default().record_into(ftl);

        let accel = reg.section("accelerator");
        accel.set_f64("systolic_occupancy", self.accel_occupancy.systolic);
        accel.set_f64("vector_occupancy", self.accel_occupancy.vector);
        accel.set_u64("macs", self.energy.macs);
        accel.set_u64("reduce_ops", self.energy.reduce_ops);
        accel.set_duration("compute_time", self.compute_time);

        let energy = reg.section("energy");
        energy.set_u64("flash_page_reads", self.energy.flash_page_reads);
        energy.set_u64("channel_bytes", self.energy.channel_bytes);
        energy.set_u64("dram_bytes", self.energy.dram_bytes);
        energy.set_u64("pcie_bytes", self.energy.pcie_bytes);
        energy.set_duration("core_busy", self.energy.core_busy);
        energy.set_duration("host_cpu_busy", self.energy.host_cpu_busy);
        energy.set_u64("macs", self.energy.macs);
        energy.set_u64("reduce_ops", self.energy.reduce_ops);
        energy.set_u64("sampler_cmds", self.energy.sampler_cmds);
        energy.set_u64("router_cmds", self.energy.router_cmds);

        let pools = reg.section("pools");
        pools.set_u64("events_processed", self.pools.events_processed);
        pools.set_u64("event_slots_allocated", self.pools.event_slots_allocated);
        pools.set_u64("event_slots_reused", self.pools.event_slots_reused);
        pools.set_u64(
            "outcome_slots_allocated",
            self.pools.outcome_slots_allocated,
        );
        pools.set_u64("outcome_slots_reused", self.pools.outcome_slots_reused);

        let trace = reg.section("trace");
        trace.set_u64("spans", self.spans.len() as u64);
        trace.set_u64("spans_dropped", self.spans.dropped());
        trace.set_u64("legacy_events", self.trace.len() as u64);

        // Per-query latency: tail percentiles and critical-path stage
        // totals. Rendered even when tracking was off (`enabled` tells
        // the two apart) so the report schema is shape-stable.
        let lat = reg.section("latency");
        self.latency.render_latency(lat);
        let lb = reg.section("latency_breakdown");
        self.latency.render_breakdown(lb);

        // The functional sampling cascade, as the record/replay layer
        // sees it. Every value here is *path-invariant*: a replayed run
        // reports exactly what its full-run twin would, so the section
        // never breaks replay byte-identity. (Cache hit/miss/fallback
        // counts are process-wide, not per-run — see
        // `simkit::profile`'s `replay/*` counters.)
        let replay = reg.section("replay");
        replay.set_u64("cascade_commands", self.sampler_executed);
        replay.set_u64("cascade_roots", self.targets);
        replay.set_u64("cascade_faults", self.sampler_faults);
        replay.set_u64(
            "cascade_edges",
            self.nodes_visited.saturating_sub(self.targets),
        );

        reg
    }

    /// Mean die utilization over the prep window, in `[0, 1]`.
    pub fn die_utilization(&self) -> f64 {
        let end = SimTime::ZERO + self.prep_time;
        if self.total_dies == 0 || end == SimTime::ZERO {
            return 0.0;
        }
        self.die_timeline.mean_active(end) / self.total_dies as f64
    }

    /// Mean channel utilization over the prep window, in `[0, 1]`.
    pub fn channel_utilization(&self) -> f64 {
        let end = SimTime::ZERO + self.prep_time;
        if self.total_channels == 0 || end == SimTime::ZERO {
            return 0.0;
        }
        self.channel_timeline.mean_active(end) / self.total_channels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmd_breakdown_fractions_sum_to_one() {
        let mut b = CmdBreakdown::default();
        b.record(
            Duration::from_us(2),
            Duration::from_us(5),
            Duration::from_us(3),
        );
        b.record(
            Duration::from_us(4),
            Duration::from_us(5),
            Duration::from_us(1),
        );
        let (w, f, a) = b.fractions();
        assert!((w + f + a - 1.0).abs() < 1e-12);
        assert!((b.mean_lifetime_ns() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = CmdBreakdown::default();
        assert_eq!(b.fractions(), (0.0, 0.0, 0.0));
        assert_eq!(b.mean_lifetime_ns(), 0.0);
    }

    #[test]
    fn timeline_curve_integrates_overlap() {
        let mut tl = TimelineBuilder::new();
        tl.push(SimTime::from_ns(0), SimTime::from_ns(10));
        tl.push(SimTime::from_ns(5), SimTime::from_ns(15));
        let curve = tl.curve(Duration::from_ns(10), SimTime::from_ns(20));
        assert_eq!(curve.len(), 2);
        assert!((curve[0] - 1.5).abs() < 1e-12); // 10 + 5 busy-ns / 10
        assert!((curve[1] - 0.5).abs() < 1e-12);
        assert_eq!(tl.busy_total(), Duration::from_ns(20));
        assert!((tl.mean_active(SimTime::from_ns(20)) - 1.0).abs() < 1e-12);
        assert_eq!(tl.len(), 2);
        assert!(!tl.is_empty());
    }

    #[test]
    fn hop_window_span() {
        let w = HopWindow {
            hop: 1,
            start: SimTime::from_ns(10),
            end: SimTime::from_ns(30),
        };
        assert_eq!(w.span(), Duration::from_ns(20));
    }
}
