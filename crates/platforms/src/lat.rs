//! Shared per-query latency plumbing for the engines.
//!
//! The engines accumulate two things while they run: a
//! [`ChainTable`] holding each query's winning (longest) command chain
//! through data preparation, and one [`BatchLat`] per mini-batch
//! describing the shared tail every query in the batch rides through —
//! the prep barrier, the optional PCIe feature shipment, and the
//! accelerator window. [`finalize`] stitches the two together into the
//! run's [`LatencyReport`].

use simkit::{ChainTable, Duration, LatencyReport, PathAttr, QueryLat, SimTime, Stage};

/// One mini-batch's shared latency context.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchLat {
    /// Global query-id base of this batch (`qid = base + slot`).
    pub base: u32,
    /// Query (target-node) count.
    pub len: u32,
    /// Submission time: the host handed the batch's root commands to
    /// the device (end of the NVMe setup).
    pub submit: SimTime,
    /// Data-preparation completion — the barrier every query's chain
    /// waits on before compute.
    pub prep_gate: SimTime,
    /// Batch feature shipment over PCIe (platforms whose features cross
    /// the link before compute), as a `(start, end)` grant.
    pub pcie: Option<(SimTime, SimTime)>,
    /// Accelerator window start.
    pub compute_start: SimTime,
    /// Accelerator window end — every query in the batch retires here.
    pub compute_end: SimTime,
}

/// Extends each query's winning chain through its batch's shared
/// compute tail and builds the run's [`LatencyReport`].
///
/// The extension preserves the invariant that a query's stage
/// nanoseconds sum exactly to `end - submit`: the gap from the chain's
/// retirement to the prep barrier is queueing, the PCIe grant splits
/// into queueing plus link time, the wait for the accelerator is
/// queueing, and the compute window is accelerator time.
pub(crate) fn finalize(
    epoch: Duration,
    chains: &ChainTable,
    batches: &[BatchLat],
) -> LatencyReport {
    let total: usize = batches.iter().map(|b| b.len as usize).sum();
    let mut queries = Vec::with_capacity(total);
    for (bi, b) in batches.iter().enumerate() {
        for slot in 0..b.len {
            let qid = (b.base + slot) as usize;
            let (chain_end, mut path) = match chains.get(qid) {
                Some(&(e, p)) => (e, p),
                // A query whose chain never retired (cannot happen for
                // well-formed runs: every root command completes) —
                // attribute its whole life to queueing.
                None => (b.submit, PathAttr::default()),
            };
            let gate = b.prep_gate.max(chain_end);
            path.add(Stage::Queue, gate - chain_end);
            let mut t = gate;
            if let Some((s, e)) = b.pcie {
                path.add(Stage::Queue, s.saturating_duration_since(t));
                path.add(Stage::Pcie, e - s);
                t = t.max(e);
            }
            path.add(Stage::Queue, b.compute_start.saturating_duration_since(t));
            path.add(Stage::Accel, b.compute_end - b.compute_start);
            queries.push(QueryLat {
                batch: bi as u32,
                slot,
                submit: b.submit,
                end: b.compute_end,
                path,
            });
        }
    }
    LatencyReport::build(epoch, queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_extends_chain_through_compute_tail() {
        let mut chains = ChainTable::new(2);
        let mut p = PathAttr::default();
        p.add(Stage::DieSense, Duration::from_ns(40));
        p.add(Stage::Queue, Duration::from_ns(10));
        chains.observe(0, SimTime::from_ns(150), &p);
        let mut p1 = PathAttr::default();
        p1.add(Stage::Queue, Duration::from_ns(80));
        chains.observe(1, SimTime::from_ns(180), &p1);
        let batches = [BatchLat {
            base: 0,
            len: 2,
            submit: SimTime::from_ns(100),
            prep_gate: SimTime::from_ns(200),
            pcie: Some((SimTime::from_ns(210), SimTime::from_ns(240))),
            compute_start: SimTime::from_ns(240),
            compute_end: SimTime::from_ns(300),
        }];
        let report = finalize(Duration::ZERO, &chains, &batches);
        assert_eq!(report.queries().len(), 2);
        for q in report.queries() {
            assert_eq!(q.submit, SimTime::from_ns(100));
            assert_eq!(q.end, SimTime::from_ns(300));
            // Stage sum covers the whole end-to-end latency exactly.
            assert_eq!(q.path.total_ns(), q.latency_ns());
        }
        let q0 = &report.queries()[0];
        assert_eq!(q0.path.get(Stage::DieSense), 40);
        assert_eq!(q0.path.get(Stage::Pcie), 30);
        assert_eq!(q0.path.get(Stage::Accel), 60);
        // 10 (chain) + 50 (barrier) + 10 (pcie wait) + 0 (accel wait).
        assert_eq!(q0.path.get(Stage::Queue), 70);
    }

    #[test]
    fn finalize_handles_unobserved_chain() {
        let chains = ChainTable::new(1);
        let batches = [BatchLat {
            base: 0,
            len: 1,
            submit: SimTime::from_ns(10),
            prep_gate: SimTime::from_ns(50),
            pcie: None,
            compute_start: SimTime::from_ns(60),
            compute_end: SimTime::from_ns(90),
        }];
        let report = finalize(Duration::from_ns(1_000), &chains, &batches);
        let q = &report.queries()[0];
        assert_eq!(q.latency_ns(), 80);
        assert_eq!(q.path.total_ns(), 80);
        assert_eq!(q.path.get(Stage::Accel), 30);
        assert_eq!(report.windows().len(), 1);
    }
}
