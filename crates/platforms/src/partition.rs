//! Partitioned per-channel event loops with conservative lookahead.
//!
//! [`PartitionedEngine`] runs one simulation as N independent event
//! loops — one *lane* per flash channel — instead of the single serial
//! calendar of [`Engine`](crate::Engine). BeaconGNN's BG-2 pipeline
//! makes this natural: with the hardware command router in control and
//! die-level sampling, a command's whole lifetime (router issue → die
//! sense → channel transfer → router parse) touches only the resources
//! of one channel; lanes interact solely when
//!
//! * a sampled child command targets a die on another channel (router
//!   crossbar forward), or
//! * a retrieved feature vector is staged in the shared SSD DRAM.
//!
//! Both interactions go through [`simkit::sync`]: lanes advance in
//! bulk-synchronous rounds bounded by a shared horizon (the next
//! multiple of [`SsdConfig::router_epoch`] above the earliest pending
//! event), and everything that crosses a lane boundary is buffered as a
//! message, globally sorted by `(time, key)` with a deterministic
//! per-command key, and delivered at the round barrier.
//!
//! ## Semantics: a partition-count-invariant model, not a bit-replay
//! ## of the serial engine
//!
//! The partitioned model is its own timing semantics for BG-2:
//! cross-channel forwards and DRAM-staging completions are quantized to
//! epoch boundaries (the crossbar batches inter-channel traffic), and
//! same-instant ties are broken by the `(time, key)` order rather than
//! the serial engine's global insertion order. Those rules are a pure
//! function of the simulated configuration — **thread count and
//! partition count are invisible**, so any `threads(n)` produces
//! byte-identical output to `threads(1)`, which runs the identical
//! round protocol inline with no worker threads (the serial fallback).
//! The legacy serial [`Engine`](crate::Engine) remains untouched and
//! bit-stable; platforms whose spec keeps firmware, the host, or a hop
//! barrier in the control path (everything except BG-2) are not
//! channel-separable and transparently fall back to it.
//!
//! Determinism argument, in full:
//!
//! 1. Within a round, a lane only reads lane-local state plus the
//!    shared horizon, so its event order is the serial order of its own
//!    calendar — independent of other lanes and of scheduling.
//! 2. The horizon is a pure function of the earliest pending event
//!    ([`EpochWindow::horizon_for`]), itself a minimum over lane-local
//!    values.
//! 3. Cross-lane messages are sorted by `(time, key)` before any is
//!    applied; keys (mini-batch slot × sampling-tree index) are unique,
//!    so the sorted order is total and worker interleaving cannot show.
//! 4. Shared resources (DRAM) are acquired only by the coordinator, in
//!    that sorted order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use beacon_energy::EnergyLedger;
use beacon_flash::{DieSampler, GnnDieConfig, SampleCommand};
use beacon_gnn::{GnnModelConfig, MinibatchWorkload};
use beacon_graph::NodeId;
use beacon_ssd::SsdConfig;
use directgraph::DirectGraph;
use simkit::obs::{SpanRecorder, UnitKind};
use simkit::sync::{EpochWindow, MessagePool};
use simkit::{
    profile, BandwidthResource, Calendar, ChainTable, Duration, LatencyReport, PathArena, PathAttr,
    SerialResource, SimTime, Stage, Trace, NO_PATH,
};

use crate::engine::{Engine, FlashServiceMemo, OutcomePool, NODE_ID_BYTES, ON_DIE_SAMPLE_TIME};
use crate::lat::{self, BatchLat};
use crate::metrics::{
    AccelOccupancy, CmdBreakdown, HopWindow, PoolCounters, RunMetrics, StageBreakdown,
    TimelineBuilder,
};
use crate::spec::{ComputeLocation, Platform, PlatformSpec};

/// Sentinel for "lane calendar is empty" in the shared next-event
/// atomics.
const IDLE: u64 = u64::MAX;

/// The deterministic identity of one sampling command: mini-batch slot
/// in the high 64 bits, position in that target's sampling tree in the
/// low 64. Unique per in-flight command, totally ordering same-instant
/// messages.
fn cmd_key(subgraph: u32, tree_index: u64) -> u128 {
    ((subgraph as u128) << 64) | tree_index as u128
}

/// A command inside a lane. `tree_index` is the node's position in its
/// target's sampling tree (root 0; child *i* of node *t* is
/// `t*(fanout+1) + i + 1`) — the root of the message key. The wrapping
/// arithmetic only matters for configurations absurdly deeper than the
/// paper's 2-hop/fanout-10 model, where key collisions would merely
/// perturb same-instant tie order, still deterministically.
#[derive(Debug, Clone, Copy)]
struct LCmd {
    sample: SampleCommand,
    tree_index: u64,
    /// Frontend arrival (lifetime start, for wait accounting).
    created: SimTime,
    /// Handle into the lane's [`PathArena`] ([`NO_PATH`] when latency
    /// tracking is off).
    lat: u32,
}

impl LCmd {
    fn key(&self) -> u128 {
        cmd_key(self.sample.subgraph, self.tree_index)
    }
}

/// Lane-local pipeline events. The lane pipeline collapses the serial
/// engine's generic step machinery to BG-2's fixed shape:
/// router issue (`Arrive`→`Die`), die sense + on-die sampling
/// (`Die`→`Xfer`), channel transfer (`Xfer`→`Done`, which carries the
/// trailing router parse), then either an inline finish or a
/// DRAM-staging round trip through the coordinator (`Finish`).
#[derive(Debug, Clone, Copy)]
enum LaneEvent {
    Arrive(LCmd),
    Die(LCmd),
    Xfer(LCmd, SimTime, u32),
    Done(LCmd, SimTime, Duration, u32),
    Finish(u32),
}

/// A command parked in the lane while its feature bytes cross the
/// shared DRAM (coordinator-side); resumed by a `Finish` delivery.
#[derive(Debug, Clone, Copy)]
struct Parked {
    cmd: LCmd,
    xfer_end: SimTime,
    chan_wait: Duration,
    oi: u32,
}

/// Cross-lane messages, carried in a [`MessagePool`] keyed by
/// `(time, cmd_key)`.
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// Stage `bytes` of features in shared DRAM; resume `parked` on
    /// `lane` when the transfer completes.
    DramReq { lane: u32, parked: u32, bytes: u64 },
    /// Router crossbar forward of a sampled child to another channel.
    Spawn {
        lane: u32,
        sample: SampleCommand,
        tree_index: u64,
        /// Inherited critical-path attribution (zeroed when latency
        /// tracking is off).
        path: PathAttr,
    },
}

/// One channel's event loop: the channel bus, its dies and samplers, a
/// private calendar, and lane-local metric accumulators that merge in
/// fixed lane order after the run.
struct Lane<'a> {
    channel: usize,
    ssd: SsdConfig,
    dg: &'a DirectGraph,
    /// `fanout + 1`, the tree-index radix.
    radix: u64,

    dies: Vec<SerialResource>,
    chan: SerialResource,
    samplers: Vec<DieSampler>,
    calendar: Calendar<LaneEvent>,
    cal_base: simkit::PoolStats,
    /// Memoized flash service times (shared formulae with the serial
    /// engine; one table per lane is cheap and keeps lanes `Send`).
    memo: FlashServiceMemo,
    outcomes: OutcomePool,
    parked: Vec<Parked>,
    parked_free: Vec<u32>,
    outbox: MessagePool<Msg>,

    record_hops: bool,
    hop_first: Vec<Option<SimTime>>,
    hop_last: Vec<Option<SimTime>>,
    cmd_breakdown: CmdBreakdown,
    die_timeline: TimelineBuilder,
    channel_timeline: TimelineBuilder,
    nodes_visited: u64,
    flash_reads: u64,
    sampler_faults: u64,
    router_cmds: u64,
    channel_bytes: u64,
    events_processed: u64,
    prep_end: SimTime,
    trace: Trace,
    obs: SpanRecorder,

    /// Per-query latency tracking (off by default; see
    /// [`PartitionedEngine::with_latency`]).
    lat_on: bool,
    /// Global query-id base of the batch in flight (copied from
    /// [`Shared::qid_base`] at the start of every round).
    lat_qid_base: u32,
    /// Attributions of this lane's in-flight commands.
    arena: PathArena,
    /// Winning chain per global query id (merged in channel order).
    chains: ChainTable,
}

impl<'a> Lane<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        channel: usize,
        ssd: SsdConfig,
        die_cfg: GnnDieConfig,
        dg: &'a DirectGraph,
        seed: u64,
        hops: usize,
        trace_capacity: usize,
        obs_capacity: usize,
        lat_queries: Option<usize>,
    ) -> Self {
        let geo = &ssd.geometry;
        // Samplers draw from command content, not die identity, so all
        // dies share the run seed and the cascade is partition-invariant.
        let samplers = (0..geo.dies_per_channel)
            .map(|_| DieSampler::new(die_cfg, seed))
            .collect();
        Lane {
            channel,
            dg,
            radix: die_cfg.fanout as u64 + 1,
            dies: vec![SerialResource::new(); geo.dies_per_channel],
            chan: SerialResource::new(),
            samplers,
            calendar: Calendar::new(),
            cal_base: simkit::PoolStats::default(),
            memo: FlashServiceMemo::new(ssd.timing, ON_DIE_SAMPLE_TIME, geo.page_size),
            outcomes: OutcomePool::default(),
            parked: Vec::new(),
            parked_free: Vec::new(),
            outbox: MessagePool::new(),
            record_hops: true,
            hop_first: vec![None; hops],
            hop_last: vec![None; hops],
            cmd_breakdown: CmdBreakdown::default(),
            die_timeline: TimelineBuilder::new(),
            channel_timeline: TimelineBuilder::new(),
            nodes_visited: 0,
            flash_reads: 0,
            sampler_faults: 0,
            router_cmds: 0,
            channel_bytes: 0,
            events_processed: 0,
            prep_end: SimTime::ZERO,
            trace: Trace::with_capacity(trace_capacity),
            obs: if obs_capacity > 0 {
                SpanRecorder::with_capacity(obs_capacity)
            } else {
                SpanRecorder::disabled()
            },
            lat_on: lat_queries.is_some(),
            lat_qid_base: 0,
            arena: PathArena::default(),
            chains: ChainTable::new(lat_queries.unwrap_or(0)),
            ssd,
        }
    }

    /// Global die index of a command's target page.
    fn die_of(&self, sample: &SampleCommand) -> usize {
        let (page, _) = self.dg.layout().unpack(sample.target);
        self.ssd.geometry.die_of(page).index()
    }

    fn next_time_ns(&self) -> u64 {
        self.calendar.peek_time().map_or(IDLE, |t| t.as_ns())
    }

    /// Drains every event strictly below `horizon`.
    fn run_round(&mut self, horizon: SimTime) {
        loop {
            match self.calendar.peek_time() {
                Some(t) if t < horizon => {}
                _ => break,
            }
            let (now, ev) = self.calendar.pop().expect("peeked event");
            self.events_processed += 1;
            match ev {
                LaneEvent::Arrive(cmd) => self.on_arrive(cmd, now),
                LaneEvent::Die(cmd) => self.on_die(cmd, now),
                LaneEvent::Xfer(cmd, die_start, oi) => self.on_xfer(cmd, die_start, oi, now),
                LaneEvent::Done(cmd, xfer_end, chan_wait, oi) => {
                    self.on_done(cmd, xfer_end, chan_wait, oi, now)
                }
                LaneEvent::Finish(p) => self.on_finish(p, now),
            }
        }
    }

    fn on_arrive(&mut self, cmd: LCmd, now: SimTime) {
        if self.record_hops {
            let h = cmd.sample.hop as usize;
            self.hop_first[h] = Some(self.hop_first[h].map_or(now, |t| t.min(now)));
        }
        self.router_cmds += 1;
        if cmd.lat != NO_PATH {
            self.arena
                .get_mut(cmd.lat)
                .add(Stage::Other, self.ssd.router_latency);
        }
        self.calendar
            .schedule(now + self.ssd.router_latency, LaneEvent::Die(cmd));
    }

    fn on_die(&mut self, cmd: LCmd, now: SimTime) {
        let die = self.die_of(&cmd.sample);
        let local = die / self.ssd.geometry.channels;
        let grant = self.dies[local].acquire(now, self.memo.die_service);
        self.die_timeline.push(grant.start, grant.end);
        if self.trace.is_enabled() {
            self.trace
                .record(grant.start, "die_sense", die as u64, cmd.sample.hop as f64);
        }
        if self.obs.is_enabled() {
            self.obs.record(
                UnitKind::Die,
                die as u32,
                "sense",
                grant.start,
                grant.end,
                cmd.sample.hop as f64,
            );
        }
        self.flash_reads += 1;
        let oi = self.outcomes.acquire();
        if self.samplers[local]
            .execute_into(
                &cmd.sample,
                self.dg.image(),
                &mut self.outcomes.slots[oi as usize],
            )
            .is_err()
        {
            self.sampler_faults += 1;
        }
        self.cmd_breakdown
            .wait_before_flash
            .record_duration(grant.start.saturating_duration_since(cmd.created));
        if cmd.lat != NO_PATH {
            let p = self.arena.get_mut(cmd.lat);
            p.add(Stage::Queue, grant.start.saturating_duration_since(now));
            p.add(Stage::DieSense, grant.end - grant.start);
        }
        self.calendar
            .schedule(grant.end, LaneEvent::Xfer(cmd, grant.start, oi));
    }

    fn on_xfer(&mut self, cmd: LCmd, die_start: SimTime, oi: u32, now: SimTime) {
        let bytes = self.outcomes.get(oi).result_bytes() as u64;
        let service = self.memo.xfer_service(bytes);
        let grant = self.chan.acquire(now, service);
        self.channel_timeline.push(grant.start, grant.end);
        if self.trace.is_enabled() {
            self.trace
                .record(grant.start, "chan_xfer", self.channel as u64, bytes as f64);
        }
        if self.obs.is_enabled() {
            self.obs.record(
                UnitKind::Channel,
                self.channel as u32,
                "xfer",
                grant.start,
                grant.end,
                bytes as f64,
            );
        }
        self.channel_bytes += bytes;
        let chan_wait = grant.start.saturating_duration_since(now);
        self.cmd_breakdown
            .flash
            .record_duration((now - die_start) + (grant.end - grant.start));
        if cmd.lat != NO_PATH {
            let p = self.arena.get_mut(cmd.lat);
            p.add(Stage::Queue, chan_wait);
            p.add(Stage::Channel, grant.end - grant.start);
            p.add(Stage::Other, self.ssd.router_latency);
        }
        // Trailing router parse is a fixed, contention-free hop.
        self.calendar.schedule(
            grant.end + self.ssd.router_latency,
            LaneEvent::Done(cmd, grant.end, chan_wait, oi),
        );
    }

    fn on_done(
        &mut self,
        cmd: LCmd,
        xfer_end: SimTime,
        chan_wait: Duration,
        oi: u32,
        now: SimTime,
    ) {
        let fb = self.outcomes.get(oi).feature_bytes as u64;
        if fb > 0 && !self.ssd.dram_bypass {
            let slot = match self.parked_free.pop() {
                Some(s) => {
                    self.parked[s as usize] = Parked {
                        cmd,
                        xfer_end,
                        chan_wait,
                        oi,
                    };
                    s
                }
                None => {
                    let s = u32::try_from(self.parked.len()).expect("parked overflow");
                    self.parked.push(Parked {
                        cmd,
                        xfer_end,
                        chan_wait,
                        oi,
                    });
                    s
                }
            };
            self.outbox.push(
                now,
                cmd.key(),
                Msg::DramReq {
                    lane: self.channel as u32,
                    parked: slot,
                    bytes: fb,
                },
            );
        } else {
            self.finish(cmd, xfer_end, chan_wait, oi, now);
        }
    }

    fn on_finish(&mut self, slot: u32, now: SimTime) {
        let p = self.parked[slot as usize];
        self.parked_free.push(slot);
        self.finish(p.cmd, p.xfer_end, p.chan_wait, p.oi, now);
    }

    fn finish(&mut self, cmd: LCmd, xfer_end: SimTime, chan_wait: Duration, oi: u32, now: SimTime) {
        self.cmd_breakdown
            .wait_after_flash
            .record_duration(chan_wait + now.saturating_duration_since(xfer_end));
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                "cmd_done",
                cmd.sample.subgraph as u64,
                cmd.sample.hop as f64,
            );
        }
        if self.obs.is_enabled() {
            self.obs
                .instant(UnitKind::Engine, 0, "cmd_done", now, cmd.sample.hop as f64);
        }
        if self.record_hops {
            let h = cmd.sample.hop as usize;
            self.hop_last[h] = Some(self.hop_last[h].map_or(now, |t| t.max(now)));
        }
        if self.outcomes.get(oi).visited.is_some() {
            self.nodes_visited += 1;
        }
        // At retirement the command's chain competes for its query's
        // longest path, and children inherit the attribution so far.
        let inherit = if cmd.lat != NO_PATH {
            let p = *self.arena.get(cmd.lat);
            self.chains
                .observe((self.lat_qid_base + cmd.sample.subgraph) as usize, now, &p);
            self.arena.release(cmd.lat);
            p
        } else {
            PathAttr::default()
        };
        let channels = self.ssd.geometry.channels;
        for i in 0..self.outcomes.get(oi).new_commands.len() {
            let child = self.outcomes.get(oi).new_commands[i];
            let ti = cmd
                .tree_index
                .wrapping_mul(self.radix)
                .wrapping_add(i as u64 + 1);
            let lane = self.die_of(&child) % channels;
            if lane == self.channel {
                let lat = if cmd.lat != NO_PATH {
                    self.arena.alloc(inherit)
                } else {
                    NO_PATH
                };
                self.calendar.schedule(
                    now,
                    LaneEvent::Arrive(LCmd {
                        sample: child,
                        tree_index: ti,
                        created: now,
                        lat,
                    }),
                );
            } else {
                self.outbox.push(
                    now,
                    cmd_key(child.subgraph, ti),
                    Msg::Spawn {
                        lane: lane as u32,
                        sample: child,
                        tree_index: ti,
                        path: inherit,
                    },
                );
            }
        }
        self.outcomes.release(oi);
        self.prep_end = self.prep_end.max(now);
    }
}

/// An inbound delivery queued for a lane: `(time_ns, event, path
/// rider)` — the inherited attribution of an `Arrive` or the DRAM
/// round-trip delta of a `Finish`, `None` when latency tracking is off.
type Delivery = (u64, LaneEvent, Option<PathAttr>);

/// State shared between the coordinator (main thread) and the lane
/// workers; every field is either atomic or mutex-guarded, and every
/// value written into it is a pure function of simulated state.
struct Shared {
    epochs: EpochWindow,
    horizon: AtomicU64,
    done: AtomicBool,
    record_hops: AtomicBool,
    prep_end_max: AtomicU64,
    /// Global query-id base of the batch in flight (batches run
    /// sequentially, so a relaxed per-batch store is race-free).
    qid_base: AtomicU64,
    next_times: Vec<AtomicU64>,
    /// Per-lane inbound deliveries, written by the coordinator in
    /// globally sorted order, drained by the lane at the start of its
    /// next round.
    mailboxes: Vec<Mutex<Vec<Delivery>>>,
    /// The round's outbound messages from all lanes, merged and sorted
    /// by the coordinator at the barrier.
    pool: Mutex<MessagePool<Msg>>,
    barrier: Barrier,
}

impl Shared {
    fn new(lanes: usize, parties: usize, epochs: EpochWindow) -> Self {
        Shared {
            epochs,
            horizon: AtomicU64::new(0),
            done: AtomicBool::new(false),
            record_hops: AtomicBool::new(true),
            prep_end_max: AtomicU64::new(0),
            qid_base: AtomicU64::new(0),
            next_times: (0..lanes).map(|_| AtomicU64::new(IDLE)).collect(),
            mailboxes: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
            pool: Mutex::new(MessagePool::new()),
            barrier: Barrier::new(parties),
        }
    }
}

/// Runs one lane's round: drain inbound deliveries, advance to the
/// horizon, publish the lane's next event time and its outbound
/// messages.
fn lane_round(lane: &mut Lane<'_>, shared: &Shared, li: usize) {
    let horizon = SimTime::from_ns(shared.horizon.load(Ordering::Acquire));
    lane.record_hops = shared.record_hops.load(Ordering::Acquire);
    if lane.lat_on {
        lane.lat_qid_base = shared.qid_base.load(Ordering::Acquire) as u32;
    }
    let inbound = std::mem::take(&mut *shared.mailboxes[li].lock().expect("mailbox"));
    for (t, ev, path) in inbound {
        let ev = match (path, ev) {
            // An inbound arrival materializes its inherited path in
            // this lane's arena; a DRAM completion folds the
            // coordinator-side round-trip delta into the parked
            // command's path.
            (Some(p), LaneEvent::Arrive(mut cmd)) => {
                cmd.lat = lane.arena.alloc(p);
                LaneEvent::Arrive(cmd)
            }
            (Some(p), LaneEvent::Finish(slot)) => {
                let h = lane.parked[slot as usize].cmd.lat;
                if h != NO_PATH {
                    lane.arena.get_mut(h).merge(&p);
                }
                LaneEvent::Finish(slot)
            }
            (_, ev) => ev,
        };
        lane.calendar.schedule(SimTime::from_ns(t), ev);
    }
    lane.run_round(horizon);
    shared.next_times[li].store(lane.next_time_ns(), Ordering::Release);
    shared
        .prep_end_max
        .fetch_max(lane.prep_end.as_ns(), Ordering::AcqRel);
    if !lane.outbox.is_empty() {
        shared.pool.lock().expect("pool").absorb(&mut lane.outbox);
    }
}

/// Advances every lane one round. The serial driver owns the lanes and
/// runs them inline; the barrier driver releases persistent workers and
/// waits for them. Both execute the identical protocol on identical
/// shared state, which is what makes `threads(1)` the byte-exact
/// reference for any thread count.
trait RoundDriver {
    fn round(&mut self, shared: &Shared);
}

struct SerialDriver<'l, 'a> {
    lanes: &'l mut [Lane<'a>],
}

impl RoundDriver for SerialDriver<'_, '_> {
    fn round(&mut self, shared: &Shared) {
        for (li, lane) in self.lanes.iter_mut().enumerate() {
            lane_round(lane, shared, li);
        }
    }
}

struct BarrierDriver;

impl RoundDriver for BarrierDriver {
    fn round(&mut self, shared: &Shared) {
        shared.barrier.wait();
        // Workers run their lanes here.
        shared.barrier.wait();
    }
}

/// Coordinator-side state: the shared resources lanes may not touch,
/// plus the batch-pipeline bookkeeping carried over from the serial
/// engine.
struct Coordinator {
    dram: BandwidthResource,
    pcie: BandwidthResource,
    energy: EnergyLedger,
    obs: SpanRecorder,
    prep_total: Duration,
    compute_total: Duration,
    makespan: SimTime,
    targets_total: u64,
    rounds: u64,
    messages: u64,
    lat_on: bool,
    lat_batches: Vec<BatchLat>,
}

impl Coordinator {
    /// Applies one round's messages in globally sorted `(time, key)`
    /// order: DRAM grants are issued in that order, completions and
    /// crossbar forwards are quantized to epoch boundaries and posted
    /// into lane mailboxes. Returns the earliest delivery time, or
    /// [`IDLE`].
    fn process_messages(&mut self, shared: &Shared) -> u64 {
        let mut pool = shared.pool.lock().expect("pool");
        if pool.is_empty() {
            return IDLE;
        }
        let horizon = shared.horizon.load(Ordering::Acquire);
        let lat_on = self.lat_on;
        let mut min_delivery = IDLE;
        let mut deliver = |lane: usize, at: u64, ev: LaneEvent, path: Option<PathAttr>| {
            shared.mailboxes[lane]
                .lock()
                .expect("mailbox")
                .push((at, ev, path));
            min_delivery = min_delivery.min(at);
        };
        for (at, key, msg) in pool.drain_sorted() {
            self.messages += 1;
            match msg {
                Msg::DramReq {
                    lane,
                    parked,
                    bytes,
                } => {
                    let grant = self.dram.transfer(at, bytes);
                    self.energy.dram_bytes += bytes;
                    // A completion may not land in a drained epoch:
                    // post it at the horizon at the earliest.
                    let deliver_at = grant.end.as_ns().max(horizon);
                    let path = lat_on.then(|| {
                        let mut p = PathAttr::default();
                        p.add(Stage::Queue, grant.start.saturating_duration_since(at));
                        p.add(Stage::Dram, grant.end - grant.start);
                        p.add_ns(Stage::Queue, deliver_at - grant.end.as_ns());
                        p
                    });
                    deliver(lane as usize, deliver_at, LaneEvent::Finish(parked), path);
                }
                Msg::Spawn {
                    lane,
                    sample,
                    tree_index,
                    path,
                } => {
                    let arrive = shared.epochs.next_boundary(at);
                    let _ = key;
                    let path = lat_on.then(|| {
                        let mut p = path;
                        p.add(Stage::Queue, arrive - at);
                        p
                    });
                    deliver(
                        lane as usize,
                        arrive.as_ns(),
                        LaneEvent::Arrive(LCmd {
                            sample,
                            tree_index,
                            created: arrive,
                            lat: NO_PATH,
                        }),
                        path,
                    );
                }
            }
        }
        min_delivery
    }
}

/// The partitioned BG-2 engine. Construct like [`Engine`](crate::Engine),
/// pick a worker-thread count, and [`run`](PartitionedEngine::run):
///
/// ```
/// use beacon_graph::{generate, FeatureTable, NodeId};
/// use beacon_gnn::GnnModelConfig;
/// use beacon_platforms::{PartitionedEngine, Platform};
/// use beacon_ssd::SsdConfig;
/// use directgraph::{build::DirectGraphBuilder, AddrLayout};
///
/// let cfg = generate::PowerLawConfig::new(1_000, 20.0);
/// let graph = generate::power_law(&cfg, 1);
/// let feats = FeatureTable::synthetic(1_000, 64, 1);
/// let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
///     .build(&graph, &feats).unwrap();
///
/// let model = GnnModelConfig::paper_default(64);
/// let batch: Vec<NodeId> = (0..8).map(NodeId::new).collect();
/// let serial = PartitionedEngine::new(Platform::Bg2, SsdConfig::paper_default(), model, &dg, 42)
///     .run(&[batch.clone()]);
/// let parallel = PartitionedEngine::new(Platform::Bg2, SsdConfig::paper_default(), model, &dg, 42)
///     .threads(4)
///     .run(&[batch]);
/// assert_eq!(serial.makespan, parallel.makespan);
/// assert_eq!(serial.nodes_visited, parallel.nodes_visited);
/// ```
pub struct PartitionedEngine<'a> {
    platform: Platform,
    ssd: SsdConfig,
    model: GnnModelConfig,
    dg: &'a DirectGraph,
    seed: u64,
    threads: usize,
    trace_capacity: usize,
    obs_capacity: usize,
    lat_epoch: Option<Duration>,
}

impl<'a> PartitionedEngine<'a> {
    /// Creates a partitioned engine (one worker thread — the serial
    /// round protocol — until [`threads`](Self::threads) raises it).
    ///
    /// # Panics
    ///
    /// Panics if the SSD geometry's page size differs from the
    /// DirectGraph layout's (same contract as [`Engine::new`]).
    pub fn new(
        platform: Platform,
        ssd: SsdConfig,
        model: GnnModelConfig,
        dg: &'a DirectGraph,
        seed: u64,
    ) -> Self {
        assert_eq!(
            ssd.geometry.page_size,
            dg.layout().page_size(),
            "SSD geometry and DirectGraph layout disagree on page size"
        );
        PartitionedEngine {
            platform,
            ssd,
            model,
            dg,
            seed,
            threads: 1,
            trace_capacity: 0,
            obs_capacity: 0,
            lat_epoch: None,
        }
    }

    /// Sets the worker-thread count. Output is byte-identical at any
    /// value; values above the channel count are clamped, and below 2
    /// the round protocol runs inline with no threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables event tracing (per lane, merged in channel order).
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables observability spans (per lane, merged in channel order
    /// after the coordinator's batch-phase spans). Unlike the serial
    /// engine, the partitioned path does not wire the functional
    /// router mirror ([`RunMetrics::router`] stays `None`).
    pub fn with_obs(mut self, capacity: usize) -> Self {
        self.obs_capacity = capacity;
        self
    }

    /// Enables per-query latency tracking (see
    /// [`Engine::with_latency`]): critical-path chains are followed
    /// per lane and merged in channel order, so the resulting
    /// [`RunMetrics::latency`] report is byte-identical at any thread
    /// count. `epoch` is the windowed time-series granularity
    /// ([`Duration::ZERO`] for a single window).
    pub fn with_latency(mut self, epoch: Duration) -> Self {
        self.lat_epoch = Some(epoch);
        self
    }

    /// Whether a platform's pipeline is channel-separable: the hardware
    /// router controls the backend, sampling happens on the dies, only
    /// useful bytes cross the channel, and neither the host nor a hop
    /// barrier sits in the command path. Exactly BG-2 in the paper's
    /// lineup; every other platform falls back to the serial engine.
    pub fn partitionable(spec: &PlatformSpec) -> bool {
        spec.channel_separable()
    }

    /// Runs the workload. Non-partitionable platforms run on the serial
    /// [`Engine`](crate::Engine) (identical output to calling it
    /// directly); partitionable ones run the round protocol.
    pub fn run(self, batches: &[Vec<NodeId>]) -> RunMetrics {
        let spec = self.platform.spec();
        if !Self::partitionable(&spec) {
            let mut engine = Engine::new(self.platform, self.ssd, self.model, self.dg, self.seed);
            if self.trace_capacity > 0 {
                engine = engine.with_trace(self.trace_capacity);
            }
            if self.obs_capacity > 0 {
                engine = engine.with_obs(self.obs_capacity);
            }
            if let Some(epoch) = self.lat_epoch {
                engine = engine.with_latency(epoch);
            }
            return engine.run(batches);
        }
        self.run_partitioned(&spec, batches)
    }

    fn run_partitioned(&self, spec: &PlatformSpec, batches: &[Vec<NodeId>]) -> RunMetrics {
        let _run_phase = profile::phase("partition/run");
        let geo = self.ssd.geometry;
        let lanes_n = geo.channels;
        let die_cfg = GnnDieConfig {
            num_hops: self.model.hops,
            fanout: self.model.fanout,
            feature_bytes: self.model.feature_bytes() as u16,
        };
        let hops = self.model.hops as usize + 2;
        let lat_queries = self
            .lat_epoch
            .map(|_| batches.iter().map(Vec::len).sum::<usize>());
        let mut lanes: Vec<Lane<'a>> = (0..lanes_n)
            .map(|c| {
                let mut lane = Lane::new(
                    c,
                    self.ssd,
                    die_cfg,
                    self.dg,
                    self.seed,
                    hops,
                    self.trace_capacity,
                    self.obs_capacity,
                    lat_queries,
                );
                lane.cal_base = lane.calendar.pool_stats();
                lane
            })
            .collect();

        let threads = self.threads.min(lanes_n);
        let workers = if threads >= 2 { threads } else { 0 };
        let shared = Shared::new(
            lanes_n,
            workers + 1,
            EpochWindow::new(self.ssd.router_epoch),
        );
        let mut coord = Coordinator {
            dram: BandwidthResource::new(self.ssd.dram_bandwidth),
            pcie: BandwidthResource::new(self.ssd.pcie_bandwidth),
            energy: EnergyLedger::new(),
            obs: if self.obs_capacity > 0 {
                SpanRecorder::with_capacity(self.obs_capacity)
            } else {
                SpanRecorder::disabled()
            },
            prep_total: Duration::ZERO,
            compute_total: Duration::ZERO,
            makespan: SimTime::ZERO,
            targets_total: 0,
            rounds: 0,
            messages: 0,
            lat_on: self.lat_epoch.is_some(),
            lat_batches: Vec::new(),
        };

        if workers == 0 {
            let mut driver = SerialDriver { lanes: &mut lanes };
            self.run_batches(spec, &shared, &mut coord, &mut driver, batches);
        } else {
            // Round-robin the lanes over persistent workers; the global
            // message sort makes the grouping invisible to results.
            let mut groups: Vec<Vec<(usize, Lane<'a>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (li, lane) in lanes.drain(..).enumerate() {
                groups[li % workers].push((li, lane));
            }
            let shared_ref = &shared;
            std::thread::scope(|s| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|mut group| {
                        s.spawn(move || loop {
                            shared_ref.barrier.wait();
                            if shared_ref.done.load(Ordering::Acquire) {
                                return group;
                            }
                            for (li, lane) in group.iter_mut() {
                                lane_round(lane, shared_ref, *li);
                            }
                            shared_ref.barrier.wait();
                        })
                    })
                    .collect();
                let mut driver = BarrierDriver;
                self.run_batches(spec, &shared, &mut coord, &mut driver, batches);
                shared.done.store(true, Ordering::Release);
                shared.barrier.wait();
                let mut by_channel: Vec<Option<Lane<'a>>> = (0..lanes_n).map(|_| None).collect();
                for handle in handles {
                    for (li, lane) in handle.join().expect("lane worker") {
                        by_channel[li] = Some(lane);
                    }
                }
                lanes = by_channel
                    .into_iter()
                    .map(|l| l.expect("every lane returned"))
                    .collect();
            });
        }

        profile::count("partition/rounds", coord.rounds);
        profile::count("partition/messages", coord.messages);
        profile::count("partition/lanes", lanes_n as u64);
        self.merge(spec, coord, lanes, batches)
    }

    /// The batch pipeline of the serial engine's `run_inner`, with
    /// `run_prep` replaced by the round loop.
    fn run_batches(
        &self,
        spec: &PlatformSpec,
        shared: &Shared,
        coord: &mut Coordinator,
        driver: &mut dyn RoundDriver,
        batches: &[Vec<NodeId>],
    ) {
        let accel = accel_config(spec);
        let mut compute_free = SimTime::ZERO;
        let mut prep_cursor = SimTime::ZERO;
        let mut compute_ends: Vec<SimTime> = Vec::with_capacity(batches.len());
        let mut qid_base = 0u64;

        for (bi, batch) in batches.iter().enumerate() {
            let _prep_phase = profile::phase("partition/prep");
            coord.targets_total += batch.len() as u64;
            shared.record_hops.store(bi == 0, Ordering::Release);
            let buffer_ready = if bi >= 2 {
                compute_ends[bi - 2]
            } else {
                SimTime::ZERO
            };
            let prep_start = prep_cursor.max(buffer_ready);
            // BG-2 is direct-graph: one customized NVMe command carries
            // the whole batch's primary-section addresses.
            let start = prep_start + self.ssd.host.nvme_roundtrip;
            coord.energy.pcie_bytes += batch.len() as u64 * NODE_ID_BYTES;

            let mut pending_min = IDLE;
            {
                shared.qid_base.store(qid_base, Ordering::Release);
                let root_path = coord.lat_on.then(PathAttr::default);
                let channels = self.ssd.geometry.channels;
                for (slot, &target) in batch.iter().enumerate() {
                    let addr = self
                        .dg
                        .directory()
                        .primary_addr(target)
                        .expect("target node in DirectGraph directory");
                    let sample = SampleCommand::root(addr, slot as u32);
                    let (page, _) = self.dg.layout().unpack(sample.target);
                    let lane = self.ssd.geometry.die_of(page).index() % channels;
                    shared.mailboxes[lane].lock().expect("mailbox").push((
                        start.as_ns(),
                        LaneEvent::Arrive(LCmd {
                            sample,
                            tree_index: 0,
                            created: start,
                            lat: NO_PATH,
                        }),
                        root_path,
                    ));
                }
                pending_min = pending_min.min(start.as_ns());
            }

            loop {
                let lanes_min = shared
                    .next_times
                    .iter()
                    .map(|t| t.load(Ordering::Acquire))
                    .min()
                    .unwrap_or(IDLE);
                let min_next = lanes_min.min(pending_min);
                if min_next == IDLE {
                    break;
                }
                let horizon = shared.epochs.horizon_for(SimTime::from_ns(min_next));
                shared.horizon.store(horizon.as_ns(), Ordering::Release);
                driver.round(shared);
                coord.rounds += 1;
                pending_min = coord.process_messages(shared);
            }

            let prep_end = SimTime::from_ns(shared.prep_end_max.load(Ordering::Acquire)).max(start);
            coord.prep_total += prep_end - prep_start;
            prep_cursor = prep_end;
            if coord.obs.is_enabled() {
                coord
                    .obs
                    .record(UnitKind::Engine, 0, "prep", prep_start, prep_end, bi as f64);
            }

            // Computation overlaps the next batch's prep, exactly as in
            // the serial engine (§VI-D double buffering).
            let wl = MinibatchWorkload::new(self.model, batch.len() as u64).with_training(true);
            let compute_start = prep_end.max(compute_free);
            if !self.ssd.dram_bypass {
                let bytes = batch.len() as u64
                    * self.model.subgraph_nodes()
                    * self.model.feature_bytes() as u64;
                coord.energy.dram_bytes += bytes;
            }
            let ct = wl.compute_time(&accel);
            coord.compute_total += ct;
            compute_free = compute_start + ct;
            compute_ends.push(compute_free);
            if coord.obs.is_enabled() {
                coord.obs.record(
                    UnitKind::Accelerator,
                    0,
                    "compute",
                    compute_start,
                    compute_free,
                    bi as f64,
                );
            }
            coord.makespan = coord.makespan.max(compute_free).max(prep_end);
            coord.energy.macs += wl.total_macs();
            coord.energy.reduce_ops += wl.total_reduce_ops();
            if coord.lat_on {
                // Features stage through shared DRAM on BG-2 — no batch
                // PCIe shipment gates compute.
                coord.lat_batches.push(BatchLat {
                    base: qid_base as u32,
                    len: batch.len() as u32,
                    submit: start,
                    prep_gate: prep_end,
                    pcie: None,
                    compute_start,
                    compute_end: compute_free,
                });
            }
            qid_base += batch.len() as u64;
        }
    }

    /// Folds lane-local accumulators (in fixed channel order) and the
    /// coordinator into one [`RunMetrics`].
    fn merge(
        &self,
        spec: &PlatformSpec,
        mut coord: Coordinator,
        lanes: Vec<Lane<'a>>,
        batches: &[Vec<NodeId>],
    ) -> RunMetrics {
        let accel = accel_config(spec);
        let hops = self.model.hops as usize + 2;
        let mut cmd_breakdown = CmdBreakdown::default();
        let mut die_timeline = TimelineBuilder::new();
        let mut channel_timeline = TimelineBuilder::new();
        let mut hop_first: Vec<Option<SimTime>> = vec![None; hops];
        let mut hop_last: Vec<Option<SimTime>> = vec![None; hops];
        let mut pools = PoolCounters::default();
        let mut trace = Trace::with_capacity(self.trace_capacity);
        let mut energy = coord.energy;
        let mut nodes_visited = 0u64;
        let mut flash_reads = 0u64;
        let mut sampler_faults = 0u64;
        let mut sampler_executed = 0u64;
        let mut flash_busy = Duration::ZERO;
        let mut channel_busy = Duration::ZERO;

        for lane in &lanes {
            cmd_breakdown
                .wait_before_flash
                .merge(&lane.cmd_breakdown.wait_before_flash);
            cmd_breakdown.flash.merge(&lane.cmd_breakdown.flash);
            cmd_breakdown
                .wait_after_flash
                .merge(&lane.cmd_breakdown.wait_after_flash);
            die_timeline.absorb(&lane.die_timeline);
            channel_timeline.absorb(&lane.channel_timeline);
            for h in 0..hops {
                hop_first[h] = match (hop_first[h], lane.hop_first[h]) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                hop_last[h] = match (hop_last[h], lane.hop_last[h]) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
            }
            let cal = lane.calendar.pool_stats();
            pools.events_processed += lane.events_processed;
            pools.event_slots_allocated += cal.slots_allocated - lane.cal_base.slots_allocated;
            pools.event_slots_reused += cal.slots_reused - lane.cal_base.slots_reused;
            pools.outcome_slots_allocated += lane.outcomes.allocated;
            pools.outcome_slots_reused += lane.outcomes.reused;
            pools.calendar_wheel_high_water =
                pools.calendar_wheel_high_water.max(cal.wheel_high_water);
            pools.calendar_far_high_water = pools.calendar_far_high_water.max(cal.far_high_water);
            trace.absorb(&lane.trace);
            coord.obs.absorb(&lane.obs);
            energy.flash_page_reads += lane.flash_reads;
            energy.sampler_cmds += lane.flash_reads;
            energy.router_cmds += lane.router_cmds;
            energy.channel_bytes += lane.channel_bytes;
            nodes_visited += lane.nodes_visited;
            flash_reads += lane.flash_reads;
            sampler_faults += lane.sampler_faults;
            sampler_executed += lane.samplers.iter().map(DieSampler::executed).sum::<u64>();
            flash_busy += lane.dies.iter().map(SerialResource::busy_total).sum();
            channel_busy += lane.chan.busy_total();
        }
        profile::count("partition/events_processed", pools.events_processed);

        let stages = StageBreakdown {
            flash_read: flash_busy,
            channel: channel_busy,
            firmware: Duration::ZERO,
            dram: coord.dram.busy_total(),
            pcie: coord.pcie.busy_total(),
            host: Duration::ZERO,
            accel: coord.compute_total,
        };
        let hop_windows = hop_first
            .iter()
            .zip(&hop_last)
            .enumerate()
            .filter_map(|(h, (f, l))| {
                f.zip(*l).map(|(start, end)| HopWindow {
                    hop: h as u8,
                    start,
                    end,
                })
            })
            .collect();
        let accel_occupancy = {
            let cw = coord.compute_total.as_secs_f64();
            let peak_macs =
                cw * accel.systolic.clock_hz() as f64 * accel.systolic.macs_per_cycle() as f64;
            let peak_reduce = cw * accel.vector.clock_hz() as f64 * accel.vector.lanes() as f64;
            AccelOccupancy {
                systolic: if peak_macs > 0.0 {
                    energy.macs as f64 / peak_macs
                } else {
                    0.0
                },
                vector: if peak_reduce > 0.0 {
                    energy.reduce_ops as f64 / peak_reduce
                } else {
                    0.0
                },
            }
        };
        let ftl = if coord.obs.is_enabled() {
            Engine::replay_ftl_setup(self.dg, &self.ssd)
        } else {
            None
        };
        let latency = if let Some(epoch) = self.lat_epoch {
            // Chain tables fold commutatively, but keep the fixed
            // channel order anyway (cheap, and self-evidently stable).
            let mut chains = ChainTable::new(coord.targets_total as usize);
            for lane in &lanes {
                chains.absorb(&lane.chains);
            }
            lat::finalize(epoch, &chains, &coord.lat_batches)
        } else {
            LatencyReport::disabled()
        };

        RunMetrics {
            platform: spec.name,
            targets: coord.targets_total,
            batches: batches.len() as u64,
            nodes_visited,
            flash_reads,
            sampler_faults,
            makespan: coord.makespan - SimTime::ZERO,
            prep_time: coord.prep_total,
            compute_time: coord.compute_total,
            cmd_breakdown,
            stages,
            hop_windows,
            die_timeline,
            channel_timeline,
            energy,
            total_dies: self.ssd.geometry.total_dies(),
            total_channels: self.ssd.geometry.channels,
            trace,
            pools,
            spans: coord.obs,
            sampler_executed,
            router: None,
            ftl,
            accel_occupancy,
            latency,
        }
    }
}

pub(crate) fn accel_config(spec: &PlatformSpec) -> beacon_accel::AcceleratorConfig {
    match spec.compute {
        ComputeLocation::DiscreteAccel => beacon_accel::AcceleratorConfig::discrete_tpu(),
        ComputeLocation::SsdAccel => beacon_accel::AcceleratorConfig::ssd_internal(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_graph::{generate, FeatureTable};
    use directgraph::{build::DirectGraphBuilder, AddrLayout};

    fn make_dg(n: usize, deg: f64, feat: usize) -> DirectGraph {
        let cfg = generate::PowerLawConfig::new(n, deg);
        let graph = generate::power_law(&cfg, 7);
        let features = FeatureTable::synthetic(n, feat, 7);
        DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap()
    }

    fn batches(n: usize, size: usize, nodes: u32) -> Vec<Vec<NodeId>> {
        (0..n)
            .map(|b| {
                (0..size)
                    .map(|i| NodeId::new(((b * size + i) % nodes as usize) as u32))
                    .collect()
            })
            .collect()
    }

    fn digest(m: &RunMetrics) -> String {
        m.metrics_registry().to_json_string()
    }

    #[test]
    fn thread_count_is_invisible() {
        let dg = make_dg(2_000, 25.0, 128);
        let model = GnnModelConfig::paper_default(128);
        let ssd = SsdConfig::paper_default();
        let b = batches(2, 48, 2_000);
        let reference = digest(&PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, 42).run(&b));
        for threads in [2, 4, 8, 32] {
            let m = PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, 42)
                .threads(threads)
                .run(&b);
            assert_eq!(digest(&m), reference, "threads={threads}");
        }
    }

    #[test]
    fn partitioned_tracks_serial_engine_closely() {
        // The partitioned model quantizes cross-channel forwards and
        // DRAM completions to epoch boundaries, so it is not bit-equal
        // to the serial engine — but it must stay a faithful model:
        // identical work counts, and makespan within a few percent.
        let dg = make_dg(3_000, 30.0, 200);
        let model = GnnModelConfig::paper_default(200);
        let ssd = SsdConfig::paper_default();
        let b = batches(2, 64, 3_000);
        let serial = Engine::new(Platform::Bg2, ssd, model, &dg, 42).run(&b);
        let part = PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, 42).run(&b);
        assert_eq!(part.targets, serial.targets);
        assert_eq!(part.flash_reads, serial.flash_reads);
        assert_eq!(part.nodes_visited, serial.nodes_visited);
        assert_eq!(part.energy.channel_bytes, serial.energy.channel_bytes);
        assert_eq!(part.energy.router_cmds, serial.energy.router_cmds);
        let ratio = part.makespan.as_ns() as f64 / serial.makespan.as_ns() as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "partitioned makespan drifted {ratio:.4}x from serial"
        );
    }

    #[test]
    fn non_partitionable_platforms_match_serial_engine_exactly() {
        let dg = make_dg(1_500, 20.0, 64);
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default();
        let b = batches(1, 24, 1_500);
        for p in [Platform::Cc, Platform::Bg1, Platform::BgDgsp] {
            assert!(!PartitionedEngine::partitionable(&p.spec()), "{p}");
            let serial = Engine::new(p, ssd, model, &dg, 7).run(&b);
            let part = PartitionedEngine::new(p, ssd, model, &dg, 7)
                .threads(8)
                .run(&b);
            assert_eq!(digest(&part), digest(&serial), "{p}");
        }
    }

    #[test]
    fn only_bg2_is_partitionable() {
        let partitionable: Vec<Platform> = Platform::ALL
            .into_iter()
            .filter(|p| PartitionedEngine::partitionable(&p.spec()))
            .collect();
        assert_eq!(partitionable, vec![Platform::Bg2]);
    }

    #[test]
    fn single_channel_geometry_still_runs() {
        let dg = make_dg(800, 15.0, 64);
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default().with_channels(1);
        let b = batches(1, 8, 800);
        let a = PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, 3).run(&b);
        let c = PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, 3)
            .threads(4)
            .run(&b);
        assert!(a.makespan > Duration::ZERO);
        assert_eq!(digest(&a), digest(&c));
    }

    #[test]
    fn epoch_window_shifts_timing_but_not_work() {
        let dg = make_dg(1_500, 20.0, 64);
        let model = GnnModelConfig::paper_default(64);
        let b = batches(1, 32, 1_500);
        let fine = PartitionedEngine::new(
            Platform::Bg2,
            SsdConfig::paper_default().with_router_epoch(Duration::from_ns(100)),
            model,
            &dg,
            9,
        )
        .run(&b);
        let coarse = PartitionedEngine::new(
            Platform::Bg2,
            SsdConfig::paper_default().with_router_epoch(Duration::from_us(5)),
            model,
            &dg,
            9,
        )
        .run(&b);
        assert_eq!(fine.flash_reads, coarse.flash_reads);
        assert_eq!(fine.nodes_visited, coarse.nodes_visited);
        // Coarser batching can only delay cross-channel work.
        assert!(coarse.makespan >= fine.makespan);
    }

    #[test]
    fn observed_partitioned_run_matches_unobserved() {
        let dg = make_dg(1_500, 20.0, 64);
        let model = GnnModelConfig::paper_default(64);
        let ssd = SsdConfig::paper_default();
        let b = batches(1, 16, 1_500);
        let plain = PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, 5).run(&b);
        let observed = PartitionedEngine::new(Platform::Bg2, ssd, model, &dg, 5)
            .with_obs(1 << 20)
            .threads(3)
            .run(&b);
        assert_eq!(observed.makespan, plain.makespan);
        assert_eq!(observed.flash_reads, plain.flash_reads);
        assert_eq!(observed.nodes_visited, plain.nodes_visited);
        assert!(plain.spans.is_empty());
        assert!(!observed.spans.is_empty());
        let senses = observed
            .spans
            .iter()
            .filter(|s| s.kind == simkit::UnitKind::Die && s.name == "sense")
            .count() as u64;
        assert_eq!(senses, observed.flash_reads);
        assert!(observed.ftl.is_some());
    }
}
