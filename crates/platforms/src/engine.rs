//! The unified event-driven data-preparation + compute engine.
//!
//! All eight platforms run through this engine; the [`PlatformSpec`]
//! flags select, per pipeline stage, which resources a command touches
//! and at what cost:
//!
//! ```text
//!            ┌ pre-steps ─┐   ┌──── flash ────┐   ┌── post-steps ──┐
//!  Arrive ──▶ host/core/   ──▶ die sense (+on- ──▶ DRAM / core /    ──▶ Done
//!  (lifetime  router issue     die sampling),      PCIe / host /        │
//!   start)    costs            channel transfer    router parse         ▼
//!                                                                children, or
//!                                                                hop barrier
//! ```
//!
//! Every resource (die, channel bus, embedded core, host core, DRAM,
//! PCIe) is a first-come-first-served [`SerialResource`] /
//! [`BandwidthResource`]; each acquisition happens at its own event so
//! FCFS order is respected across the whole pipeline. The functional
//! side — which neighbors get sampled, which secondary pages get read —
//! executes against the real DirectGraph image via the die-sampler
//! model, so timing and semantics stay consistent.

use beacon_energy::EnergyLedger;
use beacon_flash::{DieSampler, GnnDieConfig, SampleCommand, SampleOutcome};
use beacon_gnn::{GnnModelConfig, MinibatchWorkload};
use beacon_graph::NodeId;
use beacon_ssd::{CommandRouter, Ftl, FtlStats, HostAdapter, SsdConfig};
use directgraph::DirectGraph;
use simkit::obs::{SpanRecorder, UnitKind};
use simkit::resource::Grant;
use simkit::{
    profile, BandwidthResource, Calendar, ChainTable, Duration, LatencyReport, PathAttr,
    SerialResource, SimTime, Stage,
};

use crate::lat::{self, BatchLat};
use crate::metrics::{
    AccelOccupancy, CmdBreakdown, HopWindow, PoolCounters, RunMetrics, StageBreakdown,
    TimelineBuilder,
};
use crate::replay::{CascadeRecorder, CascadeRecording};
use crate::spec::{
    BackendControl, ComputeLocation, Platform, PlatformSpec, SamplingLocation, TransferGranularity,
};

/// Fixed on-die time for the sampler logic (section walk, TRNG draws,
/// command generation) on die-sampling platforms.
pub(crate) const ON_DIE_SAMPLE_TIME: Duration = Duration::from_ns(300);
/// Bytes of one node-id record shipped to the host per sampled node on
/// hop-barrier platforms.
pub(crate) const NODE_ID_BYTES: u64 = 8;

/// What a command reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmdKind {
    /// A node visit: the page holding the node's record. In-SSD
    /// platforms read the same physical pages whether or not they use
    /// DirectGraph (node records co-locate the neighbor list and
    /// feature); what DirectGraph changes is the *addressing path* —
    /// matching the paper's observation that BG-DG improves only
    /// marginally over BG-1.
    Visit,
    /// A host-issued feature-table page read (CC/SmartSage, where
    /// feature lookup stays on the host — the traffic GList/BG-1
    /// eliminate by offloading it).
    FeatureRead,
}

/// Sentinel for [`Cmd::rec`]: the command has no cascade record (plain
/// runs, and host-derived feature reads which are re-derived rather
/// than recorded).
const NO_REC: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Cmd {
    sample: SampleCommand,
    kind: CmdKind,
    /// Index of this command's record in the active
    /// [`CascadeRecording`] — assigned at spawn when recording, carried
    /// in from the recording when replaying, [`NO_REC`] otherwise. It
    /// lives on the command (not a slot sidecar) so it survives
    /// hop-barrier buffering, where commands wait without a state slot.
    rec: u32,
}

/// A single post-issue processing step on a named resource.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Embedded-core work.
    Core(Duration),
    /// Host-CPU work.
    Host(Duration),
    /// SSD DRAM transfer.
    Dram(u64),
    /// PCIe transfer.
    Pcie(u64),
    /// Fixed latency with no resource contention (router hop, NVMe
    /// round-trip wire time).
    Fixed(Duration),
}

impl Step {
    /// Packs the step into one word: resource tag in the low three
    /// bits, payload (nanoseconds or byte count) in the upper 61. No
    /// modeled duration or transfer approaches 2^61, so the packing is
    /// lossless; it exists purely to shrink the event structs the
    /// calendar slab and drain loop copy around.
    fn pack(self) -> u64 {
        let (tag, payload) = match self {
            Step::Core(d) => (0, d.as_ns()),
            Step::Host(d) => (1, d.as_ns()),
            Step::Dram(b) => (2, b),
            Step::Pcie(b) => (3, b),
            Step::Fixed(d) => (4, d.as_ns()),
        };
        debug_assert!(payload < (1 << 61), "step payload overflows packing");
        (payload << 3) | tag
    }

    fn unpack(word: u64) -> Step {
        let payload = word >> 3;
        match word & 0b111 {
            0 => Step::Core(Duration::from_ns(payload)),
            1 => Step::Host(Duration::from_ns(payload)),
            2 => Step::Dram(payload),
            3 => Step::Pcie(payload),
            _ => Step::Fixed(Duration::from_ns(payload)),
        }
    }
}

/// A small inline FIFO of pipeline steps.
///
/// No command ever queues more than four steps (see
/// [`Engine::post_steps`]), so the steps live inline in the event
/// instead of a heap-allocated `VecDeque` per command — packed one
/// word per step so the whole queue is 42 bytes instead of 82.
#[derive(Debug, Clone, Copy)]
struct StepQueue {
    steps: [u64; StepQueue::CAP],
    head: u8,
    len: u8,
}

impl StepQueue {
    const CAP: usize = 5;

    fn new() -> Self {
        StepQueue {
            steps: [0; Self::CAP],
            head: 0,
            len: 0,
        }
    }

    /// Appends a step. Steps are only pushed before the first pop, so
    /// `head + len` never wraps.
    fn push_back(&mut self, step: Step) {
        let idx = self.head as usize + self.len as usize;
        assert!(idx < Self::CAP, "step queue overflow");
        self.steps[idx] = step.pack();
        self.len += 1;
    }

    fn pop_front(&mut self) -> Option<Step> {
        if self.len == 0 {
            return None;
        }
        let step = Step::unpack(self.steps[self.head as usize]);
        self.head += 1;
        self.len -= 1;
        Some(step)
    }
}

/// Index of a [`SampleOutcome`] in the engine's outcome pool. Events
/// carry this instead of a `Box<SampleOutcome>` so every event is a
/// small `Copy` value and the per-command heap allocation disappears.
type OutcomeIdx = u32;

// Flat event-kind discriminants. A calendar event is one packed word —
// kind in the low three bits, payload (a `CmdStates` slot index, or the
// hop number for `EV_RELEASE_HOP`) in the upper bits — so the calendar
// slab holds plain `u64`s instead of a 70-byte enum and the drain
// loop's dispatch is a branch-predictable jump on three bits.
/// Command address available at the frontend (lifetime start).
const EV_ARRIVE: u64 = 0;
/// Pre-issue steps remaining before the die request.
const EV_PRE: u64 = 1;
/// Request the target die.
const EV_DIE_REQ: u64 = 2;
/// Request the channel bus after sensing.
const EV_XFER_REQ: u64 = 3;
/// Post-transfer steps remaining before completion.
const EV_POST: u64 = 4;
/// Hop barrier released: buffered commands of this hop may arrive.
const EV_RELEASE_HOP: u64 = 5;

/// Packs an event kind and payload into one calendar word.
#[inline(always)]
fn ev(kind: u64, payload: u32) -> u64 {
    ((payload as u64) << 3) | kind
}

/// Per-command in-flight state, struct-of-arrays.
///
/// Each spawned command holds exactly one slot from `Arrive` until its
/// `Post` chain completes, and has exactly one event in flight at any
/// moment, so the pool's size is bounded by peak command concurrency.
/// Fields that are dead in a given phase are reused rather than
/// duplicated: `tmark` carries the die-grant start between `DieReq` and
/// `XferReq`, then the transfer end between `XferReq` and the final
/// `Post`. The SoA split keeps the hot pops (which touch only `cmd` and
/// one or two sidecar fields per phase) from dragging the whole
/// 100-byte AoS record through the cache.
#[derive(Debug, Default)]
struct CmdStates {
    cmd: Vec<Cmd>,
    /// Arrival time (lifetime start) for wait-phase accounting.
    created: Vec<SimTime>,
    /// Phase-dependent timestamp: die-grant start, then transfer end.
    tmark: Vec<SimTime>,
    /// Channel-queue wait incurred at the transfer stage.
    chan_wait: Vec<Duration>,
    /// Outcome-pool slot held from `DieReq` to the final `Post`.
    oi: Vec<OutcomeIdx>,
    /// Target die index (striping math runs once per command).
    die: Vec<u32>,
    /// Remaining pre/post pipeline steps.
    steps: Vec<StepQueue>,
    free: Vec<u32>,
}

impl CmdStates {
    fn acquire(&mut self, cmd: Cmd) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.cmd[i as usize] = cmd;
                i
            }
            None => {
                let i = u32::try_from(self.cmd.len()).expect("command state pool overflow");
                self.cmd.push(cmd);
                self.created.push(SimTime::ZERO);
                self.tmark.push(SimTime::ZERO);
                self.chan_wait.push(Duration::ZERO);
                self.oi.push(0);
                self.die.push(0);
                self.steps.push(StepQueue::new());
                i
            }
        }
    }

    fn release(&mut self, i: u32) {
        self.free.push(i);
    }
}

/// Memoized flash service times for the sense/transfer hot path.
///
/// Die service is one constant per run (read latency plus the on-die
/// sampling time where applicable). Channel service depends only on the
/// transferred byte count, which is bounded by the page size for every
/// modeled transfer, so a flat table keyed by `bytes` replaces the
/// per-event `command_overhead + transfer_time(bytes)` division chain.
#[derive(Debug)]
pub(crate) struct FlashServiceMemo {
    /// `read_latency` (+ `ON_DIE_SAMPLE_TIME` on die-sampling specs).
    pub(crate) die_service: Duration,
    /// `command_overhead + transfer_time(bytes)` for `0..=page_size`.
    services: Vec<Duration>,
    timing: beacon_flash::FlashTiming,
}

impl FlashServiceMemo {
    pub(crate) fn new(
        timing: beacon_flash::FlashTiming,
        on_die: Duration,
        page_size: usize,
    ) -> Self {
        let services = (0..=page_size as u64)
            .map(|b| timing.command_overhead + timing.transfer_time(b))
            .collect();
        FlashServiceMemo {
            die_service: timing.read_latency + on_die,
            services,
            timing,
        }
    }

    #[inline(always)]
    pub(crate) fn xfer_service(&self, bytes: u64) -> Duration {
        match self.services.get(bytes as usize) {
            Some(&d) => d,
            None => self.timing.command_overhead + self.timing.transfer_time(bytes),
        }
    }
}

/// Slab of [`SampleOutcome`]s with a free list.
///
/// Each flash command holds one outcome from `DieReq` until its `Post`
/// chain completes; releasing clears the outcome but keeps its
/// `new_commands` allocation, so in steady state the sampler writes
/// into recycled vectors and the hot path never touches the allocator.
#[derive(Debug, Default)]
pub(crate) struct OutcomePool {
    pub(crate) slots: Vec<SampleOutcome>,
    free: Vec<OutcomeIdx>,
    pub(crate) allocated: u64,
    pub(crate) reused: u64,
    in_use: u64,
    pub(crate) in_use_high_water: u64,
}

impl OutcomePool {
    pub(crate) fn acquire(&mut self) -> OutcomeIdx {
        let idx = match self.free.pop() {
            Some(i) => {
                self.reused += 1;
                i
            }
            None => {
                let i = OutcomeIdx::try_from(self.slots.len()).expect("outcome pool overflow");
                self.slots.push(SampleOutcome {
                    visited: None,
                    feature_bytes: 0,
                    new_commands: Vec::new(),
                });
                self.allocated += 1;
                i
            }
        };
        self.in_use += 1;
        self.in_use_high_water = self.in_use_high_water.max(self.in_use);
        idx
    }

    pub(crate) fn release(&mut self, idx: OutcomeIdx) {
        let o = &mut self.slots[idx as usize];
        o.visited = None;
        o.feature_bytes = 0;
        o.new_commands.clear();
        self.free.push(idx);
        self.in_use -= 1;
    }

    pub(crate) fn get(&self, idx: OutcomeIdx) -> &SampleOutcome {
        &self.slots[idx as usize]
    }

    fn reset_stats(&mut self) {
        self.allocated = 0;
        self.reused = 0;
        self.in_use_high_water = self.in_use;
    }
}

/// Reusable per-worker simulation buffers: the event calendar (with its
/// slab pool), the sample-outcome pool, and the hop-release scratch.
///
/// One scratch serves any number of sequential [`Engine::run_with`]
/// calls; after the first run its pools are warm and subsequent runs
/// allocate nothing in the event loop. Sharing a scratch never changes
/// results — a run with a reused scratch is bit-identical to one with a
/// fresh scratch (the calendar is reset between runs).
#[derive(Debug, Default)]
pub struct EngineScratch {
    calendar: Calendar<u64>,
    outcomes: OutcomePool,
    states: CmdStates,
    release_buf: Vec<Cmd>,
    span_stage: Vec<simkit::obs::Span>,
}

impl EngineScratch {
    /// Creates an empty scratch; pools grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One platform simulation over a prepared DirectGraph image.
pub struct Engine<'a> {
    spec: PlatformSpec,
    ssd: SsdConfig,
    model: GnnModelConfig,
    dg: &'a DirectGraph,

    dies: Vec<SerialResource>,
    channels: Vec<SerialResource>,
    cores: Vec<SerialResource>,
    host_cores: Vec<SerialResource>,
    dram: BandwidthResource,
    pcie: BandwidthResource,
    samplers: Vec<DieSampler>,

    calendar: Calendar<u64>,
    outcomes: OutcomePool,
    states: CmdStates,
    release_buf: Vec<Cmd>,
    /// Staging buffer for hot-loop observability spans, flushed once
    /// per batch via [`SpanRecorder::record_batch`].
    span_stage: Vec<simkit::obs::Span>,
    /// Memoized flash service times (die sense + channel transfer).
    memo: FlashServiceMemo,
    /// Calendar pool stats at run start (the calendar may arrive warm
    /// from a shared scratch), so per-run deltas are reportable.
    cal_base: simkit::PoolStats,
    events_processed: u64,

    // Per-batch state.
    outstanding: u64,
    hop_outstanding: Vec<u64>,
    hop_buffers: Vec<Vec<Cmd>>,
    hop_released: Vec<bool>,
    prep_end: SimTime,

    // Metrics.
    cmd_breakdown: CmdBreakdown,
    die_timeline: TimelineBuilder,
    channel_timeline: TimelineBuilder,
    hop_first: Vec<Option<SimTime>>,
    hop_last: Vec<Option<SimTime>>,
    record_hops: bool,
    energy: EnergyLedger,
    nodes_visited: u64,
    flash_reads: u64,
    sampler_faults: u64,
    channel_bytes_accum: u64,
    /// First page index of the conventional feature-table region (used
    /// only by host-feature-lookup platforms).
    feature_page_base: u64,
    trace: simkit::Trace,
    /// Observability spans (disabled by default; one branch per site).
    obs: SpanRecorder,
    /// Functional command-router mirror, instantiated only on
    /// hardware-router platforms with observability enabled. Commands
    /// are routed at spawn and popped at their die grant — pure
    /// bookkeeping that feeds `RouterStats`; the timing model is
    /// untouched.
    router: Option<CommandRouter>,
    /// Cascade recorder, installed only by [`Engine::record_cascade`].
    /// Plain runs never touch it (one `is_some` branch per site), so
    /// recording cannot perturb ordinary timing or digests.
    cascade: Option<CascadeRecorder>,
    /// Recording being replayed, installed only by
    /// [`Engine::replay_with`]. When set, `on_die_req` copies each
    /// `Visit` command's outcome from its record instead of running the
    /// die sampler; everything else — resources, queueing, steps —
    /// executes verbatim, so replayed metrics are byte-identical to a
    /// full run's.
    replay: Option<&'a CascadeRecording>,
    /// Visit commands served from the replay recording (mirrors the
    /// samplers' `executed` counters, faults included).
    replay_executed: u64,

    // Per-query latency tracking (off by default; every site is behind
    // one `lat_on` branch, like the span recorder's `is_enabled`).
    lat_on: bool,
    /// Windowed time-series epoch width (zero disables windows).
    lat_epoch: Duration,
    /// Per-slot critical-path attribution, parallel to `states`.
    lat_paths: Vec<PathAttr>,
    /// Attribution of hop-barrier-buffered commands (spawn time +
    /// inherited path), parallel to `hop_buffers` — buffered commands
    /// hold no state slot, so the path cannot ride in `lat_paths`.
    lat_hop_bufs: Vec<Vec<(SimTime, PathAttr)>>,
    /// Path staged for inheritance by commands spawned from the command
    /// currently retiring (children and host feature reads).
    lat_inherit: PathAttr,
    /// Per-query best-chain reduction, keyed by global query id.
    lat_chains: ChainTable,
    /// Global query-id base of the batch currently in preparation.
    lat_qid_base: u32,
    /// Submission time of the batch currently in preparation.
    lat_submit: SimTime,
    /// Per-batch compute-tail context for `lat::finalize`.
    lat_batches: Vec<BatchLat>,
}

impl<'a> Engine<'a> {
    /// Creates an engine for one platform over a DirectGraph image.
    ///
    /// # Panics
    ///
    /// Panics if the SSD geometry's page size differs from the
    /// DirectGraph layout's.
    pub fn new(
        platform: Platform,
        ssd: SsdConfig,
        model: GnnModelConfig,
        dg: &'a DirectGraph,
        seed: u64,
    ) -> Self {
        assert_eq!(
            ssd.geometry.page_size,
            dg.layout().page_size(),
            "SSD geometry and DirectGraph layout disagree on page size"
        );
        let spec = platform.spec();
        let geo = &ssd.geometry;
        let die_cfg = GnnDieConfig {
            num_hops: model.hops,
            fanout: model.fanout,
            feature_bytes: model.feature_bytes() as u16,
        };
        let samplers = (0..geo.total_dies())
            .map(|_| DieSampler::new(die_cfg, seed))
            .collect();
        let hops = model.hops as usize + 2;
        let on_die = match spec.sampling {
            SamplingLocation::Die => ON_DIE_SAMPLE_TIME,
            _ => Duration::ZERO,
        };
        let memo = FlashServiceMemo::new(ssd.timing, on_die, geo.page_size);
        Engine {
            spec,
            model,
            dg,
            dies: vec![SerialResource::new(); geo.total_dies()],
            channels: vec![SerialResource::new(); geo.channels],
            cores: vec![SerialResource::new(); ssd.cores],
            host_cores: vec![SerialResource::new(); ssd.host.cores],
            dram: BandwidthResource::new(ssd.dram_bandwidth),
            pcie: BandwidthResource::new(ssd.pcie_bandwidth),
            samplers,
            calendar: Calendar::new(),
            outcomes: OutcomePool::default(),
            states: CmdStates::default(),
            release_buf: Vec::new(),
            span_stage: Vec::new(),
            memo,
            cal_base: simkit::PoolStats::default(),
            events_processed: 0,
            outstanding: 0,
            hop_outstanding: vec![0; hops],
            hop_buffers: vec![Vec::new(); hops],
            hop_released: vec![false; hops],
            prep_end: SimTime::ZERO,
            cmd_breakdown: CmdBreakdown::default(),
            die_timeline: TimelineBuilder::new(),
            channel_timeline: TimelineBuilder::new(),
            hop_first: vec![None; hops],
            hop_last: vec![None; hops],
            record_hops: true,
            energy: EnergyLedger::new(),
            nodes_visited: 0,
            flash_reads: 0,
            sampler_faults: 0,
            channel_bytes_accum: 0,
            feature_page_base: dg.image().pages_written() as u64 + 64,
            trace: simkit::Trace::with_capacity(0),
            obs: SpanRecorder::disabled(),
            router: None,
            cascade: None,
            replay: None,
            replay_executed: 0,
            lat_on: false,
            lat_epoch: Duration::ZERO,
            lat_paths: Vec::new(),
            lat_hop_bufs: vec![Vec::new(); hops],
            lat_inherit: PathAttr::default(),
            lat_chains: ChainTable::default(),
            lat_qid_base: 0,
            lat_submit: SimTime::ZERO,
            lat_batches: Vec::new(),
            ssd,
        }
    }

    /// Enables per-query latency tracking: end-to-end latency and
    /// critical-path stage attribution for every target node, reported
    /// through [`RunMetrics::latency`]. `epoch` is the windowed
    /// time-series bucket width ([`Duration::ZERO`] disables windows).
    ///
    /// Tracking is pure bookkeeping on the side of the event loop —
    /// simulated timing, metrics and digests are identical with it on
    /// or off, and a replayed run produces a byte-identical report.
    pub fn with_latency(mut self, epoch: Duration) -> Self {
        self.lat_on = true;
        self.lat_epoch = epoch;
        self
    }

    /// Enables event tracing bounded to `capacity` events. The trace
    /// records die senses, channel transfers and command completions
    /// and is returned in [`RunMetrics::trace`] (export with
    /// [`simkit::Trace::to_csv`]).
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace = simkit::Trace::with_capacity(capacity);
        self
    }

    /// Enables the observability layer, retaining up to `capacity`
    /// spans (die senses, channel transfers, batch phases, compute
    /// windows, command completions — export with
    /// [`simkit::ChromeTraceWriter`]).
    ///
    /// Enabling observability also activates the side collectors that
    /// are too costly (or pointless) on plain runs: the functional
    /// command-router mirror on hardware-router platforms (feeding
    /// [`RunMetrics::router`]) and the FTL setup replay (feeding
    /// [`RunMetrics::ftl`]). None of them perturb simulated timing —
    /// an observed run's `RunMetrics` core figures are identical to an
    /// unobserved run's.
    pub fn with_obs(mut self, capacity: usize) -> Self {
        self.obs = SpanRecorder::with_capacity(capacity);
        if capacity > 0 && self.spec.backend_control == BackendControl::HardwareRouter {
            self.router = Some(CommandRouter::new(&self.ssd.geometry, self.dg.layout()));
        }
        self
    }

    /// Conventional feature-table page of `node`: vectors pack
    /// sequentially after the graph region, striping across dies like
    /// any other page.
    fn feature_page_of(&self, node: u32) -> u64 {
        let per_page =
            (self.ssd.geometry.page_size / self.model.feature_bytes().max(1)).max(1) as u64;
        self.feature_page_base + node as u64 / per_page
    }

    fn spawn_feature_read(&mut self, node: NodeId, hop: u8, subgraph: u32, at: SimTime) {
        let page = directgraph::PageIndex::new(self.feature_page_of(node.as_u32()));
        let addr = self.dg.layout().pack(page, 0);
        let cmd = Cmd {
            sample: SampleCommand {
                target: addr,
                hop,
                count: 0,
                subgraph,
                parent: node.as_u32(),
            },
            kind: CmdKind::FeatureRead,
            rec: NO_REC,
        };
        self.spawn(cmd, at, None);
    }

    /// Runs the full workload: `batches` mini-batches of targets, with
    /// data preparation of batch *i+1* pipelined against computation of
    /// batch *i* (§VI-D).
    pub fn run(self, batches: &[Vec<NodeId>]) -> RunMetrics {
        let mut scratch = EngineScratch::new();
        self.run_with(&mut scratch, batches)
    }

    /// Like [`Engine::run`], but borrows its calendar, drain buffer and
    /// outcome pool from `scratch` so consecutive runs on one worker
    /// reuse warm allocations. Results are identical to [`Engine::run`].
    pub fn run_with(mut self, scratch: &mut EngineScratch, batches: &[Vec<NodeId>]) -> RunMetrics {
        self.run_scoped(scratch, batches)
    }

    /// Like [`Engine::run_with`], but also records the functional
    /// sampling cascade — every flash command with its content, die,
    /// transfer bytes, visited node and children — as a
    /// [`CascadeRecording`] reusable by [`Engine::replay_with`] on any
    /// platform/`SsdConfig` and by the array replay
    /// (`crate::array::ArrayEngine`). Timing and metrics are identical
    /// to an unrecorded run.
    ///
    /// # Panics
    ///
    /// Panics unless the spec is channel-separable
    /// ([`PlatformSpec::channel_separable`]): hop barriers and
    /// host-issued feature reads spawn commands outside the cascade's
    /// parent/child structure.
    pub fn record_cascade(
        mut self,
        scratch: &mut EngineScratch,
        batches: &[Vec<NodeId>],
    ) -> (RunMetrics, CascadeRecording) {
        assert!(
            self.spec.channel_separable(),
            "cascade recording requires a channel-separable spec"
        );
        self.cascade = Some(CascadeRecorder::default());
        let metrics = self.run_scoped(scratch, batches);
        let rec = self.cascade.take().expect("recorder installed above");
        (metrics, rec.finish())
    }

    /// Re-times a recorded cascade under *this* engine's platform and
    /// `SsdConfig` without re-running the die samplers: each `Visit`
    /// command's functional outcome (visited node, feature bytes,
    /// children) is copied from its record while every resource
    /// acquisition, queueing decision and pipeline step executes
    /// exactly as in a full run. Because sampler draws are keyed on
    /// command content (see `beacon_flash::draw_stream_seed`), the
    /// recording is valid for any timing configuration over the same
    /// (DirectGraph, batches, model, seed) — and the returned metrics
    /// are byte-identical to what [`Engine::run_with`] would produce.
    ///
    /// # Panics
    ///
    /// Panics if `recording`'s shape does not match `batches` (batch
    /// count, per-batch root counts, root slots), or — during the
    /// replay itself — if a root record's target disagrees with the
    /// live DirectGraph directory (a recording from a different
    /// workload).
    pub fn replay_with(
        mut self,
        scratch: &mut EngineScratch,
        recording: &'a CascadeRecording,
        batches: &[Vec<NodeId>],
    ) -> RunMetrics {
        assert!(
            recording.matches_batches(batches),
            "cascade recording does not match the batches being replayed"
        );
        self.replay = Some(recording);
        self.run_scoped(scratch, batches)
    }

    fn run_scoped(&mut self, scratch: &mut EngineScratch, batches: &[Vec<NodeId>]) -> RunMetrics {
        scratch.calendar.reset();
        scratch.release_buf.clear();
        scratch.span_stage.clear();
        scratch.outcomes.reset_stats();
        std::mem::swap(&mut self.calendar, &mut scratch.calendar);
        std::mem::swap(&mut self.outcomes, &mut scratch.outcomes);
        std::mem::swap(&mut self.states, &mut scratch.states);
        std::mem::swap(&mut self.release_buf, &mut scratch.release_buf);
        std::mem::swap(&mut self.span_stage, &mut scratch.span_stage);
        self.cal_base = self.calendar.pool_stats();
        let metrics = self.run_inner(batches);
        std::mem::swap(&mut self.calendar, &mut scratch.calendar);
        std::mem::swap(&mut self.outcomes, &mut scratch.outcomes);
        std::mem::swap(&mut self.states, &mut scratch.states);
        std::mem::swap(&mut self.release_buf, &mut scratch.release_buf);
        std::mem::swap(&mut self.span_stage, &mut scratch.span_stage);
        metrics
    }

    fn run_inner(&mut self, batches: &[Vec<NodeId>]) -> RunMetrics {
        let _run_phase = profile::phase("engine/run");
        let workload = MinibatchWorkload::new(self.model, 0);
        let _ = workload; // per-batch workloads built below (sizes vary)
        let accel = match self.spec.compute {
            ComputeLocation::DiscreteAccel => beacon_accel::AcceleratorConfig::discrete_tpu(),
            ComputeLocation::SsdAccel => beacon_accel::AcceleratorConfig::ssd_internal(),
        };

        let mut prep_total = Duration::ZERO;
        let mut compute_total = Duration::ZERO;
        let mut compute_free = SimTime::ZERO;
        let mut makespan = SimTime::ZERO;
        let mut targets_total = 0u64;
        let mut prep_cursor = SimTime::ZERO;
        let mut compute_ends: Vec<SimTime> = Vec::with_capacity(batches.len());

        if self.lat_on {
            let total: usize = batches.iter().map(Vec::len).sum();
            self.lat_chains.reset(total);
            self.lat_batches.clear();
            self.lat_qid_base = 0;
        }

        for (bi, batch) in batches.iter().enumerate() {
            targets_total += batch.len() as u64;
            self.record_hops = bi == 0;
            // §VI-D double buffering (see beacon_ssd::gnn_engine): the
            // DRAM region has two halves, so batch i's preparation can
            // only start once batch i-2's computation released its half.
            let buffer_ready = if bi >= 2 {
                compute_ends[bi - 2]
            } else {
                SimTime::ZERO
            };
            let prep_start = prep_cursor.max(buffer_ready);
            let prep_end = self.run_prep(bi, batch, prep_start);
            prep_total += prep_end - prep_start;
            prep_cursor = prep_end;
            if self.obs.is_enabled() {
                self.obs
                    .record(UnitKind::Engine, 0, "prep", prep_start, prep_end, bi as f64);
            }

            // Computation of this batch overlaps the next batch's prep.
            // The paper's experiments run GNN *training*, so the
            // workload includes the backward pass.
            let wl = MinibatchWorkload::new(self.model, batch.len() as u64).with_training(true);
            let mut compute_start = prep_end.max(compute_free);
            let mut lat_pcie = None;
            if self.spec.features_cross_pcie {
                // Ship the batch's features + subgraph metadata to the
                // discrete accelerator.
                let bytes = batch.len() as u64
                    * self.model.subgraph_nodes()
                    * (self.model.feature_bytes() as u64 + NODE_ID_BYTES);
                let grant = self.pcie.transfer(compute_start, bytes);
                lat_pcie = Some((grant.start, grant.end));
                self.energy.pcie_bytes += bytes;
                if self.obs.is_enabled() {
                    self.obs.record(
                        UnitKind::Pcie,
                        0,
                        "batch_features",
                        grant.start,
                        grant.end,
                        bytes as f64,
                    );
                }
                compute_start = grant.end;
            } else if !self.ssd.dram_bypass {
                // SSD accelerator streams features from internal DRAM
                // (unless direct flash→SRAM I/O is enabled, §VIII).
                let bytes = batch.len() as u64
                    * self.model.subgraph_nodes()
                    * self.model.feature_bytes() as u64;
                self.energy.dram_bytes += bytes;
            }
            let ct = wl.compute_time(&accel);
            compute_total += ct;
            compute_free = compute_start + ct;
            compute_ends.push(compute_free);
            if self.obs.is_enabled() {
                self.obs.record(
                    UnitKind::Accelerator,
                    0,
                    "compute",
                    compute_start,
                    compute_free,
                    bi as f64,
                );
            }
            makespan = makespan.max(compute_free).max(prep_end);
            self.energy.macs += wl.total_macs();
            self.energy.reduce_ops += wl.total_reduce_ops();
            if self.lat_on {
                self.lat_batches.push(BatchLat {
                    base: self.lat_qid_base,
                    len: batch.len() as u32,
                    submit: self.lat_submit,
                    prep_gate: prep_end,
                    pcie: lat_pcie,
                    compute_start,
                    compute_end: compute_free,
                });
                self.lat_qid_base += batch.len() as u32;
            }
        }

        // Energy from resource busy totals.
        self.energy.core_busy = self
            .cores
            .iter()
            .map(SerialResource::busy_total)
            .sum::<Duration>();
        self.energy.host_cpu_busy = self
            .host_cores
            .iter()
            .map(SerialResource::busy_total)
            .sum::<Duration>();
        self.energy.channel_bytes = self.channel_bytes_accum;

        let stages = StageBreakdown {
            flash_read: self.dies.iter().map(SerialResource::busy_total).sum(),
            channel: self.channels.iter().map(SerialResource::busy_total).sum(),
            firmware: self.cores.iter().map(SerialResource::busy_total).sum(),
            dram: self.dram.busy_total(),
            pcie: self.pcie.busy_total(),
            host: self.host_cores.iter().map(SerialResource::busy_total).sum(),
            accel: compute_total,
        };

        let hop_windows = self
            .hop_first
            .iter()
            .zip(&self.hop_last)
            .enumerate()
            .filter_map(|(h, (f, l))| {
                f.zip(*l).map(|(start, end)| HopWindow {
                    hop: h as u8,
                    start,
                    end,
                })
            })
            .collect();

        let cal_stats = self.calendar.pool_stats();
        // Registry pool counters are *cold-equivalent*: allocated = the
        // run's peak slots in use (what a fresh slab would have grown
        // to), reused = schedules served within that peak. Unlike raw
        // slab growth they do not depend on how warm the scratch
        // happened to be, so they are byte-identical across schedules
        // and worker counts. Actual warm-scratch growth stays visible
        // through the `engine/*` profile counters below.
        let event_schedules = (cal_stats.slots_allocated - self.cal_base.slots_allocated)
            + (cal_stats.slots_reused - self.cal_base.slots_reused);
        let outcome_acquires = self.outcomes.allocated + self.outcomes.reused;
        let pools = PoolCounters {
            events_processed: self.events_processed,
            event_slots_allocated: cal_stats.live_high_water,
            event_slots_reused: event_schedules - cal_stats.live_high_water,
            outcome_slots_allocated: self.outcomes.in_use_high_water,
            outcome_slots_reused: outcome_acquires - self.outcomes.in_use_high_water,
            calendar_wheel_high_water: cal_stats.wheel_high_water,
            calendar_far_high_water: cal_stats.far_high_water,
        };
        profile::count("engine/events_processed", pools.events_processed);
        profile::count(
            "engine/event_slots_allocated",
            cal_stats.slots_allocated - self.cal_base.slots_allocated,
        );
        profile::count(
            "engine/event_slots_reused",
            cal_stats.slots_reused - self.cal_base.slots_reused,
        );
        profile::count("engine/outcome_slots_reused", self.outcomes.reused);
        // The calendar's live high-water equals the peak the old
        // per-pop `len()` sampling reported: live count only falls at
        // pops, and the drain always pops after the last schedule.
        profile::count("engine/calendar_peak_depth", cal_stats.live_high_water);
        profile::count(
            "engine/calendar_wheel_high_water",
            cal_stats.wheel_high_water,
        );
        profile::count("engine/calendar_far_high_water", cal_stats.far_high_water);

        // Sustained occupancy: delivered MACs / reduce ops against each
        // array's peak over the whole compute window.
        let accel_occupancy = {
            let cw = compute_total.as_secs_f64();
            let peak_macs =
                cw * accel.systolic.clock_hz() as f64 * accel.systolic.macs_per_cycle() as f64;
            let peak_reduce = cw * accel.vector.clock_hz() as f64 * accel.vector.lanes() as f64;
            AccelOccupancy {
                systolic: if peak_macs > 0.0 {
                    self.energy.macs as f64 / peak_macs
                } else {
                    0.0
                },
                vector: if peak_reduce > 0.0 {
                    self.energy.reduce_ops as f64 / peak_reduce
                } else {
                    0.0
                },
            }
        };
        // FTL statistics come from replaying the DirectGraph setup
        // flush — observability runs only (the plain path never builds
        // an FTL).
        let ftl = if self.obs.is_enabled() {
            Self::replay_ftl_setup(self.dg, &self.ssd)
        } else {
            None
        };
        let latency = if self.lat_on {
            lat::finalize(self.lat_epoch, &self.lat_chains, &self.lat_batches)
        } else {
            LatencyReport::disabled()
        };

        RunMetrics {
            platform: self.spec.name,
            targets: targets_total,
            batches: batches.len() as u64,
            nodes_visited: self.nodes_visited,
            flash_reads: self.flash_reads,
            sampler_faults: self.sampler_faults,
            makespan: makespan - SimTime::ZERO,
            prep_time: prep_total,
            compute_time: compute_total,
            cmd_breakdown: std::mem::take(&mut self.cmd_breakdown),
            stages,
            hop_windows,
            die_timeline: std::mem::replace(&mut self.die_timeline, TimelineBuilder::new()),
            channel_timeline: std::mem::replace(&mut self.channel_timeline, TimelineBuilder::new()),
            energy: std::mem::replace(&mut self.energy, EnergyLedger::new()),
            total_dies: self.ssd.geometry.total_dies(),
            total_channels: self.ssd.geometry.channels,
            trace: std::mem::replace(&mut self.trace, simkit::Trace::with_capacity(0)),
            pools,
            spans: std::mem::replace(&mut self.obs, SpanRecorder::disabled()),
            sampler_executed: self.samplers.iter().map(DieSampler::executed).sum::<u64>()
                + self.replay_executed,
            router: self.router.as_ref().map(CommandRouter::stats),
            ftl,
            accel_occupancy,
            latency,
        }
    }

    /// Replays the §VI-A DirectGraph flush through a functional FTL to
    /// recover host-write / GC / erase statistics. The FTL is built over
    /// a capacity-shrunken copy of the run geometry (same channel/die
    /// shape and page size, just enough blocks for the image plus
    /// headroom) so the replay stays cheap at any configured capacity;
    /// the statistics only depend on image size and block geometry.
    pub(crate) fn replay_ftl_setup(dg: &DirectGraph, ssd: &SsdConfig) -> Option<FtlStats> {
        let mut geo = ssd.geometry;
        let pages = dg.image().pages_written();
        let blocks_needed = pages.div_ceil(geo.pages_per_block).max(1);
        let planes = geo.total_dies() * geo.planes_per_die;
        geo.blocks_per_plane = (2 * blocks_needed + 16).div_ceil(planes).max(1);
        let ftl = Ftl::new(&geo, 0.07);
        let mut host = HostAdapter::new(ftl, geo.pages_per_block);
        host.setup_directgraph(dg).ok()?;
        Some(host.ftl().stats())
    }

    /// Simulates batch `bi`'s data preparation starting at `t0`;
    /// returns the completion time.
    fn run_prep(&mut self, bi: usize, batch: &[NodeId], t0: SimTime) -> SimTime {
        let _prep_phase = profile::phase("engine/prep");
        if let Some(c) = self.cascade.as_mut() {
            c.start_batch();
        }
        for s in &mut self.hop_outstanding {
            *s = 0;
        }
        for b in &mut self.hop_buffers {
            b.clear();
        }
        for r in &mut self.hop_released {
            *r = false;
        }
        self.hop_released[0] = true;
        self.outstanding = 0;
        self.prep_end = t0;

        // Mini-batch start: host ships target addresses (one customized
        // NVMe command for the whole batch).
        let host_setup = if self.spec.direct_graph {
            // Targets carry primary-section addresses directly.
            self.ssd.host.nvme_roundtrip
        } else {
            // Host translates each target through its metadata + FS.
            self.ssd.host.nvme_roundtrip + self.ssd.host.translate_per_node * batch.len() as u64
        };
        let start = t0 + host_setup;
        self.energy.pcie_bytes += batch.len() as u64 * NODE_ID_BYTES;
        if self.lat_on {
            // Roots start with an empty path; the chain clock starts at
            // `start` (the host handed the batch to the device).
            self.lat_inherit = PathAttr::default();
            self.lat_submit = start;
        }

        // Each visit expands to a handful of pipeline events; reserving
        // for the batch's full sampled subgraph up front keeps the
        // calendar heap from reallocating mid-drain.
        self.calendar.reserve(
            batch
                .len()
                .saturating_mul(self.model.subgraph_nodes() as usize),
        );
        let root_base = self.replay.map(|r| r.batch_roots[bi]);
        for (slot, &target) in batch.iter().enumerate() {
            let addr = self
                .dg
                .directory()
                .primary_addr(target)
                .expect("target node in DirectGraph directory");
            let root = SampleCommand::root(addr, slot as u32);
            let rec = match root_base {
                Some(base) => {
                    let rid = base + slot as u32;
                    // A recording keyed to a *different* workload would
                    // silently replay the wrong cascade; the root
                    // targets pin it to this DirectGraph image.
                    assert_eq!(
                        self.replay.expect("replay active").command(rid).target,
                        addr,
                        "cascade recording disagrees with the DirectGraph directory"
                    );
                    rid
                }
                None => NO_REC,
            };
            self.spawn(
                Cmd {
                    sample: root,
                    kind: CmdKind::Visit,
                    rec,
                },
                start,
                None,
            );
        }
        self.drain();
        // Flush the spans the handlers staged during the drain, in
        // exactly the order they were staged — identical sequence
        // numbering to per-call recording, one push loop per batch.
        self.obs.record_batch(&mut self.span_stage);
        self.prep_end
    }

    /// Registers a command as outstanding and schedules (or buffers) its
    /// arrival. `src_channel` is the channel the command was generated
    /// on (None for host-injected roots) — it only feeds the
    /// observability router mirror's cross-channel statistic.
    fn spawn(&mut self, mut cmd: Cmd, at: SimTime, src_channel: Option<usize>) {
        if let Some(router) = self.router.as_mut() {
            router.route_from(cmd.sample, src_channel);
        }
        let hop = cmd.sample.hop as usize;
        self.outstanding += 1;
        self.hop_outstanding[hop] += 1;
        if self.spec.hop_barrier && !self.hop_released[hop] {
            // Barrier-buffered commands take no state slot yet; the
            // slot is acquired when the hop releases and the command
            // actually enters the pipeline. (`cmd.rec` rides along in
            // the buffered command.)
            self.hop_buffers[hop].push(cmd);
            if self.lat_on {
                self.lat_hop_bufs[hop].push((at, self.lat_inherit));
            }
        } else {
            if let Some(c) = self.cascade.as_mut() {
                // Records are appended in spawn order, so a record's
                // children (spawned back-to-back from its completion)
                // occupy consecutive indices after it.
                cmd.rec = c.append(&cmd.sample);
            }
            let si = self.states.acquire(cmd);
            if self.lat_on {
                let p = self.lat_inherit;
                self.lat_set_path(si, p);
            }
            self.calendar.schedule(at, ev(EV_ARRIVE, si));
        }
    }

    /// Installs a command's inherited path at its state slot, growing
    /// the sidecar to match a warm scratch's slot range.
    fn lat_set_path(&mut self, si: u32, p: PathAttr) {
        let i = si as usize;
        if self.lat_paths.len() <= i {
            self.lat_paths.resize(i + 1, PathAttr::default());
        }
        self.lat_paths[i] = p;
    }

    fn drain(&mut self) {
        // One-at-a-time pop loop. Handlers frequently schedule
        // follow-up events at the current instant; those carry higher
        // sequence numbers than anything already queued, so popping
        // directly delivers the exact order the old batch-drain loop
        // (and any serial reference) produces — without staging every
        // event through an intermediate buffer first.
        let mut processed = 0u64;
        while let Some((now, word)) = self.calendar.pop() {
            processed += 1;
            let payload = (word >> 3) as u32;
            match word & 0b111 {
                EV_ARRIVE => self.on_arrive(payload, now),
                EV_PRE => self.on_pre(payload, now),
                EV_DIE_REQ => self.on_die_req(payload, now),
                EV_XFER_REQ => self.on_xfer_req(payload, now),
                EV_POST => self.on_post(payload, now),
                _ => self.on_release_hop(payload as u8, now),
            }
        }
        self.events_processed += processed;
    }

    fn on_arrive(&mut self, si: u32, now: SimTime) {
        let cmd = self.states.cmd[si as usize];
        self.states.created[si as usize] = now;
        if self.record_hops {
            let h = cmd.sample.hop as usize;
            self.hop_first[h] = Some(self.hop_first[h].map_or(now, |t| t.min(now)));
        }
        let mut pre = StepQueue::new();
        if cmd.kind == CmdKind::FeatureRead {
            // Host-issued feature-table read.
            pre.push_back(Step::Host(self.ssd.host.storage_stack_per_io));
            pre.push_back(Step::Fixed(self.ssd.host.nvme_roundtrip / 2));
            pre.push_back(Step::Core(
                self.ssd.firmware.nvme_command
                    + self.ssd.firmware.ftl_lookup
                    + self.ssd.firmware.flash_issue,
            ));
            self.states.steps[si as usize] = pre;
            self.calendar.schedule(now, ev(EV_PRE, si));
            return;
        }
        match self.spec.sampling {
            SamplingLocation::HostCpu => {
                // Each read is a host-issued NVMe I/O: storage stack on a
                // host core, wire round trip, poller + FTL + issue on an
                // embedded core.
                pre.push_back(Step::Host(self.ssd.host.storage_stack_per_io));
                pre.push_back(Step::Fixed(self.ssd.host.nvme_roundtrip / 2));
                pre.push_back(Step::Core(
                    self.ssd.firmware.nvme_command
                        + self.ssd.firmware.ftl_lookup
                        + self.ssd.firmware.flash_issue,
                ));
            }
            SamplingLocation::Firmware | SamplingLocation::Die => match self.spec.backend_control {
                BackendControl::Firmware => {
                    let ftl = if self.spec.direct_graph {
                        Duration::ZERO
                    } else {
                        self.ssd.firmware.ftl_lookup
                    };
                    pre.push_back(Step::Core(self.ssd.firmware.flash_issue + ftl));
                }
                BackendControl::HardwareRouter => {
                    self.energy.router_cmds += 1;
                    pre.push_back(Step::Fixed(self.ssd.router_latency));
                }
            },
        }
        self.states.steps[si as usize] = pre;
        self.calendar.schedule(now, ev(EV_PRE, si));
    }

    fn on_pre(&mut self, si: u32, now: SimTime) {
        match self.states.steps[si as usize].pop_front() {
            None => {
                self.calendar.schedule(now, ev(EV_DIE_REQ, si));
            }
            Some(step) => {
                let g = self.exec_step(step, now);
                if self.lat_on {
                    let p = &mut self.lat_paths[si as usize];
                    p.add(Stage::Queue, g.start.saturating_duration_since(now));
                    p.add(Self::step_stage(step), g.end - g.start);
                }
                self.calendar.schedule(g.end, ev(EV_PRE, si));
            }
        }
    }

    /// The critical-path stage a pipeline step's service time lands in.
    fn step_stage(step: Step) -> Stage {
        match step {
            Step::Core(_) => Stage::Firmware,
            Step::Host(_) => Stage::Host,
            Step::Dram(_) => Stage::Dram,
            Step::Pcie(_) => Stage::Pcie,
            Step::Fixed(_) => Stage::Other,
        }
    }

    fn on_die_req(&mut self, si: u32, now: SimTime) {
        let cmd = self.states.cmd[si as usize];
        let die = self.die_of(cmd);
        let grant = self.dies[die].acquire(now, self.memo.die_service);
        self.die_timeline.push(grant.start, grant.end);
        if self.lat_on {
            let p = &mut self.lat_paths[si as usize];
            p.add(Stage::Queue, grant.start.saturating_duration_since(now));
            p.add(Stage::DieSense, grant.end - grant.start);
        }
        if self.trace.is_enabled() {
            self.trace
                .record(grant.start, "die_sense", die as u64, cmd.sample.hop as f64);
        }
        if self.obs.is_enabled() {
            self.span_stage.push(simkit::obs::Span {
                kind: UnitKind::Die,
                unit: die as u32,
                name: "sense",
                start: grant.start,
                end: grant.end,
                value: cmd.sample.hop as f64,
                seq: 0,
            });
            if let Some(router) = self.router.as_mut() {
                // Mirror the round-robin issuer: this die went idle and
                // accepted its next dispatch-queue command.
                let channel = die % self.ssd.geometry.channels;
                router.issue_for_channel(channel, |d| d.index() == die);
            }
        }
        self.flash_reads += 1;
        self.energy.flash_page_reads += 1;
        if self.spec.sampling == SamplingLocation::Die {
            self.energy.sampler_cmds += 1;
        }

        // Functional sampling executes on the die's data now (the same
        // selection semantics apply wherever sampling logically runs;
        // only the *costs* differ by platform). Feature-table reads
        // just return the vector. A §VI-E on-die check failure aborts
        // the command: its subtree is dropped, control returns to
        // firmware, and the run continues. The outcome is written into
        // a pooled slot whose command vector is recycled across
        // commands — no per-command heap allocation.
        let dg = self.dg;
        let oi = self.outcomes.acquire();
        let mut fault = false;
        match cmd.kind {
            CmdKind::FeatureRead => {
                let feature_bytes = self.model.feature_bytes();
                let out = &mut self.outcomes.slots[oi as usize];
                debug_assert!(out.visited.is_none() && out.new_commands.is_empty());
                out.feature_bytes = feature_bytes;
            }
            CmdKind::Visit => {
                if let Some(recording) = self.replay {
                    // Replay: the recorded outcome substitutes for the
                    // sampler — no page parse, no draws. A recorded
                    // fault leaves the outcome cleared, exactly like
                    // `execute_into`'s error path.
                    self.replay_executed += 1;
                    fault = recording.fill_outcome(cmd.rec, &mut self.outcomes.slots[oi as usize]);
                } else {
                    // `execute_into` leaves the outcome cleared on
                    // error — exactly the empty outcome the abort path
                    // needs.
                    fault = self.samplers[die]
                        .execute_into(
                            &cmd.sample,
                            dg.image(),
                            &mut self.outcomes.slots[oi as usize],
                        )
                        .is_err();
                }
                if fault {
                    self.sampler_faults += 1;
                }
            }
        }
        if let Some(c) = self.cascade.as_mut() {
            let r = &mut c.recs[cmd.rec as usize];
            r.die = die as u32;
            r.fault = fault;
        }
        self.cmd_breakdown.wait_before_flash.record_duration(
            grant
                .start
                .saturating_duration_since(self.states.created[si as usize]),
        );
        self.states.tmark[si as usize] = grant.start;
        self.states.oi[si as usize] = oi;
        self.states.die[si as usize] = die as u32;
        self.calendar.schedule(grant.end, ev(EV_XFER_REQ, si));
    }

    fn on_xfer_req(&mut self, si: u32, now: SimTime) {
        let cmd = self.states.cmd[si as usize];
        let die = self.states.die[si as usize] as usize;
        let die_start = self.states.tmark[si as usize];
        let oi = self.states.oi[si as usize];
        let channel = die % self.ssd.geometry.channels;
        let bytes = match self.spec.transfer {
            TransferGranularity::Page => self.ssd.geometry.page_size as u64,
            TransferGranularity::Useful => self.outcomes.get(oi).result_bytes() as u64,
        };
        let service = self.memo.xfer_service(bytes);
        let grant = self.channels[channel].acquire(now, service);
        self.channel_timeline.push(grant.start, grant.end);
        if self.lat_on {
            let p = &mut self.lat_paths[si as usize];
            p.add(Stage::Queue, grant.start.saturating_duration_since(now));
            p.add(Stage::Channel, grant.end - grant.start);
        }
        if self.trace.is_enabled() {
            self.trace
                .record(grant.start, "chan_xfer", channel as u64, bytes as f64);
        }
        if self.obs.is_enabled() {
            self.span_stage.push(simkit::obs::Span {
                kind: UnitKind::Channel,
                unit: channel as u32,
                name: "xfer",
                start: grant.start,
                end: grant.end,
                value: bytes as f64,
                seq: 0,
            });
        }
        self.channel_bytes_accum += bytes;
        if let Some(c) = self.cascade.as_mut() {
            c.recs[cmd.rec as usize].result_bytes = bytes as u32;
        }
        // The command's own flash processing: die service (sense +
        // on-die sampling, from die grant start to `now`) plus its own
        // channel transfer. Queueing for the channel counts as wait
        // (paper Fig 17's definition: flash-proper time is small).
        let chan_wait = grant.start.saturating_duration_since(now);
        self.cmd_breakdown
            .flash
            .record_duration((now - die_start) + (grant.end - grant.start));

        let steps = self.post_steps(&cmd, oi, bytes);
        self.states.steps[si as usize] = steps;
        self.states.tmark[si as usize] = grant.end;
        self.states.chan_wait[si as usize] = chan_wait;
        self.calendar.schedule(grant.end, ev(EV_POST, si));
    }

    fn post_steps(&self, cmd: &Cmd, oi: OutcomeIdx, xfer_bytes: u64) -> StepQueue {
        let outcome = self.outcomes.get(oi);
        let fw = &self.ssd.firmware;
        let mut steps = StepQueue::new();
        if cmd.kind == CmdKind::FeatureRead {
            // Feature-table page: stage in DRAM (write + read-back),
            // complete the I/O, ship the page to the host over PCIe.
            steps.push_back(Step::Dram(2 * xfer_bytes));
            steps.push_back(Step::Core(fw.flash_complete + fw.dma_config));
            steps.push_back(Step::Pcie(xfer_bytes));
            return steps;
        }
        match self.spec.transfer {
            TransferGranularity::Page => {
                // Page lands in SSD DRAM and is read back by whoever
                // samples from it — the write + read staging cost of
                // the paper's Challenge 3.
                steps.push_back(Step::Dram(2 * xfer_bytes));
                match self.spec.sampling {
                    SamplingLocation::Firmware => {
                        let work = fw.flash_complete
                            + fw.dma_config
                            + fw.sample_fixed
                            + fw.sample_per_neighbor * outcome.new_commands.len() as u64;
                        steps.push_back(Step::Core(work));
                        if self.spec.features_cross_pcie
                            && !self.spec.host_feature_lookup
                            && outcome.feature_bytes > 0
                        {
                            // Firmware extracts the vector, ships it to
                            // the host-side compute engine.
                            steps.push_back(Step::Pcie(outcome.feature_bytes as u64));
                        }
                        if self.spec.hop_barrier && !outcome.new_commands.is_empty() {
                            // Sampled ids stream back to the host.
                            steps.push_back(Step::Pcie(
                                outcome.new_commands.len() as u64 * NODE_ID_BYTES,
                            ));
                        }
                    }
                    SamplingLocation::HostCpu => {
                        steps.push_back(Step::Core(fw.flash_complete + fw.dma_config));
                        // The page crosses PCIe to the host, which
                        // samples from it in software.
                        steps.push_back(Step::Pcie(xfer_bytes));
                        steps.push_back(Step::Host(
                            self.ssd.host.sample_per_neighbor
                                * outcome.new_commands.len().max(1) as u64,
                        ));
                    }
                    SamplingLocation::Die => unreachable!("die sampling implies useful transfer"),
                }
            }
            TransferGranularity::Useful => {
                match self.spec.backend_control {
                    BackendControl::Firmware => {
                        steps.push_back(Step::Core(
                            fw.flash_complete + fw.parse_result + fw.dma_config,
                        ));
                    }
                    BackendControl::HardwareRouter => {
                        steps.push_back(Step::Fixed(self.ssd.router_latency));
                    }
                }
                if outcome.feature_bytes > 0 && !self.ssd.dram_bypass {
                    steps.push_back(Step::Dram(outcome.feature_bytes as u64));
                }
                if self.spec.features_cross_pcie && outcome.feature_bytes > 0 {
                    steps.push_back(Step::Pcie(outcome.feature_bytes as u64));
                }
                if self.spec.hop_barrier && !outcome.new_commands.is_empty() {
                    steps.push_back(Step::Pcie(
                        outcome.new_commands.len() as u64 * NODE_ID_BYTES,
                    ));
                }
            }
        }
        steps
    }

    fn on_post(&mut self, si: u32, now: SimTime) {
        if let Some(step) = self.states.steps[si as usize].pop_front() {
            let g = self.exec_step(step, now);
            if self.lat_on {
                let p = &mut self.lat_paths[si as usize];
                p.add(Stage::Queue, g.start.saturating_duration_since(now));
                p.add(Self::step_stage(step), g.end - g.start);
            }
            self.calendar.schedule(g.end, ev(EV_POST, si));
            return;
        }
        let cmd = self.states.cmd[si as usize];
        let xfer_end = self.states.tmark[si as usize];
        let chan_wait = self.states.chan_wait[si as usize];
        let oi = self.states.oi[si as usize];
        if self.lat_on {
            // The command retires here: offer its chain to the query's
            // reduction and stage its path for any spawns below
            // (children, host feature reads) to inherit.
            let p = self.lat_paths[si as usize];
            self.lat_chains
                .observe((self.lat_qid_base + cmd.sample.subgraph) as usize, now, &p);
            self.lat_inherit = p;
        }
        // Command fully processed. Channel-queue wait counts toward
        // wait_after_flash (it happens after the sense completes).
        self.cmd_breakdown
            .wait_after_flash
            .record_duration(chan_wait + now.saturating_duration_since(xfer_end));
        if self.trace.is_enabled() {
            self.trace.record(
                now,
                "cmd_done",
                cmd.sample.subgraph as u64,
                cmd.sample.hop as f64,
            );
        }
        if self.obs.is_enabled() {
            self.span_stage.push(simkit::obs::Span {
                kind: UnitKind::Engine,
                unit: 0,
                name: "cmd_done",
                start: now,
                end: now,
                value: cmd.sample.hop as f64,
                seq: 0,
            });
        }
        if self.record_hops {
            let h = cmd.sample.hop as usize;
            self.hop_last[h] = Some(self.hop_last[h].map_or(now, |t| t.max(now)));
        }
        if let Some(node) = self.outcomes.get(oi).visited {
            self.nodes_visited += 1;
            if self.spec.host_feature_lookup {
                // Feature lookup stays on the host: fetch this node's
                // feature-table page as a separate host I/O.
                self.spawn_feature_read(node, cmd.sample.hop, cmd.sample.subgraph, now);
            }
        }
        if let Some(c) = self.cascade.as_mut() {
            let rid = cmd.rec as usize;
            let next = u32::try_from(c.recs.len()).expect("cascade log overflow");
            let out = self.outcomes.get(oi);
            let r = &mut c.recs[rid];
            r.visited = out.visited.map_or(u32::MAX, |n| n.as_u32());
            r.feature_bytes = out.feature_bytes as u32;
            r.children_start = next;
            r.children_len = out.new_commands.len() as u32;
        }
        // Children inherit this command's channel as their routing
        // source (observability only; `None` keeps the plain path free
        // of the die_of recomputation).
        let src_channel = if self.router.is_some() {
            Some(self.die_of(cmd) % self.ssd.geometry.channels)
        } else {
            None
        };
        // Under replay, children take their record indices from the
        // parent's recorded children range (same consecutive layout the
        // recorder produced).
        let child_base = match self.replay {
            Some(r) if cmd.rec != NO_REC => r.recs[cmd.rec as usize].children_start,
            _ => NO_REC,
        };
        // Index loop: `spawn` needs `&mut self`, and each child is a
        // small `Copy` record, so re-borrowing per iteration is free.
        for i in 0..self.outcomes.get(oi).new_commands.len() {
            let child = self.outcomes.get(oi).new_commands[i];
            let rec = if child_base == NO_REC {
                NO_REC
            } else {
                child_base + i as u32
            };
            self.spawn(
                Cmd {
                    sample: child,
                    kind: CmdKind::Visit,
                    rec,
                },
                now,
                src_channel,
            );
        }
        self.outcomes.release(oi);
        self.states.release(si);
        self.complete(cmd, now);
    }

    fn complete(&mut self, cmd: Cmd, now: SimTime) {
        let hop = cmd.sample.hop as usize;
        self.outstanding -= 1;
        self.hop_outstanding[hop] -= 1;
        self.prep_end = self.prep_end.max(now);

        if self.spec.hop_barrier
            && self.hop_outstanding[hop] == 0
            && self.hop_released[hop]
            && hop + 1 < self.hop_buffers.len()
            && !self.hop_released[hop + 1]
            && !self.hop_buffers[hop + 1].is_empty()
        {
            // Hop drained: host round trip (gather results, translate
            // across the host cores, command the next hop).
            let next = &self.hop_buffers[hop + 1];
            let host_work = if self.spec.direct_graph {
                Duration::ZERO
            } else {
                self.ssd.host.translate_per_node * next.len() as u64 / self.ssd.host.cores as u64
            };
            let release_at = now + self.ssd.host.nvme_roundtrip + host_work;
            self.energy.host_cpu_busy += host_work * self.ssd.host.cores as u64;
            self.calendar
                .schedule(release_at, ev(EV_RELEASE_HOP, (hop + 1) as u32));
        }
    }

    fn on_release_hop(&mut self, hop: u8, now: SimTime) {
        self.hop_released[hop as usize] = true;
        // Swap the buffer out through a reusable scratch vector so both
        // the hop buffer and the scratch keep their capacity — the old
        // `mem::take` here leaked the allocation every release.
        debug_assert!(self.release_buf.is_empty());
        std::mem::swap(&mut self.release_buf, &mut self.hop_buffers[hop as usize]);
        for i in 0..self.release_buf.len() {
            let cmd = self.release_buf[i];
            let si = self.states.acquire(cmd);
            if self.lat_on {
                // Barrier wait from spawn to release is queueing.
                let (at, mut p) = self.lat_hop_bufs[hop as usize][i];
                p.add(Stage::Queue, now.saturating_duration_since(at));
                self.lat_set_path(si, p);
            }
            self.calendar.schedule(now, ev(EV_ARRIVE, si));
        }
        self.release_buf.clear();
        if self.lat_on {
            self.lat_hop_bufs[hop as usize].clear();
        }
    }

    fn exec_step(&mut self, step: Step, now: SimTime) -> Grant {
        match step {
            Step::Core(d) => {
                let core = Self::least_loaded(&self.cores);
                self.cores[core].acquire(now, d)
            }
            Step::Host(d) => {
                let core = Self::least_loaded(&self.host_cores);
                self.host_cores[core].acquire(now, d)
            }
            Step::Dram(bytes) => {
                self.energy.dram_bytes += bytes;
                self.dram.transfer(now, bytes)
            }
            Step::Pcie(bytes) => {
                self.energy.pcie_bytes += bytes;
                self.pcie.transfer(now, bytes)
            }
            Step::Fixed(d) => Grant {
                start: now,
                end: now + d,
            },
        }
    }

    fn least_loaded(pool: &[SerialResource]) -> usize {
        pool.iter()
            .enumerate()
            .min_by_key(|(_, r)| r.next_free())
            .map(|(i, _)| i)
            .expect("resource pool is non-empty")
    }

    fn die_of(&self, cmd: Cmd) -> usize {
        let (page, _) = self.dg.layout().unpack(cmd.sample.target);
        self.ssd.geometry.die_of(page).index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_graph::{generate, FeatureTable};
    use directgraph::{build::DirectGraphBuilder, AddrLayout};

    fn make_dg(n: usize, deg: f64, feat: usize) -> DirectGraph {
        let cfg = generate::PowerLawConfig::new(n, deg);
        let graph = generate::power_law(&cfg, 7);
        let features = FeatureTable::synthetic(n, feat, 7);
        DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap()
    }

    fn run_platform(p: Platform, batches: usize, batch_size: usize) -> RunMetrics {
        let dg = make_dg(3_000, 30.0, 200);
        let model = GnnModelConfig::paper_default(200);
        let ssd = SsdConfig::paper_default();
        let targets: Vec<Vec<NodeId>> = (0..batches)
            .map(|b| {
                (0..batch_size)
                    .map(|i| NodeId::new(((b * batch_size + i) % 3_000) as u32))
                    .collect()
            })
            .collect();
        Engine::new(p, ssd, model, &dg, 42).run(&targets)
    }

    #[test]
    fn all_platforms_complete() {
        for p in Platform::ALL {
            let m = run_platform(p, 1, 16);
            assert_eq!(m.targets, 16, "{p}");
            assert!(m.makespan > Duration::ZERO, "{p}");
            assert!(m.nodes_visited >= 16, "{p}: visited {}", m.nodes_visited);
            assert!(m.throughput() > 0.0, "{p}");
        }
    }

    #[test]
    fn bg2_outperforms_cc_substantially() {
        let cc = run_platform(Platform::Cc, 2, 32);
        let bg2 = run_platform(Platform::Bg2, 2, 32);
        let speedup = bg2.throughput() / cc.throughput();
        assert!(speedup > 3.0, "BG-2 speedup over CC only {speedup:.2}x");
    }

    #[test]
    fn ablation_chain_is_monotone() {
        let tps: Vec<(Platform, f64)> = Platform::BG_CHAIN
            .iter()
            .map(|&p| (p, run_platform(p, 2, 128).throughput()))
            .collect();
        for w in tps.windows(2) {
            assert!(
                w[1].1 >= w[0].1 * 0.95,
                "{} ({:.0}) should be >= {} ({:.0})",
                w[1].0,
                w[1].1,
                w[0].0,
                w[0].1
            );
        }
    }

    #[test]
    fn die_sampling_reduces_channel_traffic() {
        let bg1 = run_platform(Platform::Bg1, 1, 16);
        let bgsp = run_platform(Platform::BgSp, 1, 16);
        assert!(
            bgsp.energy.channel_bytes < bg1.energy.channel_bytes / 3,
            "useful transfer should slash channel bytes: {} vs {}",
            bgsp.energy.channel_bytes,
            bg1.energy.channel_bytes
        );
    }

    #[test]
    fn directgraph_improves_over_bg1_marginally() {
        // Paper §VII-B: BG-DG has only a marginal improvement over BG-1
        // because whole-page transfer still dominates — same reads, no
        // barriers.
        let bg1 = run_platform(Platform::Bg1, 2, 128);
        let bgdg = run_platform(Platform::BgDg, 2, 128);
        assert_eq!(bgdg.flash_reads, bg1.flash_reads);
        let ratio = bgdg.throughput() / bg1.throughput();
        assert!(ratio >= 1.0, "BG-DG should not regress: {ratio:.2}");
        assert!(ratio < 2.0, "BG-DG over BG-1 should be modest: {ratio:.2}");
    }

    #[test]
    fn barrier_platforms_have_ordered_hops() {
        let m = run_platform(Platform::Bg1, 1, 16);
        // With a hop barrier, hop h+1's first command starts after hop
        // h's last completes.
        for w in m.hop_windows.windows(2) {
            assert!(
                w[1].start >= w[0].end,
                "hops {} and {} overlap under a barrier",
                w[0].hop,
                w[1].hop
            );
        }
    }

    #[test]
    fn out_of_order_platforms_overlap_hops() {
        let m = run_platform(Platform::Bg2, 1, 64);
        let overlapping = m.hop_windows.windows(2).any(|w| w[1].start < w[0].end);
        assert!(overlapping, "BG-2 should overlap hops: {:?}", m.hop_windows);
    }

    #[test]
    fn corrupt_sections_fault_gracefully() {
        use directgraph::PageIndex;
        let mut dg = make_dg(1_000, 20.0, 64);
        // Stomp a page so any command landing there fails the on-die
        // §VI-E check.
        let victim = PageIndex::new(3);
        let mut page = dg.image().read_page(victim).unwrap().to_vec();
        page[0] = 0xEE; // bogus section kind
        dg.image_mut().write_page(victim, page.into_boxed_slice());

        let model = GnnModelConfig::paper_default(64);
        let batch: Vec<NodeId> = (0..64).map(NodeId::new).collect();
        let m = Engine::new(Platform::Bg2, SsdConfig::paper_default(), model, &dg, 5).run(&[batch]);
        // The run completes; faulted subtrees are dropped.
        assert!(
            m.sampler_faults > 0,
            "expected faults from the corrupt page"
        );
        assert!(m.nodes_visited < 64 * model.subgraph_nodes());
        assert!(m.throughput() > 0.0);
    }

    #[test]
    fn healthy_runs_have_zero_faults() {
        let m = run_platform(Platform::Bg2, 1, 16);
        assert_eq!(m.sampler_faults, 0);
    }

    #[test]
    fn summary_is_informative() {
        let m = run_platform(Platform::Bg2, 1, 16);
        let s = m.summary();
        assert!(s.contains("BG-2"));
        assert!(s.contains("targets/s"));
        assert!(s.contains("flash reads"));
        assert!(
            !s.contains("sampler faults"),
            "healthy run mentions no faults"
        );
    }

    #[test]
    fn tracing_records_lifecycle_events() {
        let dg = make_dg(1_000, 20.0, 64);
        let model = GnnModelConfig::paper_default(64);
        let batch: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let m = Engine::new(Platform::Bg2, SsdConfig::paper_default(), model, &dg, 1)
            .with_trace(100_000)
            .run(&[batch]);
        assert!(!m.trace.is_empty());
        let kinds: std::collections::HashSet<&str> = m.trace.iter().map(|e| e.kind).collect();
        for k in ["die_sense", "chan_xfer", "cmd_done"] {
            assert!(kinds.contains(k), "missing {k}");
        }
        // One cmd_done per flash command.
        let dones = m.trace.iter().filter(|e| e.kind == "cmd_done").count() as u64;
        assert_eq!(dones, m.flash_reads);
        // Timestamps nondecreasing within the ring? Not guaranteed
        // globally (events record at grant times), but CSV export works.
        let mut buf = Vec::new();
        m.trace.to_csv(&mut buf).unwrap();
        assert!(buf.len() > 100);
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        let dg = make_dg(2_000, 25.0, 128);
        let model = GnnModelConfig::paper_default(128);
        let ssd = SsdConfig::paper_default();
        let batch: Vec<NodeId> = (0..32).map(NodeId::new).collect();
        let plain =
            Engine::new(Platform::Bg2, ssd, model, &dg, 9).run(std::slice::from_ref(&batch));
        let observed = Engine::new(Platform::Bg2, ssd, model, &dg, 9)
            .with_obs(1 << 20)
            .run(&[batch]);
        // Observability must not perturb the simulation.
        assert_eq!(observed.makespan, plain.makespan);
        assert_eq!(observed.nodes_visited, plain.nodes_visited);
        assert_eq!(observed.flash_reads, plain.flash_reads);
        assert_eq!(observed.energy.channel_bytes, plain.energy.channel_bytes);
        // The plain run collects no side channels...
        assert!(plain.spans.is_empty() && plain.router.is_none() && plain.ftl.is_none());
        // ...the observed run collects all of them.
        assert!(!observed.spans.is_empty());
        let senses = observed
            .spans
            .iter()
            .filter(|s| s.kind == simkit::UnitKind::Die && s.name == "sense")
            .count() as u64;
        assert_eq!(senses, observed.flash_reads);
        let router = observed.router.expect("BG-2 mirrors the router");
        assert_eq!(router.routed, observed.flash_reads);
        assert_eq!(router.issued, observed.flash_reads);
        assert!(router.cross_channel > 0, "{router:?}");
        assert!(router.max_queue_depth >= 1);
        let ftl = observed.ftl.expect("obs runs replay the FTL setup");
        // The DirectGraph flush programs *reserved* blocks, which
        // bypass the regular write path: the setup cost shows up as
        // erases (one P/E per reserved block), not host writes.
        assert_eq!(ftl.host_writes, 0);
        assert_eq!(ftl.gc_writes, 0);
        let blocks_needed =
            dg.image()
                .pages_written()
                .div_ceil(SsdConfig::paper_default().geometry.pages_per_block) as u64;
        assert_eq!(ftl.erases, blocks_needed);
        assert!(ftl.waf() >= 1.0);
        assert_eq!(observed.sampler_executed, plain.sampler_executed);
        assert!(observed.accel_occupancy.systolic > 0.0);
        assert!(observed.accel_occupancy.systolic <= 1.0);
        assert!(observed.accel_occupancy.vector > 0.0);
        assert!(observed.accel_occupancy.vector <= 1.0);
    }

    #[test]
    fn metrics_report_is_byte_stable_and_complete() {
        let dg = make_dg(1_000, 20.0, 64);
        let model = GnnModelConfig::paper_default(64);
        let batch: Vec<NodeId> = (0..16).map(NodeId::new).collect();
        let run = || {
            Engine::new(Platform::Bg2, SsdConfig::paper_default(), model, &dg, 3)
                .with_obs(1 << 18)
                .run(std::slice::from_ref(&batch))
        };
        let a = run().metrics_registry().to_json_string();
        let b = run().metrics_registry().to_json_string();
        assert_eq!(a, b, "identical runs must serialize byte-identically");
        for section in [
            "\"run\"",
            "\"command_breakdown\"",
            "\"stages\"",
            "\"die_utilization\"",
            "\"channel_utilization\"",
            "\"hops\"",
            "\"router\"",
            "\"ftl\"",
            "\"accelerator\"",
            "\"energy\"",
            "\"pools\"",
            "\"trace\"",
            "\"latency\"",
            "\"latency_breakdown\"",
            "\"replay\"",
        ] {
            assert!(a.contains(section), "missing section {section}");
        }
        assert!(a.contains("\"present\": true"));
    }

    #[test]
    fn firmware_platforms_have_no_router_mirror() {
        let dg = make_dg(1_000, 20.0, 64);
        let model = GnnModelConfig::paper_default(64);
        let batch: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let m = Engine::new(Platform::Bg1, SsdConfig::paper_default(), model, &dg, 3)
            .with_obs(1 << 16)
            .run(&[batch]);
        assert!(m.router.is_none(), "BG-1 is firmware-controlled");
        assert!(m.ftl.is_some(), "FTL replay is platform-independent");
        let reg = m.metrics_registry();
        let router = reg.get("router").unwrap();
        assert_eq!(
            router.get("present"),
            Some(&simkit::MetricValue::Bool(false))
        );
        assert_eq!(router.get("routed"), Some(&simkit::MetricValue::U64(0)));
    }

    #[test]
    fn steady_state_reuses_event_and_outcome_pools() {
        let m = run_platform(Platform::Bg2, 2, 64);
        assert!(m.pools.events_processed > 1_000, "{:?}", m.pools);
        // The calendar slab plateaus at peak concurrency; the vast
        // majority of schedules must be served by recycling.
        assert!(
            m.pools.event_slots_reused > 4 * m.pools.event_slots_allocated,
            "event pool not recycling in steady state: {:?}",
            m.pools
        );
        // One outcome per flash command, held only across its own
        // pipeline: the pool stays small and recycles heavily.
        assert!(
            m.pools.outcome_slots_reused > 4 * m.pools.outcome_slots_allocated,
            "outcome pool not recycling in steady state: {:?}",
            m.pools
        );
    }

    #[test]
    fn shared_scratch_is_bit_identical_and_warm() {
        let dg = make_dg(2_000, 25.0, 128);
        let model = GnnModelConfig::paper_default(128);
        let ssd = SsdConfig::paper_default();
        let targets: Vec<Vec<NodeId>> = (0..2)
            .map(|b| (0..48).map(|i| NodeId::new(b * 48 + i)).collect())
            .collect();

        let fresh = Engine::new(Platform::Bg2, ssd, model, &dg, 42).run(&targets);
        let mut scratch = EngineScratch::new();
        let first =
            Engine::new(Platform::Bg2, ssd, model, &dg, 42).run_with(&mut scratch, &targets);
        let second =
            Engine::new(Platform::Bg2, ssd, model, &dg, 42).run_with(&mut scratch, &targets);

        for m in [&first, &second] {
            assert_eq!(m.makespan, fresh.makespan);
            assert_eq!(m.nodes_visited, fresh.nodes_visited);
            assert_eq!(m.flash_reads, fresh.flash_reads);
            assert_eq!(m.energy.channel_bytes, fresh.energy.channel_bytes);
        }
        // Pool counters are cold-equivalent demand, so scratch warmth is
        // invisible: cold, first-warm and second-warm runs report the
        // same registry bytes (the property the record/replay matrix
        // path depends on at any --jobs count).
        assert_eq!(
            second.pools, first.pools,
            "pool counters leaked scratch warmth"
        );
        assert_eq!(
            second.pools, fresh.pools,
            "pool counters leaked scratch warmth"
        );
        assert_eq!(second.pools.events_processed, first.pools.events_processed);
    }

    #[test]
    fn replay_is_byte_identical_on_every_platform_and_timing() {
        // One BG-2 recording re-times byte-identically on all eight
        // platforms under several device configurations — the invariant
        // the record-once/replay-many matrix path rests on.
        let dg = make_dg(2_000, 25.0, 128);
        let model = GnnModelConfig::paper_default(128);
        let batches: Vec<Vec<NodeId>> = (0..2)
            .map(|b| (0..24).map(|i| NodeId::new(b * 24 + i)).collect())
            .collect();
        let mut scratch = EngineScratch::new();
        let canonical = SsdConfig::paper_default();
        let (rec_metrics, recording) = Engine::new(Platform::Bg2, canonical, model, &dg, 42)
            .record_cascade(&mut scratch, &batches);
        assert!(recording.matches_batches(&batches));

        // The recording run itself is indistinguishable from a plain run.
        let plain = Engine::new(Platform::Bg2, canonical, model, &dg, 42).run(&batches);
        assert_eq!(
            plain.metrics_registry().to_json_string(),
            rec_metrics.metrics_registry().to_json_string()
        );

        let configs = [
            canonical,
            canonical.with_cores(7),
            canonical.with_channels(4).with_dies_per_channel(4),
        ];
        // One shared scratch serves both paths: pool counters are
        // cold-equivalent demand, so interleaving full and replayed
        // runs on the same warming slab cannot shift a byte.
        for p in Platform::ALL {
            for ssd in configs {
                let full = Engine::new(p, ssd, model, &dg, 42).run_with(&mut scratch, &batches);
                let replayed = Engine::new(p, ssd, model, &dg, 42).replay_with(
                    &mut scratch,
                    &recording,
                    &batches,
                );
                assert_eq!(
                    full.metrics_registry().to_json_string(),
                    replayed.metrics_registry().to_json_string(),
                    "replay drifted from full run: {p} / {ssd:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match the batches")]
    fn replay_rejects_mismatched_batches() {
        let dg = make_dg(1_000, 20.0, 64);
        let model = GnnModelConfig::paper_default(64);
        let batch: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let mut scratch = EngineScratch::new();
        let (_, recording) = Engine::new(Platform::Bg2, SsdConfig::paper_default(), model, &dg, 1)
            .record_cascade(&mut scratch, std::slice::from_ref(&batch));
        let other: Vec<NodeId> = (0..9).map(NodeId::new).collect();
        Engine::new(Platform::Bg2, SsdConfig::paper_default(), model, &dg, 1).replay_with(
            &mut scratch,
            &recording,
            &[other],
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run_platform(Platform::Bg2, 1, 16);
        let b = run_platform(Platform::Bg2, 1, 16);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.flash_reads, b.flash_reads);
        assert_eq!(a.nodes_visited, b.nodes_visited);
    }

    #[test]
    fn cc_spends_energy_outside_storage() {
        let m = run_platform(Platform::Cc, 1, 32);
        assert!(m.energy.pcie_bytes > 0);
        let b = m
            .energy
            .breakdown(&beacon_energy::EnergyCosts::default_costs());
        assert!(
            b.outside_storage_fraction() > 0.3,
            "{}",
            b.outside_storage_fraction()
        );
    }
}
