//! Real-time GNN query support (paper §VIII).
//!
//! GNN queries are small-batch inference requests where *latency* is
//! critical. The paper argues BeaconGNN helps because it reduces
//! host-SSD communication to one round and avoids channel-congestion
//! queueing. This module measures per-query latency: the end-to-end
//! time of a single mini-batch of `batch_size` targets, unpipelined
//! (a query cannot overlap with itself).

use beacon_gnn::GnnModelConfig;
use beacon_graph::NodeId;
use beacon_ssd::SsdConfig;
use directgraph::DirectGraph;
use simkit::Duration;

use crate::engine::Engine;
use crate::spec::Platform;

/// Latency statistics over a set of queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLatency {
    /// Targets per query.
    pub batch_size: usize,
    /// Queries measured.
    pub queries: usize,
    /// Mean end-to-end latency (prep + compute, no pipelining).
    pub mean: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

/// Measures query latency for `platform`: each query is one mini-batch
/// of `batch_size` targets, simulated in isolation so no cross-query
/// pipelining hides latency.
///
/// # Panics
///
/// Panics if `queries` is zero or any target is missing from the
/// directory.
pub fn measure_query_latency(
    platform: Platform,
    ssd: SsdConfig,
    model: GnnModelConfig,
    dg: &DirectGraph,
    queries: &[Vec<NodeId>],
    seed: u64,
) -> QueryLatency {
    assert!(!queries.is_empty(), "need at least one query");
    let batch_size = queries[0].len();
    let mut total = Duration::ZERO;
    let mut max = Duration::ZERO;
    for (i, q) in queries.iter().enumerate() {
        // Fresh engine per query: queries arrive against an idle device.
        let m = Engine::new(platform, ssd, model, dg, seed ^ (i as u64) << 7)
            .run(std::slice::from_ref(q));
        total += m.makespan;
        max = max.max(m.makespan);
    }
    QueryLatency {
        batch_size,
        queries: queries.len(),
        mean: total / queries.len() as u64,
        max,
    }
}

/// Query latency when the device is busy with a training mini-batch
/// (§VI-G): the query defers to the batch boundary, so its latency is
/// the expected remaining batch time plus the idle-device query time.
///
/// Returns `(idle_latency, loaded_latency)` where the loaded figure
/// assumes the query arrives uniformly within the batch window.
pub fn query_latency_under_load(
    platform: Platform,
    ssd: SsdConfig,
    model: GnnModelConfig,
    dg: &DirectGraph,
    query: &[NodeId],
    training_batch: &[NodeId],
    seed: u64,
) -> (Duration, Duration) {
    let idle = Engine::new(platform, ssd, model, dg, seed)
        .run(std::slice::from_ref(&query.to_vec()))
        .makespan;
    let batch_window = Engine::new(platform, ssd, model, dg, seed ^ 0xB47C)
        .run(std::slice::from_ref(&training_batch.to_vec()))
        .makespan;
    // Uniform arrival: expected residual window is half the batch.
    (idle, batch_window / 2 + idle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_graph::{generate, FeatureTable};
    use directgraph::{build::DirectGraphBuilder, AddrLayout};

    fn setup() -> (DirectGraph, GnnModelConfig) {
        let cfg = generate::PowerLawConfig::new(2_000, 25.0);
        let graph = generate::power_law(&cfg, 3);
        let feats = FeatureTable::synthetic(2_000, 100, 3);
        let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &feats)
            .unwrap();
        (dg, GnnModelConfig::paper_default(100))
    }

    fn queries(n: usize, batch: usize) -> Vec<Vec<NodeId>> {
        (0..n)
            .map(|q| {
                (0..batch)
                    .map(|i| NodeId::new(((q * batch + i) % 2_000) as u32))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn bg2_query_latency_beats_cc() {
        let (dg, model) = setup();
        let qs = queries(4, 4);
        let cc =
            measure_query_latency(Platform::Cc, SsdConfig::paper_default(), model, &dg, &qs, 1);
        let bg2 = measure_query_latency(
            Platform::Bg2,
            SsdConfig::paper_default(),
            model,
            &dg,
            &qs,
            1,
        );
        // §VIII: one communication round + no channel congestion =>
        // much lower query latency.
        let speedup = cc.mean.as_ns() as f64 / bg2.mean.as_ns() as f64;
        assert!(speedup > 3.0, "query speedup only {speedup:.1}x");
        assert!(bg2.max >= bg2.mean);
        assert_eq!(bg2.batch_size, 4);
        assert_eq!(bg2.queries, 4);
    }

    #[test]
    fn single_target_query_is_microseconds_on_bg2() {
        let (dg, model) = setup();
        let qs = queries(4, 1);
        let bg2 = measure_query_latency(
            Platform::Bg2,
            SsdConfig::paper_default(),
            model,
            &dg,
            &qs,
            2,
        );
        // 40 dependent-ish reads at 3us each, heavily overlapped, plus
        // compute: should land well under a millisecond.
        assert!(
            bg2.mean < Duration::from_ms(1),
            "query latency {}",
            bg2.mean
        );
    }

    #[test]
    fn load_defers_queries_by_the_batch_window() {
        let (dg, model) = setup();
        let query: Vec<NodeId> = vec![NodeId::new(3)];
        let batch: Vec<NodeId> = (0..128).map(NodeId::new).collect();
        let (idle, loaded) = query_latency_under_load(
            Platform::Bg2,
            SsdConfig::paper_default(),
            model,
            &dg,
            &query,
            &batch,
            4,
        );
        assert!(loaded > idle, "background load must add deferral");
        // The §VI-G cost: roughly half the training batch's window.
        assert!(
            loaded - idle > Duration::from_us(50),
            "deferral {}",
            loaded - idle
        );
    }

    #[test]
    fn barrier_platforms_pay_per_hop_roundtrips() {
        let (dg, model) = setup();
        let qs = queries(2, 1);
        let ssd = SsdConfig::paper_default();
        let bg1 = measure_query_latency(Platform::Bg1, ssd, model, &dg, &qs, 3);
        let bgdg = measure_query_latency(Platform::BgDg, ssd, model, &dg, &qs, 3);
        // BG-DG removes the inter-hop host round trips; for tiny
        // queries those dominate.
        assert!(bg1.mean > bgdg.mean);
    }
}
