//! # beacon-platforms — the evaluated systems and their simulator
//!
//! This crate assembles the substrates (`beacon-flash`, `beacon-ssd`,
//! `beacon-accel`, `beacon-gnn`, `directgraph`) into the eight
//! end-to-end GNN acceleration systems the paper evaluates (§VII-A) and
//! simulates them with a unified discrete-event engine:
//!
//! * [`Platform`] / [`PlatformSpec`] — CC, SmartSage, GList, and the
//!   BG-1 → BG-2 ablation chain, expressed as feature flags.
//! * [`Engine`] — the event-driven data-preparation + compute pipeline
//!   (see [`engine`] docs for the stage diagram).
//! * [`PartitionedEngine`] — the same BG-2 pipeline as N per-channel
//!   event loops under conservative lookahead (see [`partition`]),
//!   with identical output at any worker-thread count.
//! * [`ArrayEngine`] — the multi-SSD array simulation (see [`array`]):
//!   one device lane per SSD behind a partition-aware host router,
//!   with an explicit fabric cost model and the same determinism
//!   guarantee.
//! * [`RunMetrics`] — throughput, stage/command latency breakdowns, hop
//!   timelines, die/channel utilization curves, and the energy ledger:
//!   the raw material for every figure in §VII.
//! * [`motivation`] — the standalone Fig 7a die-scaling experiment.
//!
//! ## Example
//!
//! ```
//! use beacon_graph::{generate, FeatureTable, NodeId};
//! use beacon_gnn::GnnModelConfig;
//! use beacon_platforms::{Engine, Platform};
//! use beacon_ssd::SsdConfig;
//! use directgraph::{build::DirectGraphBuilder, AddrLayout};
//!
//! let cfg = generate::PowerLawConfig::new(1_000, 20.0);
//! let graph = generate::power_law(&cfg, 1);
//! let feats = FeatureTable::synthetic(1_000, 64, 1);
//! let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
//!     .build(&graph, &feats).unwrap();
//!
//! let model = GnnModelConfig::paper_default(64);
//! let batch: Vec<NodeId> = (0..8).map(NodeId::new).collect();
//! let metrics = Engine::new(Platform::Bg2, SsdConfig::paper_default(), model, &dg, 42)
//!     .run(&[batch]);
//! assert!(metrics.throughput() > 0.0);
//! ```

pub mod array;
pub mod engine;
pub(crate) mod lat;
pub mod metrics;
pub mod motivation;
pub mod partition;
pub mod query;
pub mod replay;
pub mod spec;

pub use array::{
    evaluate_array, evaluate_array_partitioned, ArrayCascade, ArrayConfig, ArrayEngine,
    ArrayRunMetrics, ArrayScaling, DeviceMetrics, FabricLinkMetrics,
};
pub use engine::{Engine, EngineScratch};
pub use metrics::{
    AccelOccupancy, CmdBreakdown, HopWindow, PoolCounters, RunMetrics, StageBreakdown,
    TimelineBuilder,
};
pub use partition::PartitionedEngine;
pub use query::{measure_query_latency, query_latency_under_load, QueryLatency};
pub use replay::CascadeRecording;
pub use spec::{
    BackendControl, ComputeLocation, Platform, PlatformSpec, SamplingLocation, TransferGranularity,
};
