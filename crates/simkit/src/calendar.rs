//! The event calendar: a time-ordered priority queue of simulation events.

use std::collections::{BTreeMap, VecDeque};

use crate::time::SimTime;

/// A generation-tagged handle to a scheduled event.
///
/// Returned by [`Calendar::schedule`]; pass it to [`Calendar::cancel`]
/// to remove the event before it fires. The generation tag makes stale
/// handles harmless: once the event has been popped (or cancelled) its
/// slot is recycled under a new generation, so an old key can never
/// cancel the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    slot: u32,
    gen: u32,
}

/// Allocation and occupancy behaviour of the calendar (see
/// [`Calendar::pool_stats`]).
///
/// The slot counters are cumulative across [`Calendar::reset`] (the
/// slab itself survives resets, so its growth history does too); the
/// high-water marks describe one run and rewind to zero on `reset`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Slots created by growing the slab (each one is a real
    /// allocation-bearing event at some point in the run).
    pub slots_allocated: u64,
    /// Schedules served by recycling a previously freed slot — the
    /// allocations the pool avoided.
    pub slots_reused: u64,
    /// Peak number of records resident in the near-horizon wheel
    /// buckets at once. Resets to zero on [`Calendar::reset`].
    pub wheel_high_water: u64,
    /// Peak number of records parked in the far/overflow tier at once.
    /// Resets to zero on [`Calendar::reset`].
    pub far_high_water: u64,
    /// Peak number of live pending events at once (the `len()` high
    /// water, across all tiers). Resets to zero on [`Calendar::reset`].
    pub live_high_water: u64,
}

/// One slab slot: the event payload plus its current generation.
#[derive(Debug, Clone)]
struct Slot<E> {
    gen: u32,
    event: Option<E>,
}

/// A small Copy record ordered by `(at, seq)`; the payload stays in the
/// slab so queue operations move 24 bytes, not whole events.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Entry {
    /// The total order the calendar delivers in. `(at, seq)` is unique
    /// (seq is monotonic), so the queue's internal layout can never
    /// leak into simulation results.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// log2 of the wheel span: the near wheel covers one aligned window of
/// `WHEEL_SLOTS` nanoseconds with one bucket per nanosecond.
const WHEEL_BITS: u32 = 13;
/// Buckets in the near wheel (also the window span in ns).
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// u64 words in the occupancy bitmap.
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// One near-wheel bucket: a FIFO of entries sharing a single timestamp.
///
/// Buckets are 1 ns wide, so every record in a bucket has the same
/// `at` and append order *is* seq order — popping the front yields the
/// exact `(time, seq)` minimum with no comparisons at all. `head`
/// indexes the first unpopped record so the front pops in O(1) without
/// shifting; the vector is cleared (capacity kept) once drained.
#[derive(Debug, Clone, Default)]
struct Bucket {
    head: u32,
    v: Vec<Entry>,
}

/// One far-tier window: all records whose window index exceeds the
/// wheel's current window, appended in schedule (seq) order.
///
/// `min_key` caches the smallest `(at, seq)` in `v` so `peek_time` and
/// the immediate-ring comparison stay O(1) while the wheel is empty.
#[derive(Debug, Clone)]
struct FarWindow {
    min_key: (SimTime, u64),
    v: Vec<Entry>,
}

/// A time-ordered event calendar.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO tie-breaking via a monotonically increasing
/// sequence number), which keeps simulations deterministic regardless of
/// queue internals.
///
/// # Hierarchical timing wheel
///
/// Pending events live in one of three tiers, all ordered by the same
/// `(time, seq)` key:
///
/// 1. an **immediate ring** for events scheduled at exactly the current
///    watermark (zero-delay pipeline handoffs) — plain FIFO;
/// 2. a **near wheel** of [`WHEEL_SLOTS`] one-nanosecond buckets
///    covering the aligned window containing the watermark. The bucket
///    index is `at % WHEEL_SLOTS`; a bitmap tracks occupancy so the
///    next bucket is found with a word scan, and within a bucket FIFO
///    order is `(time, seq)` order because 1 ns buckets make all
///    residents share a timestamp;
/// 3. a **far tier** (`BTreeMap` keyed by window index) for everything
///    beyond the current window. When the wheel and ring drain, the
///    earliest far window is distributed into the wheel in one pass.
///
/// Schedule and pop are O(1) amortized: each record is touched once on
/// insert, at most once on window distribution, and once on pop — there
/// is no per-operation sift like a heap's.
///
/// ## Why delivery order is exactly `(time, seq)`
///
/// Within one wheel window, the bucket scan visits times in ascending
/// order and each bucket is FIFO over a single timestamp. The only
/// subtlety is records that *descend* from the far tier: a window is
/// distributed at the instant it becomes current — inside `pop`, before
/// the watermark (and therefore any future `schedule`) can enter it —
/// so every record already in the far window carries a lower seq than
/// any later direct insert into the same bucket, and appending the far
/// records first preserves FIFO exactly.
///
/// # Event pool
///
/// Payloads live in a slab with a free list; the wheel and the
/// immediate ring order small `Copy` records pointing into it. In steady
/// state — a pipeline scheduling roughly as many events as it pops — the
/// slab stops growing entirely and every schedule recycles a freed slot,
/// so the inner loop performs no allocator traffic ([`pool_stats`]
/// quantifies this). [`schedule`] returns a generation-tagged
/// [`EventKey`] so callers can [`cancel`] in O(1): the slot's generation
/// is bumped and the stale queue record is skipped when it surfaces.
///
/// [`schedule`]: Calendar::schedule
/// [`cancel`]: Calendar::cancel
/// [`pool_stats`]: Calendar::pool_stats
///
/// # Examples
///
/// ```
/// use simkit::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_ns(10), 'b');
/// cal.schedule(SimTime::from_ns(10), 'c');
/// cal.schedule(SimTime::from_ns(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    /// Near wheel: `WHEEL_SLOTS` one-ns buckets for the current window.
    buckets: Vec<Bucket>,
    /// Bit i set ⇔ bucket i holds at least one record.
    occupied: [u64; WHEEL_WORDS],
    /// First ns of the window the wheel currently covers
    /// (`window_index * WHEEL_SLOTS`).
    wheel_base: u64,
    /// Absolute ns the bucket scan resumes from. Invariant: no occupied
    /// bucket lies before it (inserts clamp it back down).
    cursor: u64,
    /// Records resident in wheel buckets (including not-yet-purged
    /// cancelled ones).
    wheel_len: usize,
    /// Far tier: window index → records for that window.
    far: BTreeMap<u64, FarWindow>,
    /// Records resident in the far tier (including cancelled ones).
    far_len: usize,
    /// Set when a cancel may have invalidated a cached far-window
    /// `min_key`; verified lazily once the wheel drains.
    far_dirty: bool,
    /// Cancelled records still resident in a queue tier. While zero —
    /// the engine hot loop never cancels — every front is trivially
    /// live and `purge_front` short-circuits entirely.
    dead: usize,
    /// Events scheduled at exactly the watermark instant, FIFO. All
    /// live entries here share `at == watermark` (the watermark cannot
    /// pass a pending event).
    immediate: VecDeque<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    seq: u64,
    /// Latest time popped so far; used to detect causality violations.
    watermark: SimTime,
    stats: PoolStats,
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Calendar {
            buckets: vec![Bucket::default(); WHEEL_SLOTS],
            occupied: [0; WHEEL_WORDS],
            wheel_base: 0,
            cursor: 0,
            wheel_len: 0,
            far: BTreeMap::new(),
            far_len: 0,
            far_dirty: false,
            dead: 0,
            immediate: VecDeque::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            seq: 0,
            watermark: SimTime::ZERO,
            stats: PoolStats::default(),
        }
    }

    /// Creates an empty calendar with pre-allocated slab capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut cal = Self::new();
        cal.immediate = VecDeque::with_capacity(cap.min(1024));
        cal.slots = Vec::with_capacity(cap);
        cal.free = Vec::with_capacity(cap.min(1024));
        cal
    }

    /// Reserves capacity for at least `additional` more events, so a
    /// burst of scheduling (e.g. a mini-batch fan-out) does not pay
    /// repeated reallocation.
    pub fn reserve(&mut self, additional: usize) {
        let extra = additional.saturating_sub(self.free.len());
        self.slots.reserve(extra);
    }

    /// Empties the calendar and rewinds the causality watermark and the
    /// tie-breaking sequence to zero, **keeping** the slab, free list,
    /// bucket and ring capacity. A reset calendar behaves exactly like a
    /// fresh one (identical pop order for identical schedules), which is
    /// what lets one calendar be reused across independent simulation
    /// runs without re-growing its pool each time. Slot counters in
    /// [`pool_stats`](Calendar::pool_stats) persist across resets; the
    /// high-water marks rewind to zero.
    pub fn reset(&mut self) {
        if self.wheel_len > 0 {
            for b in &mut self.buckets {
                b.head = 0;
                b.v.clear();
            }
            self.occupied = [0; WHEEL_WORDS];
            self.wheel_len = 0;
        }
        self.wheel_base = 0;
        self.cursor = 0;
        self.far.clear();
        self.far_len = 0;
        self.far_dirty = false;
        self.dead = 0;
        self.immediate.clear();
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.event = None;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(i as u32);
        }
        self.live = 0;
        self.seq = 0;
        self.watermark = SimTime::ZERO;
        self.stats.wheel_high_water = 0;
        self.stats.far_high_water = 0;
        self.stats.live_high_water = 0;
    }

    /// Schedules `event` to fire at absolute time `at`, returning a key
    /// that can [`cancel`](Calendar::cancel) it.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last popped time: scheduling into
    /// the past is a causality bug in the model.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.watermark,
            "event scheduled in the past: at={at}, watermark={}",
            self.watermark
        );
        let seq = self.seq;
        self.seq += 1;
        let (slot, gen) = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                debug_assert!(s.event.is_none());
                s.event = Some(event);
                self.stats.slots_reused += 1;
                (i, s.gen)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("calendar slab overflow");
                self.slots.push(Slot {
                    gen: 0,
                    event: Some(event),
                });
                self.stats.slots_allocated += 1;
                (i, 0)
            }
        };
        self.live += 1;
        if self.live as u64 > self.stats.live_high_water {
            self.stats.live_high_water = self.live as u64;
        }
        let entry = Entry { at, seq, slot, gen };
        if at == self.watermark {
            self.immediate.push_back(entry);
        } else {
            self.queue_insert(entry);
        }
        EventKey { slot, gen }
    }

    /// Routes a future-time entry to the near wheel or the far tier.
    #[inline]
    fn queue_insert(&mut self, entry: Entry) {
        if self.wheel_len == 0 {
            // An empty wheel may be left anchored ahead of the watermark
            // (draining far windows whose events were all cancelled
            // advances the base without a pop). Re-anchor to the
            // watermark's window so routing below stays ordered: every
            // pending far window is strictly beyond the watermark's
            // window, so it remains strictly beyond the re-anchored
            // wheel too.
            let anchor = self.watermark.as_ns() & !(WHEEL_SLOTS as u64 - 1);
            if self.wheel_base != anchor {
                self.wheel_base = anchor;
                self.cursor = anchor;
            }
        }
        let ns = entry.at.as_ns();
        if ns >> WHEEL_BITS == self.wheel_base >> WHEEL_BITS {
            // Current window: straight into its 1 ns bucket.
            let idx = (ns - self.wheel_base) as usize;
            let b = &mut self.buckets[idx];
            b.v.push(entry);
            self.occupied[idx >> 6] |= 1u64 << (idx & 63);
            self.wheel_len += 1;
            if self.wheel_len as u64 > self.stats.wheel_high_water {
                self.stats.wheel_high_water = self.wheel_len as u64;
            }
            // The scan may already have passed this bucket.
            if ns < self.cursor {
                self.cursor = ns;
            }
        } else {
            // Beyond the window: park in the far tier.
            let w = ns >> WHEEL_BITS;
            debug_assert!(w > self.wheel_base >> WHEEL_BITS);
            self.far
                .entry(w)
                .and_modify(|win| {
                    // seq is monotonic, so only a strictly earlier time
                    // can displace the cached minimum.
                    if entry.at < win.min_key.0 {
                        win.min_key = entry.key();
                    }
                    win.v.push(entry);
                })
                .or_insert_with(|| FarWindow {
                    min_key: entry.key(),
                    v: vec![entry],
                });
            self.far_len += 1;
            if self.far_len as u64 > self.stats.far_high_water {
                self.stats.far_high_water = self.far_len as u64;
            }
        }
    }

    /// Cancels a pending event in O(1) (amortized): the slot is freed
    /// immediately and the stale queue record is discarded when it
    /// reaches the front. Returns `true` if the key was live, `false`
    /// if the event already fired, was already cancelled, or the key is
    /// from a previous occupancy of its slot.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let Some(slot) = self.slots.get_mut(key.slot as usize) else {
            return false;
        };
        if slot.gen != key.gen || slot.event.is_none() {
            return false;
        }
        slot.event = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.slot);
        self.live -= 1;
        self.dead += 1;
        // The record may sit in a far window whose cached min_key now
        // points at a dead entry; re-verify once the wheel drains.
        self.far_dirty = true;
        self.purge_front();
        true
    }

    /// True when `entry` still refers to a live event.
    #[inline]
    fn entry_live(&self, entry: &Entry) -> bool {
        let slot = &self.slots[entry.slot as usize];
        slot.gen == entry.gen && slot.event.is_some()
    }

    /// Index of the first occupied bucket at or after absolute ns
    /// `from`. Caller guarantees one exists (`wheel_len > 0` plus the
    /// cursor invariant).
    #[inline]
    fn scan_occupied(&self, from: u64) -> usize {
        let start = (from - self.wheel_base) as usize;
        let mut word = start >> 6;
        let mut bits = self.occupied[word] & (!0u64 << (start & 63));
        loop {
            if bits != 0 {
                return (word << 6) + bits.trailing_zeros() as usize;
            }
            word += 1;
            bits = self.occupied[word];
        }
    }

    /// The front record of the earliest occupied wheel bucket.
    #[inline]
    fn wheel_head(&self) -> Option<&Entry> {
        if self.wheel_len == 0 {
            return None;
        }
        let idx = self.scan_occupied(self.cursor);
        let b = &self.buckets[idx];
        Some(&b.v[b.head as usize])
    }

    /// Pops the front record of wheel bucket `idx` (the caller has
    /// already scanned it up and advanced the cursor to it).
    #[inline]
    fn bucket_pop(&mut self, idx: usize) -> Entry {
        let b = &mut self.buckets[idx];
        let e = b.v[b.head as usize];
        b.head += 1;
        if b.head as usize == b.v.len() {
            b.head = 0;
            b.v.clear();
            self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
        }
        self.wheel_len -= 1;
        e
    }

    /// Advances the wheel to the earliest far window and distributes its
    /// records into buckets. Called only when the wheel is empty; dead
    /// (cancelled) records are dropped during the pass. Returns `false`
    /// if the far tier is exhausted.
    fn advance_to_far(&mut self) -> bool {
        let Some((&w, _)) = self.far.iter().next() else {
            return false;
        };
        let win = self.far.remove(&w).expect("window just observed");
        self.far_len -= win.v.len();
        self.wheel_base = w << WHEEL_BITS;
        self.cursor = self.wheel_base;
        for e in win.v {
            if !self.entry_live(&e) {
                self.dead -= 1;
                continue;
            }
            let idx = (e.at.as_ns() - self.wheel_base) as usize;
            let b = &mut self.buckets[idx];
            b.v.push(e);
            self.occupied[idx >> 6] |= 1u64 << (idx & 63);
            self.wheel_len += 1;
        }
        if self.wheel_len as u64 > self.stats.wheel_high_water {
            self.stats.wheel_high_water = self.wheel_len as u64;
        }
        true
    }

    /// Drops cancelled records from the front of the ring and the wheel,
    /// and re-verifies the earliest far window's cached minimum if a
    /// cancel may have invalidated it — so `peek_time` and
    /// `immediate_is_next` always see live, exact heads without
    /// mutating.
    fn purge_front(&mut self) {
        if self.dead == 0 && !self.far_dirty {
            return;
        }
        while let Some(front) = self.immediate.front() {
            if self.entry_live(front) {
                break;
            }
            self.immediate.pop_front();
            self.dead -= 1;
        }
        while self.wheel_len > 0 {
            let idx = self.scan_occupied(self.cursor);
            let b = &self.buckets[idx];
            let e = b.v[b.head as usize];
            if self.entry_live(&e) {
                break;
            }
            let b = &mut self.buckets[idx];
            b.head += 1;
            if b.head as usize == b.v.len() {
                b.head = 0;
                b.v.clear();
                self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
            }
            self.wheel_len -= 1;
            self.dead -= 1;
            self.cursor = self.wheel_base + idx as u64;
        }
        // Far min_keys are only consulted while the wheel is empty, so
        // that is the only state needing verification (the flag is set
        // by cancels, which the engine hot loop never issues).
        while self.wheel_len == 0 && self.far_dirty {
            let Some((&w, _)) = self.far.iter().next() else {
                self.far_dirty = false;
                break;
            };
            let mut win = self.far.remove(&w).expect("window just observed");
            self.far_len -= win.v.len();
            let before = win.v.len();
            let slots = &self.slots;
            win.v.retain(|e| {
                slots[e.slot as usize].gen == e.gen && slots[e.slot as usize].event.is_some()
            });
            self.dead -= before - win.v.len();
            if win.v.is_empty() {
                continue; // whole window dead: verify the next one
            }
            let mut mk = win.v[0].key();
            for e in &win.v[1..] {
                if e.key() < mk {
                    mk = e.key();
                }
            }
            win.min_key = mk;
            self.far_len += win.v.len();
            self.far.insert(w, win);
            self.far_dirty = false;
        }
    }

    /// The `(time, seq)` key of the earliest non-immediate record. All
    /// wheel times precede all far times (the far tier only holds
    /// windows beyond the wheel's), so the wheel head wins outright
    /// whenever the wheel is occupied.
    #[inline]
    fn queue_head_key(&self) -> Option<(SimTime, u64)> {
        if let Some(h) = self.wheel_head() {
            return Some(h.key());
        }
        self.far.values().next().map(|w| w.min_key)
    }

    /// Removes and returns the earliest event, advancing the causality
    /// watermark to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = if self.wheel_len > 0 {
            // One bitmap scan serves both the ordering check against
            // the immediate ring and the pop itself; advancing the
            // cursor is safe either way (no occupied bucket precedes
            // `idx`).
            let idx = self.scan_occupied(self.cursor);
            self.cursor = self.wheel_base + idx as u64;
            let b = &self.buckets[idx];
            let head_key = b.v[b.head as usize].key();
            match self.immediate.front() {
                Some(f) if f.key() < head_key => {
                    self.immediate.pop_front().expect("front just observed")
                }
                _ => self.bucket_pop(idx),
            }
        } else if !self.immediate.is_empty() {
            // Immediate entries sit at the watermark; far windows lie
            // strictly beyond the wheel's window, so the ring always
            // wins while the wheel is empty.
            self.immediate.pop_front().expect("nonempty ring")
        } else {
            loop {
                if !self.advance_to_far() {
                    // Distributing all-dead far windows above may have
                    // advanced the (empty) wheel past the watermark;
                    // re-anchor it so later schedules route against the
                    // watermark's own window again.
                    self.wheel_base = self.watermark.as_ns() & !(WHEEL_SLOTS as u64 - 1);
                    self.cursor = self.wheel_base;
                    return None;
                }
                // A freshly distributed window can be empty if every
                // record in it was cancelled.
                if self.wheel_len > 0 {
                    let idx = self.scan_occupied(self.cursor);
                    self.cursor = self.wheel_base + idx as u64;
                    break self.bucket_pop(idx);
                }
            }
        };
        let slot = &mut self.slots[entry.slot as usize];
        debug_assert!(slot.gen == entry.gen && slot.event.is_some());
        let event = slot.event.take().expect("live entry has an event");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        self.watermark = entry.at;
        self.purge_front();
        Some((entry.at, event))
    }

    /// Pops every event with timestamp `<= until` into `out` (appending,
    /// in delivery order), advancing the watermark as [`Calendar::pop`]
    /// would. Returns the number of events moved.
    ///
    /// This is the engine inner loop's batch fast path: draining one
    /// instant's events in a block lets the caller iterate a flat buffer
    /// while newly scheduled same-instant events (which always carry
    /// higher sequence numbers) land in the next batch — the delivery
    /// order is identical to repeated `pop` calls.
    pub fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let mut n = 0;
        while self.peek_time().is_some_and(|t| t <= until) {
            // The unwrap cannot fail: peek_time just saw a live event.
            out.push(self.pop().expect("event present"));
            n += 1;
        }
        n
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        // purge_front maintains the invariant that the ring and wheel
        // heads are live and the consulted far min is exact, so peeking
        // needs no skipping.
        let queued = self.queue_head_key().map(|(t, _)| t);
        match (self.immediate.front(), queued) {
            (Some(f), Some(q)) => Some(f.at.min(q)),
            (Some(f), None) => Some(f.at),
            (None, q) => q,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The latest time returned by [`Calendar::pop`] so far.
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Cumulative event-pool behaviour plus per-run occupancy marks: how
    /// many slab slots were ever allocated versus how many schedules
    /// were served by recycling, and the high-water occupancy of each
    /// queue tier. A steady-state pipeline should show `slots_allocated`
    /// plateau at its peak concurrency while `slots_reused` keeps
    /// growing.
    pub fn pool_stats(&self) -> PoolStats {
        self.stats
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(30), 3);
        cal.schedule(SimTime::from_ns(10), 1);
        cal.schedule(SimTime::from_ns(20), 2);
        assert_eq!(cal.pop(), Some((SimTime::from_ns(10), 1)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(20), 2)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(30), 3)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(cal.pop().unwrap().1, i);
        }
    }

    #[test]
    fn immediate_fast_path_preserves_fifo_with_wheel_ties() {
        let mut cal = Calendar::new();
        // Two wheel events at t=10, scheduled before the watermark gets
        // there (seq 0 and 1).
        cal.schedule(SimTime::from_ns(10), "wheel-a");
        cal.schedule(SimTime::from_ns(10), "wheel-b");
        assert_eq!(cal.pop().unwrap().1, "wheel-a"); // watermark now 10
                                                     // An immediate event at the watermark (seq 2) must NOT overtake
                                                     // the equal-time wheel event with the lower sequence number.
        cal.schedule(SimTime::from_ns(10), "imm-c");
        cal.schedule(SimTime::from_ns(11), "late");
        cal.schedule(SimTime::from_ns(10), "imm-d");
        assert_eq!(cal.pop().unwrap().1, "wheel-b");
        assert_eq!(cal.pop().unwrap().1, "imm-c");
        assert_eq!(cal.pop().unwrap().1, "imm-d");
        assert_eq!(cal.pop().unwrap().1, "late");
        assert!(cal.is_empty());
    }

    #[test]
    fn immediate_events_at_time_zero() {
        // Before any pop the watermark is zero, so t=0 events take the
        // fast path straight away — and still interleave FIFO.
        let mut cal = Calendar::new();
        cal.schedule(SimTime::ZERO, 0);
        cal.schedule(SimTime::from_ns(5), 2);
        cal.schedule(SimTime::ZERO, 1);
        assert_eq!(cal.len(), 3);
        assert_eq!(cal.peek_time(), Some(SimTime::ZERO));
        assert_eq!(cal.pop(), Some((SimTime::ZERO, 0)));
        assert_eq!(cal.pop(), Some((SimTime::ZERO, 1)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(5), 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(10), ());
        cal.pop();
        cal.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn watermark_tracks_now() {
        let mut cal = Calendar::new();
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.schedule(SimTime::from_ns(42), ());
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_ns(42));
        // Scheduling at the current time is allowed.
        cal.schedule(cal.now() + Duration::ZERO, ());
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(42)));
    }

    #[test]
    fn drain_until_batches_one_instant_fifo() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(10), 'a');
        cal.schedule(SimTime::from_ns(10), 'b');
        cal.schedule(SimTime::from_ns(20), 'c');
        let mut buf = Vec::new();
        let n = cal.drain_until(SimTime::from_ns(10), &mut buf);
        assert_eq!(n, 2);
        assert_eq!(
            buf,
            vec![(SimTime::from_ns(10), 'a'), (SimTime::from_ns(10), 'b')]
        );
        // The watermark advanced with the drained events...
        assert_eq!(cal.now(), SimTime::from_ns(10));
        // ...and same-instant events scheduled afterwards still deliver
        // after the batch (higher seq), before later times.
        cal.schedule(SimTime::from_ns(10), 'd');
        buf.clear();
        assert_eq!(cal.drain_until(SimTime::from_ns(30), &mut buf), 2);
        assert_eq!(
            buf,
            vec![(SimTime::from_ns(10), 'd'), (SimTime::from_ns(20), 'c')]
        );
        assert!(cal.is_empty());
    }

    #[test]
    fn drain_until_advances_watermark_monotonically() {
        let mut cal = Calendar::new();
        for t in [5u64, 1, 9, 1, 5] {
            cal.schedule(SimTime::from_ns(t), t);
        }
        let mut buf = Vec::new();
        cal.drain_until(SimTime::from_ns(5), &mut buf);
        let times: Vec<u64> = buf.iter().map(|&(t, _)| t.as_ns()).collect();
        assert_eq!(times, vec![1, 1, 5, 5]);
        assert_eq!(cal.now(), SimTime::from_ns(5));
        assert_eq!(cal.len(), 1);
        // Causality: the watermark now rejects anything before 5 ns.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cal.schedule(SimTime::from_ns(3), 3);
        }));
        assert!(r.is_err(), "pre-watermark schedule must panic after drain");
    }

    #[test]
    fn drain_until_on_empty_is_noop() {
        let mut cal: Calendar<()> = Calendar::with_capacity(16);
        let mut buf = Vec::new();
        assert_eq!(cal.drain_until(SimTime::from_ns(100), &mut buf), 0);
        assert!(buf.is_empty());
        cal.reserve(32);
        assert!(cal.is_empty());
    }

    #[test]
    fn cancel_removes_event_everywhere() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_ns(10), 'a');
        let b = cal.schedule(SimTime::from_ns(10), 'b');
        cal.schedule(SimTime::from_ns(20), 'c');
        assert!(cal.cancel(a));
        assert_eq!(cal.len(), 2);
        // Cancelling twice (or after the fact) is a no-op.
        assert!(!cal.cancel(a));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(10), 'b')));
        assert!(!cal.cancel(b), "popped event is no longer cancellable");
        // Immediate-ring events cancel too.
        let d = cal.schedule(SimTime::from_ns(10), 'd');
        assert!(cal.cancel(d));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(20), 'c')));
        assert_eq!(cal.pop(), None);
        assert!(cal.is_empty());
    }

    #[test]
    fn cancelled_head_keeps_peek_accurate() {
        let mut cal = Calendar::new();
        let early = cal.schedule(SimTime::from_ns(5), 'x');
        cal.schedule(SimTime::from_ns(9), 'y');
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(5)));
        assert!(cal.cancel(early));
        // The cancelled head must not leak into peek_time or drain.
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(9)));
        let mut buf = Vec::new();
        assert_eq!(cal.drain_until(SimTime::from_ns(9), &mut buf), 1);
        assert_eq!(buf, vec![(SimTime::from_ns(9), 'y')]);
    }

    #[test]
    fn cancelled_far_min_keeps_peek_accurate() {
        // The far tier caches each window's min key; cancelling that
        // exact event must not leak the stale minimum into peek_time.
        let span = WHEEL_SLOTS as u64;
        let mut cal = Calendar::new();
        let early = cal.schedule(SimTime::from_ns(3 * span + 7), 'x');
        cal.schedule(SimTime::from_ns(3 * span + 900), 'y');
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(3 * span + 7)));
        assert!(cal.cancel(early));
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(3 * span + 900)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(3 * span + 900), 'y')));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn far_windows_deliver_in_time_seq_order() {
        // Spread events across several wheel windows, with ties inside
        // a distant window, and interleave a post-distribution insert.
        let span = WHEEL_SLOTS as u64;
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(2 * span + 5), "far-a"); // seq 0
        cal.schedule(SimTime::from_ns(5), "near"); // seq 1
        cal.schedule(SimTime::from_ns(2 * span + 5), "far-b"); // seq 2
        cal.schedule(SimTime::from_ns(7 * span + 1), "farther"); // seq 3
        assert_eq!(cal.pop().unwrap().1, "near");
        assert_eq!(cal.pop().unwrap().1, "far-a");
        // The wheel now covers window 2: same-bucket inserts append
        // after the descended far records (higher seq).
        cal.schedule(SimTime::from_ns(2 * span + 5), "late-tie");
        assert_eq!(cal.pop().unwrap().1, "far-b");
        assert_eq!(cal.pop().unwrap().1, "late-tie");
        assert_eq!(cal.pop().unwrap().1, "farther");
        assert!(cal.is_empty());
    }

    #[test]
    fn stale_keys_never_touch_reused_slots() {
        let mut cal = Calendar::new();
        let old = cal.schedule(SimTime::from_ns(1), 'a');
        cal.pop();
        // The slot is recycled for a new event under a new generation.
        let fresh = cal.schedule(SimTime::from_ns(2), 'b');
        assert_eq!(old.slot, fresh.slot, "slot should be recycled");
        assert!(!cal.cancel(old), "stale key must be inert");
        assert_eq!(cal.pop(), Some((SimTime::from_ns(2), 'b')));
    }

    #[test]
    fn pool_reuses_slots_in_steady_state() {
        let mut cal = Calendar::new();
        // A pipeline with bounded concurrency: at most 4 outstanding.
        for i in 0..4u64 {
            cal.schedule(SimTime::from_ns(i), i);
        }
        for i in 4..1000u64 {
            let (_, _) = cal.pop().unwrap();
            cal.schedule(SimTime::from_ns(i), i);
        }
        while cal.pop().is_some() {}
        let stats = cal.pool_stats();
        assert_eq!(
            stats.slots_allocated, 4,
            "slab must plateau at peak concurrency"
        );
        assert_eq!(stats.slots_reused, 996, "steady state must recycle");
        assert_eq!(stats.live_high_water, 4, "peak concurrency is 4");
    }

    #[test]
    fn high_water_marks_track_tier_occupancy() {
        let span = WHEEL_SLOTS as u64;
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(1), 'a');
        cal.schedule(SimTime::from_ns(2), 'b');
        cal.schedule(SimTime::from_ns(span + 1), 'c'); // far tier
        let s = cal.pool_stats();
        assert_eq!(s.wheel_high_water, 2);
        assert_eq!(s.far_high_water, 1);
        assert_eq!(s.live_high_water, 3);
        while cal.pop().is_some() {}
        // Marks are per-run: reset rewinds them but not the slot totals.
        cal.reset();
        let s = cal.pool_stats();
        assert_eq!(s.wheel_high_water, 0);
        assert_eq!(s.far_high_water, 0);
        assert_eq!(s.live_high_water, 0);
        assert_eq!(s.slots_allocated, 3);
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let run = |cal: &mut Calendar<u64>| -> Vec<(u64, u64)> {
            for t in [7u64, 3, 7, 1] {
                cal.schedule(SimTime::from_ns(t), t * 10);
            }
            let mut out = Vec::new();
            while let Some((t, e)) = cal.pop() {
                out.push((t.as_ns(), e));
            }
            out
        };
        let mut fresh = Calendar::new();
        let expect = run(&mut fresh);
        let mut reused = Calendar::new();
        let _ = run(&mut reused);
        reused.reset();
        assert_eq!(reused.now(), SimTime::ZERO);
        assert!(reused.is_empty());
        assert_eq!(run(&mut reused), expect);
        // The second pass allocated nothing new.
        assert_eq!(reused.pool_stats().slots_allocated, 4);
        assert!(reused.pool_stats().slots_reused >= 4);
    }

    #[test]
    fn empty_pop_after_cancelled_far_windows_reanchors_wheel() {
        // Cancelling every far event and then popping to exhaustion
        // used to leave the (empty) wheel anchored in a future window:
        // a later schedule into an earlier window would then misroute
        // and deliver out of order.
        let span = WHEEL_SLOTS as u64;
        let mut cal = Calendar::new();
        let k1 = cal.schedule(SimTime::from_ns(5 * span + 7), 1u32);
        let k2 = cal.schedule(SimTime::from_ns(9 * span + 3), 2);
        assert!(cal.cancel(k1));
        assert!(cal.cancel(k2));
        assert_eq!(cal.pop(), None);
        // Earlier window first, then the old (stale-anchor) window: the
        // pop order must follow timestamps, not wheel-residency.
        cal.schedule(SimTime::from_ns(2 * span + 1), 3);
        cal.schedule(SimTime::from_ns(5 * span + 8), 4);
        assert_eq!(cal.pop(), Some((SimTime::from_ns(2 * span + 1), 3)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(5 * span + 8), 4)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn reset_clears_far_tier() {
        let span = WHEEL_SLOTS as u64;
        let run = |cal: &mut Calendar<u32>| -> Vec<u64> {
            cal.schedule(SimTime::from_ns(4 * span + 2), 1);
            cal.schedule(SimTime::from_ns(9), 2);
            cal.schedule(SimTime::from_ns(span - 1), 3);
            let mut out = Vec::new();
            while let Some((t, _)) = cal.pop() {
                out.push(t.as_ns());
            }
            out
        };
        let mut cal = Calendar::new();
        let expect = run(&mut cal);
        cal.reset();
        assert_eq!(run(&mut cal), expect);
        assert_eq!(cal.pool_stats().slots_allocated, 3);
    }
}
