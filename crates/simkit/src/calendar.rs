//! The event calendar: a time-ordered priority queue of simulation events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered event calendar.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO tie-breaking via a monotonically increasing
/// sequence number), which keeps simulations deterministic regardless of
/// heap internals.
///
/// # Examples
///
/// ```
/// use simkit::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_ns(10), 'b');
/// cal.schedule(SimTime::from_ns(10), 'c');
/// cal.schedule(SimTime::from_ns(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    /// Latest time popped so far; used to detect causality violations.
    watermark: SimTime,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Calendar { heap: BinaryHeap::new(), seq: 0, watermark: SimTime::ZERO }
    }

    /// Creates an empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Calendar { heap: BinaryHeap::with_capacity(cap), seq: 0, watermark: SimTime::ZERO }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last popped time: scheduling into
    /// the past is a causality bug in the model.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.watermark,
            "event scheduled in the past: at={at}, watermark={}",
            self.watermark
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, advancing the causality
    /// watermark to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.watermark = e.at;
            (e.at, e.event)
        })
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The latest time returned by [`Calendar::pop`] so far.
    pub fn now(&self) -> SimTime {
        self.watermark
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(30), 3);
        cal.schedule(SimTime::from_ns(10), 1);
        cal.schedule(SimTime::from_ns(20), 2);
        assert_eq!(cal.pop(), Some((SimTime::from_ns(10), 1)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(20), 2)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(30), 3)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(cal.pop().unwrap().1, i);
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(10), ());
        cal.pop();
        cal.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn watermark_tracks_now() {
        let mut cal = Calendar::new();
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.schedule(SimTime::from_ns(42), ());
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_ns(42));
        // Scheduling at the current time is allowed.
        cal.schedule(cal.now() + Duration::ZERO, ());
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(42)));
    }
}
