//! The event calendar: a time-ordered priority queue of simulation events.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// A time-ordered event calendar.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO tie-breaking via a monotonically increasing
/// sequence number), which keeps simulations deterministic regardless of
/// heap internals.
///
/// # Fast path
///
/// Discrete-event models schedule a large share of their events at the
/// *current* instant (zero-delay pipeline handoffs). Those events bypass
/// the binary heap entirely and land in a FIFO ring of "immediate"
/// events, so the common schedule/pop pair is O(1) with no re-heapify
/// traffic. Ordering is still globally FIFO-per-instant: the pop path
/// compares `(time, seq)` across both queues, and every event scheduled
/// at the watermark necessarily carries a higher sequence number than
/// any equal-time event still in the heap.
///
/// # Examples
///
/// ```
/// use simkit::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_ns(10), 'b');
/// cal.schedule(SimTime::from_ns(10), 'c');
/// cal.schedule(SimTime::from_ns(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Events scheduled at exactly the watermark instant, FIFO. All
    /// entries here share `at == watermark` (the watermark cannot pass
    /// a pending event).
    immediate: VecDeque<Entry<E>>,
    seq: u64,
    /// Latest time popped so far; used to detect causality violations.
    watermark: SimTime,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            immediate: VecDeque::new(),
            seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Creates an empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Calendar {
            heap: BinaryHeap::with_capacity(cap),
            immediate: VecDeque::with_capacity(cap.min(1024)),
            seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Reserves capacity for at least `additional` more events, so a
    /// burst of scheduling (e.g. a mini-batch fan-out) does not pay
    /// repeated reallocation.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last popped time: scheduling into
    /// the past is a causality bug in the model.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.watermark,
            "event scheduled in the past: at={at}, watermark={}",
            self.watermark
        );
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { at, seq, event };
        if at == self.watermark {
            self.immediate.push_back(entry);
        } else {
            self.heap.push(Reverse(entry));
        }
    }

    /// True when the next event in FIFO-per-instant order sits in the
    /// immediate ring rather than the heap.
    fn immediate_is_next(&self) -> bool {
        match (self.immediate.front(), self.heap.peek()) {
            (Some(_), None) => true,
            (Some(f), Some(Reverse(h))) => (f.at, f.seq) < (h.at, h.seq),
            (None, _) => false,
        }
    }

    /// Removes and returns the earliest event, advancing the causality
    /// watermark to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = if self.immediate_is_next() {
            self.immediate.pop_front()
        } else {
            self.heap.pop().map(|Reverse(e)| e)
        }?;
        self.watermark = entry.at;
        Some((entry.at, entry.event))
    }

    /// Pops every event with timestamp `<= until` into `out` (appending,
    /// in delivery order), advancing the watermark as [`Calendar::pop`]
    /// would. Returns the number of events moved.
    ///
    /// This is the engine inner loop's batch fast path: draining one
    /// instant's events in a block lets the caller iterate a flat buffer
    /// while newly scheduled same-instant events (which always carry
    /// higher sequence numbers) land in the next batch — the delivery
    /// order is identical to repeated `pop` calls.
    pub fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let mut n = 0;
        while self.peek_time().is_some_and(|t| t <= until) {
            // The unwrap cannot fail: peek_time just saw an event.
            out.push(self.pop().expect("event present"));
            n += 1;
        }
        n
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.immediate.front(), self.heap.peek()) {
            (Some(f), Some(Reverse(h))) => Some(f.at.min(h.at)),
            (Some(f), None) => Some(f.at),
            (None, Some(Reverse(h))) => Some(h.at),
            (None, None) => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.immediate.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.immediate.is_empty()
    }

    /// The latest time returned by [`Calendar::pop`] so far.
    pub fn now(&self) -> SimTime {
        self.watermark
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(30), 3);
        cal.schedule(SimTime::from_ns(10), 1);
        cal.schedule(SimTime::from_ns(20), 2);
        assert_eq!(cal.pop(), Some((SimTime::from_ns(10), 1)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(20), 2)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(30), 3)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(cal.pop().unwrap().1, i);
        }
    }

    #[test]
    fn immediate_fast_path_preserves_fifo_with_heap_ties() {
        let mut cal = Calendar::new();
        // Two heap events at t=10, scheduled before the watermark gets
        // there (seq 0 and 1).
        cal.schedule(SimTime::from_ns(10), "heap-a");
        cal.schedule(SimTime::from_ns(10), "heap-b");
        assert_eq!(cal.pop().unwrap().1, "heap-a"); // watermark now 10
                                                    // An immediate event at the watermark (seq 2) must NOT overtake
                                                    // the equal-time heap event with the lower sequence number.
        cal.schedule(SimTime::from_ns(10), "imm-c");
        cal.schedule(SimTime::from_ns(11), "late");
        cal.schedule(SimTime::from_ns(10), "imm-d");
        assert_eq!(cal.pop().unwrap().1, "heap-b");
        assert_eq!(cal.pop().unwrap().1, "imm-c");
        assert_eq!(cal.pop().unwrap().1, "imm-d");
        assert_eq!(cal.pop().unwrap().1, "late");
        assert!(cal.is_empty());
    }

    #[test]
    fn immediate_events_at_time_zero() {
        // Before any pop the watermark is zero, so t=0 events take the
        // fast path straight away — and still interleave FIFO.
        let mut cal = Calendar::new();
        cal.schedule(SimTime::ZERO, 0);
        cal.schedule(SimTime::from_ns(5), 2);
        cal.schedule(SimTime::ZERO, 1);
        assert_eq!(cal.len(), 3);
        assert_eq!(cal.peek_time(), Some(SimTime::ZERO));
        assert_eq!(cal.pop(), Some((SimTime::ZERO, 0)));
        assert_eq!(cal.pop(), Some((SimTime::ZERO, 1)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(5), 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(10), ());
        cal.pop();
        cal.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn watermark_tracks_now() {
        let mut cal = Calendar::new();
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.schedule(SimTime::from_ns(42), ());
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_ns(42));
        // Scheduling at the current time is allowed.
        cal.schedule(cal.now() + Duration::ZERO, ());
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(42)));
    }

    #[test]
    fn drain_until_batches_one_instant_fifo() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(10), 'a');
        cal.schedule(SimTime::from_ns(10), 'b');
        cal.schedule(SimTime::from_ns(20), 'c');
        let mut buf = Vec::new();
        let n = cal.drain_until(SimTime::from_ns(10), &mut buf);
        assert_eq!(n, 2);
        assert_eq!(
            buf,
            vec![(SimTime::from_ns(10), 'a'), (SimTime::from_ns(10), 'b')]
        );
        // The watermark advanced with the drained events...
        assert_eq!(cal.now(), SimTime::from_ns(10));
        // ...and same-instant events scheduled afterwards still deliver
        // after the batch (higher seq), before later times.
        cal.schedule(SimTime::from_ns(10), 'd');
        buf.clear();
        assert_eq!(cal.drain_until(SimTime::from_ns(30), &mut buf), 2);
        assert_eq!(
            buf,
            vec![(SimTime::from_ns(10), 'd'), (SimTime::from_ns(20), 'c')]
        );
        assert!(cal.is_empty());
    }

    #[test]
    fn drain_until_advances_watermark_monotonically() {
        let mut cal = Calendar::new();
        for t in [5u64, 1, 9, 1, 5] {
            cal.schedule(SimTime::from_ns(t), t);
        }
        let mut buf = Vec::new();
        cal.drain_until(SimTime::from_ns(5), &mut buf);
        let times: Vec<u64> = buf.iter().map(|&(t, _)| t.as_ns()).collect();
        assert_eq!(times, vec![1, 1, 5, 5]);
        assert_eq!(cal.now(), SimTime::from_ns(5));
        assert_eq!(cal.len(), 1);
        // Causality: the watermark now rejects anything before 5 ns.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cal.schedule(SimTime::from_ns(3), 3);
        }));
        assert!(r.is_err(), "pre-watermark schedule must panic after drain");
    }

    #[test]
    fn drain_until_on_empty_is_noop() {
        let mut cal: Calendar<()> = Calendar::with_capacity(16);
        let mut buf = Vec::new();
        assert_eq!(cal.drain_until(SimTime::from_ns(100), &mut buf), 0);
        assert!(buf.is_empty());
        cal.reserve(32);
        assert!(cal.is_empty());
    }
}
