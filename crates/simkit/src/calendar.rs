//! The event calendar: a time-ordered priority queue of simulation events.

use std::collections::VecDeque;

use crate::time::SimTime;

/// A generation-tagged handle to a scheduled event.
///
/// Returned by [`Calendar::schedule`]; pass it to [`Calendar::cancel`]
/// to remove the event before it fires. The generation tag makes stale
/// handles harmless: once the event has been popped (or cancelled) its
/// slot is recycled under a new generation, so an old key can never
/// cancel the slot's next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    slot: u32,
    gen: u32,
}

/// Allocation behaviour of the calendar's event pool (see
/// [`Calendar::pool_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Slots created by growing the slab (each one is a real
    /// allocation-bearing event at some point in the run).
    pub slots_allocated: u64,
    /// Schedules served by recycling a previously freed slot — the
    /// allocations the pool avoided.
    pub slots_reused: u64,
}

/// One slab slot: the event payload plus its current generation.
#[derive(Debug, Clone)]
struct Slot<E> {
    gen: u32,
    event: Option<E>,
}

/// A small Copy record ordered by `(at, seq)`; the payload stays in the
/// slab so heap sift operations move 24 bytes, not whole events.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl Entry {
    /// The total order the calendar delivers in. `(at, seq)` is unique
    /// (seq is monotonic), so every correct min-heap pops the exact
    /// same sequence — the heap's internal layout can never leak into
    /// simulation results.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A 4-ary min-heap of [`Entry`] records keyed by `(at, seq)`.
///
/// Discrete-event pops dominate the simulator's hot path, and a pop
/// sifts all the way to a leaf. With 24-byte entries a 4-ary layout
/// halves the tree depth of a binary heap and keeps each level's
/// children in one or two cache lines, which measurably shortens the
/// engine inner loop at the heap depths the platforms reach (10³–10⁵
/// pending events).
#[derive(Debug, Clone, Default)]
struct EntryHeap {
    v: Vec<Entry>,
}

impl EntryHeap {
    const ARITY: usize = 4;

    fn with_capacity(cap: usize) -> Self {
        EntryHeap {
            v: Vec::with_capacity(cap),
        }
    }

    fn clear(&mut self) {
        self.v.clear();
    }

    fn reserve(&mut self, additional: usize) {
        self.v.reserve(additional);
    }

    #[inline]
    fn peek(&self) -> Option<&Entry> {
        self.v.first()
    }

    fn push(&mut self, e: Entry) {
        self.v.push(e);
        let mut i = self.v.len() - 1;
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if e.key() < self.v[parent].key() {
                self.v[i] = self.v[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.v[i] = e;
    }

    fn pop(&mut self) -> Option<Entry> {
        let top = *self.v.first()?;
        let last = self.v.pop().expect("non-empty");
        if self.v.is_empty() {
            return Some(top);
        }
        // Hole-based sift-down: move `last` toward a leaf, shifting the
        // smallest child up instead of swapping (one store per level).
        let len = self.v.len();
        let mut i = 0;
        loop {
            let first_child = i * Self::ARITY + 1;
            if first_child >= len {
                break;
            }
            let end = (first_child + Self::ARITY).min(len);
            let mut best = first_child;
            for c in first_child + 1..end {
                if self.v[c].key() < self.v[best].key() {
                    best = c;
                }
            }
            if self.v[best].key() < last.key() {
                self.v[i] = self.v[best];
                i = best;
            } else {
                break;
            }
        }
        self.v[i] = last;
        Some(top)
    }
}

/// A time-ordered event calendar.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO tie-breaking via a monotonically increasing
/// sequence number), which keeps simulations deterministic regardless of
/// heap internals.
///
/// # Event pool
///
/// Payloads live in a slab with a free list; the heap and the
/// immediate ring order small `Copy` records pointing into it. In steady
/// state — a pipeline scheduling roughly as many events as it pops — the
/// slab stops growing entirely and every schedule recycles a freed slot,
/// so the inner loop performs no allocator traffic ([`pool_stats`]
/// quantifies this). [`schedule`] returns a generation-tagged
/// [`EventKey`] so callers can [`cancel`] in O(1): the slot's generation
/// is bumped and the stale heap record is skipped when it surfaces.
///
/// # Fast path
///
/// Discrete-event models schedule a large share of their events at the
/// *current* instant (zero-delay pipeline handoffs). Those events bypass
/// the heap entirely and land in a FIFO ring of "immediate"
/// events, so the common schedule/pop pair is O(1) with no re-heapify
/// traffic. Ordering is still globally FIFO-per-instant: the pop path
/// compares `(time, seq)` across both queues, and every event scheduled
/// at the watermark necessarily carries a higher sequence number than
/// any equal-time event still in the heap.
///
/// [`schedule`]: Calendar::schedule
/// [`cancel`]: Calendar::cancel
/// [`pool_stats`]: Calendar::pool_stats
///
/// # Examples
///
/// ```
/// use simkit::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_ns(10), 'b');
/// cal.schedule(SimTime::from_ns(10), 'c');
/// cal.schedule(SimTime::from_ns(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct Calendar<E> {
    heap: EntryHeap,
    /// Events scheduled at exactly the watermark instant, FIFO. All
    /// live entries here share `at == watermark` (the watermark cannot
    /// pass a pending event).
    immediate: VecDeque<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    seq: u64,
    /// Latest time popped so far; used to detect causality violations.
    watermark: SimTime,
    stats: PoolStats,
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Calendar {
            heap: EntryHeap::default(),
            immediate: VecDeque::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            seq: 0,
            watermark: SimTime::ZERO,
            stats: PoolStats::default(),
        }
    }

    /// Creates an empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Calendar {
            heap: EntryHeap::with_capacity(cap),
            immediate: VecDeque::with_capacity(cap.min(1024)),
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap.min(1024)),
            live: 0,
            seq: 0,
            watermark: SimTime::ZERO,
            stats: PoolStats::default(),
        }
    }

    /// Reserves capacity for at least `additional` more events, so a
    /// burst of scheduling (e.g. a mini-batch fan-out) does not pay
    /// repeated reallocation.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        let extra = additional.saturating_sub(self.free.len());
        self.slots.reserve(extra);
    }

    /// Empties the calendar and rewinds the causality watermark and the
    /// tie-breaking sequence to zero, **keeping** the slab, free list
    /// and heap capacity. A reset calendar behaves exactly like a fresh
    /// one (identical pop order for identical schedules), which is what
    /// lets one calendar be reused across independent simulation runs
    /// without re-growing its pool each time.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.immediate.clear();
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.event = None;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(i as u32);
        }
        self.live = 0;
        self.seq = 0;
        self.watermark = SimTime::ZERO;
    }

    /// Schedules `event` to fire at absolute time `at`, returning a key
    /// that can [`cancel`](Calendar::cancel) it.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last popped time: scheduling into
    /// the past is a causality bug in the model.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.watermark,
            "event scheduled in the past: at={at}, watermark={}",
            self.watermark
        );
        let seq = self.seq;
        self.seq += 1;
        let (slot, gen) = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                debug_assert!(s.event.is_none());
                s.event = Some(event);
                self.stats.slots_reused += 1;
                (i, s.gen)
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("calendar slab overflow");
                self.slots.push(Slot {
                    gen: 0,
                    event: Some(event),
                });
                self.stats.slots_allocated += 1;
                (i, 0)
            }
        };
        self.live += 1;
        let entry = Entry { at, seq, slot, gen };
        if at == self.watermark {
            self.immediate.push_back(entry);
        } else {
            self.heap.push(entry);
        }
        EventKey { slot, gen }
    }

    /// Cancels a pending event in O(1) (amortized): the slot is freed
    /// immediately and the stale queue record is discarded when it
    /// reaches the front. Returns `true` if the key was live, `false`
    /// if the event already fired, was already cancelled, or the key is
    /// from a previous occupancy of its slot.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let Some(slot) = self.slots.get_mut(key.slot as usize) else {
            return false;
        };
        if slot.gen != key.gen || slot.event.is_none() {
            return false;
        }
        slot.event = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.slot);
        self.live -= 1;
        self.purge_front();
        true
    }

    /// True when `entry` still refers to a live event.
    #[inline]
    fn entry_live(&self, entry: &Entry) -> bool {
        let slot = &self.slots[entry.slot as usize];
        slot.gen == entry.gen && slot.event.is_some()
    }

    /// Drops cancelled records from the front of both queues so `peek`
    /// and `pop` always see a live head.
    fn purge_front(&mut self) {
        while let Some(front) = self.immediate.front() {
            if self.entry_live(front) {
                break;
            }
            self.immediate.pop_front();
        }
        while let Some(front) = self.heap.peek() {
            if self.entry_live(front) {
                break;
            }
            self.heap.pop();
        }
    }

    /// True when the next event in FIFO-per-instant order sits in the
    /// immediate ring rather than the heap.
    fn immediate_is_next(&self) -> bool {
        match (self.immediate.front(), self.heap.peek()) {
            (Some(_), None) => true,
            (Some(f), Some(h)) => f.key() < h.key(),
            (None, _) => false,
        }
    }

    /// Removes and returns the earliest event, advancing the causality
    /// watermark to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = if self.immediate_is_next() {
            self.immediate.pop_front()
        } else {
            self.heap.pop()
        }?;
        let slot = &mut self.slots[entry.slot as usize];
        debug_assert!(slot.gen == entry.gen && slot.event.is_some());
        let event = slot.event.take().expect("live entry has an event");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        self.watermark = entry.at;
        self.purge_front();
        Some((entry.at, event))
    }

    /// Pops every event with timestamp `<= until` into `out` (appending,
    /// in delivery order), advancing the watermark as [`Calendar::pop`]
    /// would. Returns the number of events moved.
    ///
    /// This is the engine inner loop's batch fast path: draining one
    /// instant's events in a block lets the caller iterate a flat buffer
    /// while newly scheduled same-instant events (which always carry
    /// higher sequence numbers) land in the next batch — the delivery
    /// order is identical to repeated `pop` calls.
    pub fn drain_until(&mut self, until: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let mut n = 0;
        while self.peek_time().is_some_and(|t| t <= until) {
            // The unwrap cannot fail: peek_time just saw a live event.
            out.push(self.pop().expect("event present"));
            n += 1;
        }
        n
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        // purge_front maintains the invariant that both queue heads are
        // live, so peeking needs no skipping.
        match (self.immediate.front(), self.heap.peek()) {
            (Some(f), Some(h)) => Some(f.at.min(h.at)),
            (Some(f), None) => Some(f.at),
            (None, Some(h)) => Some(h.at),
            (None, None) => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The latest time returned by [`Calendar::pop`] so far.
    pub fn now(&self) -> SimTime {
        self.watermark
    }

    /// Cumulative event-pool behaviour: how many slab slots were ever
    /// allocated versus how many schedules were served by recycling. A
    /// steady-state pipeline should show `slots_allocated` plateau at
    /// its peak concurrency while `slots_reused` keeps growing.
    pub fn pool_stats(&self) -> PoolStats {
        self.stats
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(30), 3);
        cal.schedule(SimTime::from_ns(10), 1);
        cal.schedule(SimTime::from_ns(20), 2);
        assert_eq!(cal.pop(), Some((SimTime::from_ns(10), 1)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(20), 2)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(30), 3)));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut cal = Calendar::new();
        for i in 0..100 {
            cal.schedule(SimTime::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(cal.pop().unwrap().1, i);
        }
    }

    #[test]
    fn immediate_fast_path_preserves_fifo_with_heap_ties() {
        let mut cal = Calendar::new();
        // Two heap events at t=10, scheduled before the watermark gets
        // there (seq 0 and 1).
        cal.schedule(SimTime::from_ns(10), "heap-a");
        cal.schedule(SimTime::from_ns(10), "heap-b");
        assert_eq!(cal.pop().unwrap().1, "heap-a"); // watermark now 10
                                                    // An immediate event at the watermark (seq 2) must NOT overtake
                                                    // the equal-time heap event with the lower sequence number.
        cal.schedule(SimTime::from_ns(10), "imm-c");
        cal.schedule(SimTime::from_ns(11), "late");
        cal.schedule(SimTime::from_ns(10), "imm-d");
        assert_eq!(cal.pop().unwrap().1, "heap-b");
        assert_eq!(cal.pop().unwrap().1, "imm-c");
        assert_eq!(cal.pop().unwrap().1, "imm-d");
        assert_eq!(cal.pop().unwrap().1, "late");
        assert!(cal.is_empty());
    }

    #[test]
    fn immediate_events_at_time_zero() {
        // Before any pop the watermark is zero, so t=0 events take the
        // fast path straight away — and still interleave FIFO.
        let mut cal = Calendar::new();
        cal.schedule(SimTime::ZERO, 0);
        cal.schedule(SimTime::from_ns(5), 2);
        cal.schedule(SimTime::ZERO, 1);
        assert_eq!(cal.len(), 3);
        assert_eq!(cal.peek_time(), Some(SimTime::ZERO));
        assert_eq!(cal.pop(), Some((SimTime::ZERO, 0)));
        assert_eq!(cal.pop(), Some((SimTime::ZERO, 1)));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(5), 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(10), ());
        cal.pop();
        cal.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn watermark_tracks_now() {
        let mut cal = Calendar::new();
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.schedule(SimTime::from_ns(42), ());
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_ns(42));
        // Scheduling at the current time is allowed.
        cal.schedule(cal.now() + Duration::ZERO, ());
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(42)));
    }

    #[test]
    fn drain_until_batches_one_instant_fifo() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ns(10), 'a');
        cal.schedule(SimTime::from_ns(10), 'b');
        cal.schedule(SimTime::from_ns(20), 'c');
        let mut buf = Vec::new();
        let n = cal.drain_until(SimTime::from_ns(10), &mut buf);
        assert_eq!(n, 2);
        assert_eq!(
            buf,
            vec![(SimTime::from_ns(10), 'a'), (SimTime::from_ns(10), 'b')]
        );
        // The watermark advanced with the drained events...
        assert_eq!(cal.now(), SimTime::from_ns(10));
        // ...and same-instant events scheduled afterwards still deliver
        // after the batch (higher seq), before later times.
        cal.schedule(SimTime::from_ns(10), 'd');
        buf.clear();
        assert_eq!(cal.drain_until(SimTime::from_ns(30), &mut buf), 2);
        assert_eq!(
            buf,
            vec![(SimTime::from_ns(10), 'd'), (SimTime::from_ns(20), 'c')]
        );
        assert!(cal.is_empty());
    }

    #[test]
    fn drain_until_advances_watermark_monotonically() {
        let mut cal = Calendar::new();
        for t in [5u64, 1, 9, 1, 5] {
            cal.schedule(SimTime::from_ns(t), t);
        }
        let mut buf = Vec::new();
        cal.drain_until(SimTime::from_ns(5), &mut buf);
        let times: Vec<u64> = buf.iter().map(|&(t, _)| t.as_ns()).collect();
        assert_eq!(times, vec![1, 1, 5, 5]);
        assert_eq!(cal.now(), SimTime::from_ns(5));
        assert_eq!(cal.len(), 1);
        // Causality: the watermark now rejects anything before 5 ns.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cal.schedule(SimTime::from_ns(3), 3);
        }));
        assert!(r.is_err(), "pre-watermark schedule must panic after drain");
    }

    #[test]
    fn drain_until_on_empty_is_noop() {
        let mut cal: Calendar<()> = Calendar::with_capacity(16);
        let mut buf = Vec::new();
        assert_eq!(cal.drain_until(SimTime::from_ns(100), &mut buf), 0);
        assert!(buf.is_empty());
        cal.reserve(32);
        assert!(cal.is_empty());
    }

    #[test]
    fn cancel_removes_event_everywhere() {
        let mut cal = Calendar::new();
        let a = cal.schedule(SimTime::from_ns(10), 'a');
        let b = cal.schedule(SimTime::from_ns(10), 'b');
        cal.schedule(SimTime::from_ns(20), 'c');
        assert!(cal.cancel(a));
        assert_eq!(cal.len(), 2);
        // Cancelling twice (or after the fact) is a no-op.
        assert!(!cal.cancel(a));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(10), 'b')));
        assert!(!cal.cancel(b), "popped event is no longer cancellable");
        // Immediate-ring events cancel too.
        let d = cal.schedule(SimTime::from_ns(10), 'd');
        assert!(cal.cancel(d));
        assert_eq!(cal.pop(), Some((SimTime::from_ns(20), 'c')));
        assert_eq!(cal.pop(), None);
        assert!(cal.is_empty());
    }

    #[test]
    fn cancelled_head_keeps_peek_accurate() {
        let mut cal = Calendar::new();
        let early = cal.schedule(SimTime::from_ns(5), 'x');
        cal.schedule(SimTime::from_ns(9), 'y');
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(5)));
        assert!(cal.cancel(early));
        // The cancelled head must not leak into peek_time or drain.
        assert_eq!(cal.peek_time(), Some(SimTime::from_ns(9)));
        let mut buf = Vec::new();
        assert_eq!(cal.drain_until(SimTime::from_ns(9), &mut buf), 1);
        assert_eq!(buf, vec![(SimTime::from_ns(9), 'y')]);
    }

    #[test]
    fn stale_keys_never_touch_reused_slots() {
        let mut cal = Calendar::new();
        let old = cal.schedule(SimTime::from_ns(1), 'a');
        cal.pop();
        // The slot is recycled for a new event under a new generation.
        let fresh = cal.schedule(SimTime::from_ns(2), 'b');
        assert_eq!(old.slot, fresh.slot, "slot should be recycled");
        assert!(!cal.cancel(old), "stale key must be inert");
        assert_eq!(cal.pop(), Some((SimTime::from_ns(2), 'b')));
    }

    #[test]
    fn pool_reuses_slots_in_steady_state() {
        let mut cal = Calendar::new();
        // A pipeline with bounded concurrency: at most 4 outstanding.
        for i in 0..4u64 {
            cal.schedule(SimTime::from_ns(i), i);
        }
        for i in 4..1000u64 {
            let (_, _) = cal.pop().unwrap();
            cal.schedule(SimTime::from_ns(i), i);
        }
        while cal.pop().is_some() {}
        let stats = cal.pool_stats();
        assert_eq!(
            stats.slots_allocated, 4,
            "slab must plateau at peak concurrency"
        );
        assert_eq!(stats.slots_reused, 996, "steady state must recycle");
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let run = |cal: &mut Calendar<u64>| -> Vec<(u64, u64)> {
            for t in [7u64, 3, 7, 1] {
                cal.schedule(SimTime::from_ns(t), t * 10);
            }
            let mut out = Vec::new();
            while let Some((t, e)) = cal.pop() {
                out.push((t.as_ns(), e));
            }
            out
        };
        let mut fresh = Calendar::new();
        let expect = run(&mut fresh);
        let mut reused = Calendar::new();
        let _ = run(&mut reused);
        reused.reset();
        assert_eq!(reused.now(), SimTime::ZERO);
        assert!(reused.is_empty());
        assert_eq!(run(&mut reused), expect);
        // The second pass allocated nothing new.
        assert_eq!(reused.pool_stats().slots_allocated, 4);
        assert!(reused.pool_stats().slots_reused >= 4);
    }
}
