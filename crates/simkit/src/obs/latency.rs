//! Per-query latency accounting: streaming histograms, tail
//! percentiles, and critical-path attribution.
//!
//! Three pieces, mirroring the span layer's determinism contract:
//!
//! - [`LatencyHistogram`] — a log-bucketed streaming histogram with
//!   *fixed* bucket boundaries (HDR-style: 32 sub-buckets per octave,
//!   ≤ ~3% relative error). Because the boundaries are data-independent,
//!   merging per-shard histograms is a bucket-wise count addition and
//!   every percentile query is byte-identical at any thread count.
//! - [`Stage`] / [`PathAttr`] — the critical-path stage vector of one
//!   command chain: nanoseconds of queueing, die sense, channel
//!   transfer, PCIe, accelerator, fabric hop, … summed along the chain.
//! - [`ChainTable`] / [`LatencyReport`] — per-query reduction (the
//!   *longest* dependency chain wins, ties broken by the stage vector's
//!   lexicographic order so lane-merge order can never matter) and the
//!   finished artifact: per-query rows, the overall histogram, windowed
//!   per-epoch histograms, and stage totals, rendered into the
//!   `latency` / `latency_breakdown` registry sections.
//!
//! Everything is driven by the engines; a disabled path costs one
//! predictable branch per site, like [`SpanRecorder`](super::SpanRecorder).

use std::collections::BTreeMap;
use std::io::{self, Write};

use super::Section;
use crate::time::{Duration, SimTime};

/// Sub-bucket resolution: 2^5 = 32 buckets per octave (~3% error).
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: values 1..64 ns are exact (linear region), then
/// 32 log sub-buckets per octave up to `u64::MAX`.
pub const NUM_BUCKETS: usize = (58 * SUB as usize) + (2 * SUB as usize);

/// The pipeline stages end-to-end query latency decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Waiting for any resource grant (die, channel, core, DRAM, PCIe,
    /// accelerator input, epoch-quantization slack, hop barriers).
    Queue = 0,
    /// Flash die cell-array sense time.
    DieSense = 1,
    /// Flash channel bus transfer time.
    Channel = 2,
    /// Embedded-core firmware execution.
    Firmware = 3,
    /// SSD-internal DRAM staging.
    Dram = 4,
    /// PCIe link transfer.
    Pcie = 5,
    /// Host CPU execution.
    Host = 6,
    /// GNN accelerator compute.
    Accel = 7,
    /// Inter-device fabric hop (link serialization + hop latency).
    Fabric = 8,
    /// Fixed protocol latencies (NVMe wire, router parse).
    Other = 9,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 10;

    /// Every stage, in discriminant order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Queue,
        Stage::DieSense,
        Stage::Channel,
        Stage::Firmware,
        Stage::Dram,
        Stage::Pcie,
        Stage::Host,
        Stage::Accel,
        Stage::Fabric,
        Stage::Other,
    ];

    /// Stable lower-case name (registry field prefix, CSV column).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::DieSense => "die_sense",
            Stage::Channel => "channel",
            Stage::Firmware => "firmware",
            Stage::Dram => "dram",
            Stage::Pcie => "pcie",
            Stage::Host => "host",
            Stage::Accel => "accel",
            Stage::Fabric => "fabric",
            Stage::Other => "other",
        }
    }
}

/// Per-stage nanosecond totals along one command chain.
///
/// The derived `Ord` is lexicographic over the stage array — the
/// deterministic tiebreak [`ChainTable::observe`] uses when two chains
/// end at the same instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct PathAttr {
    ns: [u64; Stage::COUNT],
}

impl PathAttr {
    /// Adds a duration to one stage.
    #[inline]
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.ns[stage as usize] = self.ns[stage as usize].saturating_add(d.as_ns());
    }

    /// Adds raw nanoseconds to one stage.
    #[inline]
    pub fn add_ns(&mut self, stage: Stage, ns: u64) {
        self.ns[stage as usize] = self.ns[stage as usize].saturating_add(ns);
    }

    /// One stage's accumulated nanoseconds.
    #[inline]
    pub fn get(&self, stage: Stage) -> u64 {
        self.ns[stage as usize]
    }

    /// Sum over all stages.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Adds another attribution stage-wise (chain concatenation).
    pub fn merge(&mut self, other: &PathAttr) {
        for (a, b) in self.ns.iter_mut().zip(&other.ns) {
            *a = a.saturating_add(*b);
        }
    }
}

/// A free-list arena of [`PathAttr`]s for engines whose in-flight
/// commands are identified by a small handle rather than a stable slot
/// (the partitioned lanes and array device lanes).
///
/// Allocation order is driven entirely by the lane's deterministic
/// event stream, so handles are reproducible run-to-run.
#[derive(Debug, Clone, Default)]
pub struct PathArena {
    slots: Vec<PathAttr>,
    free: Vec<u32>,
}

/// The sentinel handle commands carry while latency tracking is off.
pub const NO_PATH: u32 = u32::MAX;

impl PathArena {
    /// Allocates a slot holding `p` and returns its handle.
    pub fn alloc(&mut self, p: PathAttr) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = p;
            i
        } else {
            self.slots.push(p);
            (self.slots.len() - 1) as u32
        }
    }

    /// Releases a handle for reuse.
    pub fn release(&mut self, i: u32) {
        self.free.push(i);
    }

    /// The attribution behind a handle.
    pub fn get(&self, i: u32) -> &PathAttr {
        &self.slots[i as usize]
    }

    /// Mutable access to the attribution behind a handle.
    pub fn get_mut(&mut self, i: u32) -> &mut PathAttr {
        &mut self.slots[i as usize]
    }

    /// Drops every slot (between runs).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

/// Per-query best-chain reduction: for each query, the dependency chain
/// with the latest end time (ties broken by the lexicographically
/// largest stage vector — a commutative max, so absorbing per-lane
/// tables in any fixed order yields identical results).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainTable {
    best: Vec<Option<(SimTime, PathAttr)>>,
}

impl ChainTable {
    /// A table over `queries` query slots, all unobserved.
    pub fn new(queries: usize) -> Self {
        ChainTable {
            best: vec![None; queries],
        }
    }

    /// Resets to `queries` unobserved slots, reusing storage.
    pub fn reset(&mut self, queries: usize) {
        self.best.clear();
        self.best.resize(queries, None);
    }

    /// Number of query slots.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// Returns `true` if the table has no query slots.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    /// Offers one finished chain for query `qid`; the max survives.
    #[inline]
    pub fn observe(&mut self, qid: usize, end: SimTime, path: &PathAttr) {
        let slot = &mut self.best[qid];
        match slot {
            Some((e, p)) if (*e, *p) >= (end, *path) => {}
            _ => *slot = Some((end, *path)),
        }
    }

    /// Folds another table in (per-slot commutative max).
    pub fn absorb(&mut self, other: &ChainTable) {
        if self.best.len() < other.best.len() {
            self.best.resize(other.best.len(), None);
        }
        for (qid, o) in other.best.iter().enumerate() {
            if let Some((end, path)) = o {
                self.observe(qid, *end, path);
            }
        }
    }

    /// The winning chain for query `qid`, if any chain retired.
    pub fn get(&self, qid: usize) -> Option<&(SimTime, PathAttr)> {
        self.best.get(qid).and_then(|o| o.as_ref())
    }
}

/// A log-bucketed streaming latency histogram with fixed, data-
/// independent bucket boundaries.
///
/// Values 1–63 ns occupy exact singleton buckets; from 64 ns on, each
/// octave splits into 32 sub-buckets, so any reported percentile is
/// within one sub-bucket (≤ ~3.1%) of the true order statistic.
/// Merging is a bucket-wise saturating addition — commutative and
/// associative, the property the multi-lane engines rely on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    /// Bucket counts; empty until the first record (zero-alloc default).
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// The fixed bucket index of a nanosecond value (clamped to ≥ 1).
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    let v = ns.max(1);
    if v < 2 * SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let top = (v >> shift) as usize;
    (shift as usize) * SUB as usize + top
}

/// The inclusive `[low, high]` nanosecond range of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    debug_assert!(idx < NUM_BUCKETS);
    if idx < 2 * SUB as usize {
        return (idx as u64, idx as u64);
    }
    let shift = (idx as u64) / SUB - 1;
    let top = idx as u64 - shift * SUB;
    let low = top << shift;
    let high = low + ((1u64 << shift) - 1);
    (low, high)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation (in nanoseconds).
    pub fn record(&mut self, ns: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; NUM_BUCKETS];
            self.min = u64::MAX;
        }
        let idx = bucket_index(ns);
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Folds another histogram in (bucket-wise saturating addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; NUM_BUCKETS];
            self.min = u64::MAX;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations, in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Mean latency in nanoseconds, or `None` when empty.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Minimum observation, or `None` when empty.
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The count in bucket `idx` (0 when never recorded).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Non-empty `(bucket_index, count)` pairs, ascending.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The `num/den` quantile (e.g. `999/1000` for p99.9) as the upper
    /// bound of the containing bucket, clamped to the exact recorded
    /// extremes; `None` when empty. Integer rank math — no floats.
    pub fn percentile_ns(&self, num: u64, den: u64) -> Option<u64> {
        if self.count == 0 || den == 0 {
            return None;
        }
        let rank = (self.count as u128 * num as u128)
            .div_ceil(den as u128)
            .max(1) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                let (_, high) = bucket_bounds(i);
                return Some(high.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }
}

/// One finished query: identity, endpoints, and its critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLat {
    /// Batch index within the run.
    pub batch: u32,
    /// Query slot within the batch.
    pub slot: u32,
    /// Submission time (root command entering the device).
    pub submit: SimTime,
    /// Retirement time (query result computed).
    pub end: SimTime,
    /// Critical-path stage attribution.
    pub path: PathAttr,
}

impl QueryLat {
    /// End-to-end latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.end.saturating_duration_since(self.submit).as_ns()
    }
}

/// The finished per-run latency artifact: per-query rows, the overall
/// histogram, per-epoch windowed histograms, and critical-path stage
/// totals. Built once at end of run; [`LatencyReport::default`] is the
/// disabled/empty report (what an untracked run carries).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyReport {
    enabled: bool,
    epoch_ns: u64,
    queries: Vec<QueryLat>,
    hist: LatencyHistogram,
    windows: Vec<(u64, LatencyHistogram)>,
    totals: PathAttr,
}

impl LatencyReport {
    /// The report of a run that did not track latency.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Builds the report from finished queries. `epoch` is the windowed
    /// time-series bucket width (a query lands in the window containing
    /// its retirement time); zero disables windowing.
    pub fn build(epoch: Duration, queries: Vec<QueryLat>) -> Self {
        let epoch_ns = epoch.as_ns();
        let mut hist = LatencyHistogram::new();
        let mut totals = PathAttr::default();
        let mut windows: BTreeMap<u64, LatencyHistogram> = BTreeMap::new();
        for q in &queries {
            let ns = q.latency_ns();
            hist.record(ns);
            totals.merge(&q.path);
            if let Some(w) = q.end.as_ns().checked_div(epoch_ns) {
                windows.entry(w).or_default().record(ns);
            }
        }
        LatencyReport {
            enabled: true,
            epoch_ns,
            queries,
            hist,
            windows: windows.into_iter().collect(),
            totals,
        }
    }

    /// Whether this run tracked latency.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The windowing epoch, in nanoseconds (0 = no windows).
    pub fn epoch_ns(&self) -> u64 {
        self.epoch_ns
    }

    /// Finished queries in (batch, slot) order.
    pub fn queries(&self) -> &[QueryLat] {
        &self.queries
    }

    /// The overall latency histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Per-epoch windowed histograms, ascending by epoch index.
    pub fn windows(&self) -> &[(u64, LatencyHistogram)] {
        &self.windows
    }

    /// Total critical-path nanoseconds attributed to `stage` across all
    /// queries.
    pub fn stage_total_ns(&self, stage: Stage) -> u64 {
        self.totals.get(stage)
    }

    /// Renders the `latency` registry section (tail percentiles).
    pub fn render_latency(&self, s: &mut Section) {
        let q = |num, den| self.hist.percentile_ns(num, den).unwrap_or(0);
        s.set_bool("enabled", self.enabled);
        s.set_u64("queries", self.hist.count());
        s.set_u64("epoch_ns", self.epoch_ns);
        s.set_u64("min_ns", self.hist.min_ns().unwrap_or(0));
        s.set_f64("mean_ns", self.hist.mean_ns().unwrap_or(0.0));
        s.set_u64("p50_ns", q(50, 100));
        s.set_u64("p90_ns", q(90, 100));
        s.set_u64("p95_ns", q(95, 100));
        s.set_u64("p99_ns", q(99, 100));
        s.set_u64("p999_ns", q(999, 1000));
        s.set_u64("max_ns", self.hist.max_ns().unwrap_or(0));
        s.set_u64("windows", self.windows.len() as u64);
    }

    /// Renders the `latency_breakdown` registry section (critical-path
    /// stage totals over all queries).
    pub fn render_breakdown(&self, s: &mut Section) {
        for stage in Stage::ALL {
            s.set_u64(&format!("{}_ns", stage.as_str()), self.totals.get(stage));
        }
        s.set_u64("total_ns", self.totals.total_ns());
    }

    /// Writes the per-query CSV dump (`--latency-csv`): one row per
    /// query with its endpoints, latency, and stage attribution.
    pub fn write_query_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "batch,slot,submit_ns,end_ns,latency_ns")?;
        for stage in Stage::ALL {
            write!(w, ",{}_ns", stage.as_str())?;
        }
        writeln!(w)?;
        for q in &self.queries {
            write!(
                w,
                "{},{},{},{},{}",
                q.batch,
                q.slot,
                q.submit.as_ns(),
                q.end.as_ns(),
                q.latency_ns()
            )?;
            for stage in Stage::ALL {
                write!(w, ",{}", q.path.get(stage))?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Writes the windowed time-series CSV: one row per sim-time epoch
    /// with per-window percentiles — the saturation-knee view.
    pub fn write_window_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(
            w,
            "epoch,epoch_start_ns,queries,p50_ns,p90_ns,p99_ns,p999_ns,max_ns"
        )?;
        for (idx, h) in &self.windows {
            writeln!(
                w,
                "{},{},{},{},{},{},{},{}",
                idx,
                idx * self.epoch_ns,
                h.count(),
                h.percentile_ns(50, 100).unwrap_or(0),
                h.percentile_ns(90, 100).unwrap_or(0),
                h.percentile_ns(99, 100).unwrap_or(0),
                h.percentile_ns(999, 1000).unwrap_or(0),
                h.max_ns().unwrap_or(0)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive over the linear/log boundary, spot checks beyond.
        let mut prev = 0;
        for v in 1..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} outside bucket [{lo},{hi}]");
            prev = idx;
        }
        for v in [u64::MAX, u64::MAX / 2, 1 << 40, (1 << 40) + 12345] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn linear_region_is_exact() {
        for v in 1..64u64 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
        // First log bucket starts exactly where the linear region ends.
        assert_eq!(bucket_index(63) + 1, bucket_index(64));
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [100u64, 1_000, 65_537, 1 << 33, (1 << 50) + 7] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            // Width ≤ lo / 32: ≤ ~3.1% relative error.
            assert!(hi - lo <= lo / SUB, "bucket too wide at {v}");
        }
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ns(50, 100), None);
        assert_eq!(h.mean_ns(), None);
        assert_eq!(h.min_ns(), None);
        assert_eq!(h.max_ns(), None);
    }

    #[test]
    fn single_sample_every_percentile_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(12_345);
        for (num, den) in [(1, 100), (50, 100), (99, 100), (999, 1000), (1, 1)] {
            assert_eq!(h.percentile_ns(num, den), Some(12_345));
        }
        assert_eq!(h.min_ns(), Some(12_345));
        assert_eq!(h.max_ns(), Some(12_345));
        assert_eq!(h.mean_ns(), Some(12_345.0));
    }

    #[test]
    fn zero_clamps_into_first_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_ns(), Some(0));
        // The percentile clamps the bucket bound to the recorded min.
        assert_eq!(h.percentile_ns(50, 100), Some(0));
    }

    #[test]
    fn boundary_values_land_deterministically() {
        // Powers of two sit on octave boundaries; each must land in a
        // bucket whose range contains exactly it as the lower bound.
        for shift in 6..63u32 {
            let v = 1u64 << shift;
            let (lo, _) = bucket_bounds(bucket_index(v));
            assert_eq!(lo, v, "2^{shift} not a bucket lower bound");
            let (_, hi) = bucket_bounds(bucket_index(v - 1));
            assert_eq!(hi, v - 1, "2^{shift}-1 not a bucket upper bound");
        }
    }

    #[test]
    fn saturating_counts_do_not_wrap() {
        let mut a = LatencyHistogram::new();
        a.record(100);
        a.count = u64::MAX - 1;
        a.counts[bucket_index(100)] = u64::MAX - 1;
        a.sum = u64::MAX - 1;
        let mut b = LatencyHistogram::new();
        b.record(100);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.bucket_count(bucket_index(100)), u64::MAX);
        assert_eq!(a.sum_ns(), u64::MAX);
        a.record(100);
        assert_eq!(a.count(), u64::MAX);
    }

    #[test]
    fn percentiles_walk_buckets_in_order() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        // Linear-region values (< 64 ns) are exact; 90 and 100 land in
        // 2-ns log buckets, so their upper bounds report.
        assert_eq!(h.percentile_ns(50, 100), Some(50));
        assert_eq!(h.percentile_ns(90, 100), Some(91));
        assert_eq!(h.percentile_ns(1, 1), Some(100));
        assert_eq!(h.percentile_ns(10, 100), Some(10));
    }

    #[test]
    fn merge_empty_identities() {
        let mut a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.merge(&b);
        assert_eq!(a, LatencyHistogram::new());
        a.record(42);
        let snapshot = a.clone();
        a.merge(&b);
        assert_eq!(a, snapshot);
        let mut c = LatencyHistogram::new();
        c.merge(&snapshot);
        assert_eq!(c, snapshot);
    }

    #[test]
    fn chain_table_max_is_commutative() {
        let mut p1 = PathAttr::default();
        p1.add_ns(Stage::Queue, 5);
        let mut p2 = PathAttr::default();
        p2.add_ns(Stage::DieSense, 5);
        let t = SimTime::from_ns(100);
        // Same end time: the lexicographically larger stage vector wins
        // regardless of observation order. Queue precedes DieSense in
        // the array, so p1 = [5,0,..] > p2 = [0,5,..].
        let mut a = ChainTable::new(1);
        a.observe(0, t, &p1);
        a.observe(0, t, &p2);
        let mut b = ChainTable::new(1);
        b.observe(0, t, &p2);
        b.observe(0, t, &p1);
        assert_eq!(a, b);
        assert_eq!(a.get(0), Some(&(t, p1)));
        // Later end always wins.
        a.observe(0, SimTime::from_ns(101), &p2);
        assert_eq!(a.get(0), Some(&(SimTime::from_ns(101), p2)));
    }

    #[test]
    fn chain_table_absorb_matches_single_table() {
        let ends = [7u64, 3, 9, 9, 2, 8];
        let mut single = ChainTable::new(3);
        let mut shard_a = ChainTable::new(3);
        let mut shard_b = ChainTable::new(3);
        for (i, &e) in ends.iter().enumerate() {
            let mut p = PathAttr::default();
            p.add_ns(Stage::Channel, e);
            single.observe(i % 3, SimTime::from_ns(e), &p);
            let shard = if i % 2 == 0 {
                &mut shard_a
            } else {
                &mut shard_b
            };
            shard.observe(i % 3, SimTime::from_ns(e), &p);
        }
        let mut merged = ChainTable::new(3);
        merged.absorb(&shard_a);
        merged.absorb(&shard_b);
        assert_eq!(merged, single);
        let mut reversed = ChainTable::new(3);
        reversed.absorb(&shard_b);
        reversed.absorb(&shard_a);
        assert_eq!(reversed, single);
    }

    #[test]
    fn report_build_populates_windows_and_totals() {
        let mut p = PathAttr::default();
        p.add_ns(Stage::Queue, 60);
        p.add_ns(Stage::Accel, 40);
        let queries = vec![
            QueryLat {
                batch: 0,
                slot: 0,
                submit: SimTime::from_ns(0),
                end: SimTime::from_ns(100),
                path: p,
            },
            QueryLat {
                batch: 1,
                slot: 0,
                submit: SimTime::from_ns(900),
                end: SimTime::from_ns(1_100),
                path: p,
            },
        ];
        let r = LatencyReport::build(Duration::from_ns(1_000), queries);
        assert!(r.is_enabled());
        assert_eq!(r.histogram().count(), 2);
        assert_eq!(r.windows().len(), 2);
        assert_eq!(r.windows()[0].0, 0);
        assert_eq!(r.windows()[1].0, 1);
        assert_eq!(r.stage_total_ns(Stage::Queue), 120);
        assert_eq!(r.stage_total_ns(Stage::Accel), 80);
        let mut s = Section::default();
        r.render_latency(&mut s);
        assert_eq!(s.get("queries"), Some(&crate::MetricValue::U64(2)));
        let mut b = Section::default();
        r.render_breakdown(&mut b);
        assert_eq!(b.get("queue_ns"), Some(&crate::MetricValue::U64(120)));
        assert_eq!(b.get("total_ns"), Some(&crate::MetricValue::U64(200)));
    }

    #[test]
    fn disabled_report_renders_zeroes() {
        let r = LatencyReport::disabled();
        assert!(!r.is_enabled());
        let mut s = Section::default();
        r.render_latency(&mut s);
        assert_eq!(s.get("enabled"), Some(&crate::MetricValue::Bool(false)));
        assert_eq!(s.get("p999_ns"), Some(&crate::MetricValue::U64(0)));
    }

    #[test]
    fn csv_dumps_are_deterministic() {
        let q = QueryLat {
            batch: 0,
            slot: 3,
            submit: SimTime::from_ns(10),
            end: SimTime::from_ns(250),
            path: PathAttr::default(),
        };
        let r = LatencyReport::build(Duration::from_ns(100), vec![q]);
        let mut a = Vec::new();
        r.write_query_csv(&mut a).unwrap();
        let mut b = Vec::new();
        r.write_query_csv(&mut b).unwrap();
        assert_eq!(a, b);
        let s = String::from_utf8(a).unwrap();
        assert!(s.starts_with("batch,slot,submit_ns,end_ns,latency_ns,queue_ns"));
        assert!(s.contains("0,3,10,250,240"));
        let mut wcsv = Vec::new();
        r.write_window_csv(&mut wcsv).unwrap();
        let s = String::from_utf8(wcsv).unwrap();
        assert!(s.contains("2,200,1,240,240,240,240,240"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sharded recording merges to the exact single-shard histogram,
        /// bucket for bucket, for any values and any shard assignment.
        #[test]
        fn merged_shards_equal_single_shard(
            values in pvec(0u64..u64::MAX, 1..200),
            shards in 1usize..8,
        ) {
            let mut single = LatencyHistogram::new();
            let mut parts = vec![LatencyHistogram::new(); shards];
            for (i, &v) in values.iter().enumerate() {
                single.record(v);
                parts[i % shards].record(v);
            }
            let mut merged = LatencyHistogram::new();
            for p in &parts {
                merged.merge(p);
            }
            prop_assert_eq!(&merged, &single);
            // Merge order cannot matter.
            let mut rev = LatencyHistogram::new();
            for p in parts.iter().rev() {
                rev.merge(p);
            }
            prop_assert_eq!(&rev, &single);
            for i in 0..NUM_BUCKETS {
                prop_assert_eq!(merged.bucket_count(i), single.bucket_count(i));
            }
        }

        /// Percentiles are monotone in the quantile and bracketed by the
        /// recorded extremes.
        #[test]
        fn percentiles_are_monotone(
            values in pvec(0u64..10_000_000_000, 1..100),
        ) {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let qs = [(1u64, 100u64), (50, 100), (90, 100), (95, 100),
                      (99, 100), (999, 1000), (1, 1)];
            let mut prev = 0u64;
            for (num, den) in qs {
                let p = h.percentile_ns(num, den).unwrap();
                prop_assert!(p >= prev);
                prop_assert!(p >= h.min_ns().unwrap());
                prop_assert!(p <= h.max_ns().unwrap());
                prev = p;
            }
        }
    }
}
