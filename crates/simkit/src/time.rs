//! Simulated time.
//!
//! All timing models in this workspace operate on [`SimTime`] (an absolute
//! instant since simulation start) and [`Duration`] (a span), both held as
//! integer nanoseconds. Integer time keeps event ordering exact and
//! platform-independent; 64 bits of nanoseconds covers ~584 years of
//! simulated time, far beyond any run here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use simkit::{SimTime, Duration};
/// let t = SimTime::ZERO + Duration::from_us(3);
/// assert_eq!(t.as_ns(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use simkit::Duration;
/// let page_transfer = Duration::from_bytes_at_bandwidth(4096, 800_000_000);
/// assert_eq!(page_transfer.as_ns(), 5_120);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "idle forever" marker.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as nanoseconds since simulation start.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the instant as (possibly fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        debug_assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier:?} > {self:?}"
        );
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating duration: zero if `earlier` is after `self`.
    #[inline]
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a span from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a span from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Creates a span from fractional microseconds, rounding to the nearest
    /// nanosecond.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        Duration((us * 1_000.0).round() as u64)
    }

    /// Creates a span from fractional nanoseconds, rounding to the nearest
    /// nanosecond.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        Duration(ns.round() as u64)
    }

    /// The time to move `bytes` bytes over a link of `bytes_per_sec`
    /// bandwidth, rounded up to a whole nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    #[inline]
    pub fn from_bytes_at_bandwidth(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        // ns = bytes * 1e9 / bw, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        Duration(ns as u64)
    }

    /// The time for `cycles` cycles at `hz` clock frequency, rounded up.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    #[inline]
    pub fn from_cycles(cycles: u64, hz: u64) -> Self {
        assert!(hz > 0, "clock frequency must be positive");
        let ns = (cycles as u128 * 1_000_000_000u128).div_ceil(hz as u128);
        Duration(ns as u64)
    }

    /// Returns the span in nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `true` if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_ns(500) + Duration::from_us(2);
        assert_eq!(t.as_ns(), 2_500);
        assert_eq!(t - SimTime::from_ns(500), Duration::from_us(2));
        assert_eq!(t - Duration::from_ns(2_500), SimTime::ZERO);
    }

    #[test]
    fn bandwidth_duration_rounds_up() {
        // 1 byte over 3 B/s => ceil(1e9/3) ns.
        let d = Duration::from_bytes_at_bandwidth(1, 3);
        assert_eq!(d.as_ns(), 333_333_334);
    }

    #[test]
    fn page_transfer_matches_hand_calc() {
        // 4 KiB over 800 MB/s = 4096/8e8 s = 5.12 us.
        let d = Duration::from_bytes_at_bandwidth(4096, 800_000_000);
        assert_eq!(d.as_ns(), 5_120);
    }

    #[test]
    fn cycles_duration() {
        // 500 cycles at 500 MHz = 1 us.
        assert_eq!(
            Duration::from_cycles(500, 500_000_000),
            Duration::from_us(1)
        );
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_ns(10);
        let late = SimTime::from_ns(20);
        assert_eq!(early.saturating_duration_since(late), Duration::ZERO);
        assert_eq!(
            Duration::from_ns(5).saturating_sub(Duration::from_ns(9)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Duration::from_ns(12).to_string(), "12ns");
        assert_eq!(Duration::from_us(3).to_string(), "3.000us");
        assert_eq!(Duration::from_ms(7).to_string(), "7.000ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [Duration::from_ns(1), Duration::from_ns(2)]
            .into_iter()
            .sum();
        assert_eq!(total, Duration::from_ns(3));
    }

    #[test]
    fn min_max() {
        let a = Duration::from_ns(4);
        let b = Duration::from_ns(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimTime::from_ns(4).max(SimTime::from_ns(9)),
            SimTime::from_ns(9)
        );
        assert_eq!(
            SimTime::from_ns(4).min(SimTime::from_ns(9)),
            SimTime::from_ns(4)
        );
    }
}
