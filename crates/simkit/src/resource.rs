//! First-come-first-served resource models.
//!
//! Two flavors cover everything the SSD model needs:
//!
//! * [`SerialResource`] — one request at a time (a flash die sensing a
//!   page, a channel bus moving data, an embedded core running firmware).
//! * [`BandwidthResource`] — a shared link where each request occupies the
//!   link for `bytes / bandwidth` (SSD DRAM, the PCIe link). Modeled as a
//!   serial pipe, which is the standard store-and-forward approximation
//!   used by SimpleSSD/MQSim-style simulators.

use crate::stats::UtilizationTracker;
use crate::time::{Duration, SimTime};

/// A resource that serves one request at a time, FCFS.
///
/// The caller asks "if a request arrives at `now` and needs `service`
/// time, when does it start and finish?" — the resource accounts for its
/// own backlog.
///
/// # Examples
///
/// ```
/// use simkit::{SerialResource, SimTime, Duration};
///
/// let mut die = SerialResource::new();
/// let g1 = die.acquire(SimTime::ZERO, Duration::from_us(3));
/// let g2 = die.acquire(SimTime::ZERO, Duration::from_us(3));
/// assert_eq!(g1.start, SimTime::ZERO);
/// assert_eq!(g2.start, SimTime::from_ns(3_000)); // queued behind g1
/// ```
#[derive(Debug, Clone)]
pub struct SerialResource {
    next_free: SimTime,
    util: UtilizationTracker,
    served: u64,
    busy_total: Duration,
    wait_total: Duration,
}

/// The scheduling outcome of one [`SerialResource::acquire`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service begins (>= arrival).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
}

impl Grant {
    /// Queueing delay experienced by this request.
    pub fn wait(&self, arrival: SimTime) -> Duration {
        self.start.saturating_duration_since(arrival)
    }
}

impl SerialResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        SerialResource {
            next_free: SimTime::ZERO,
            util: UtilizationTracker::new(),
            served: 0,
            busy_total: Duration::ZERO,
            wait_total: Duration::ZERO,
        }
    }

    /// Schedules a request arriving at `arrival` needing `service` time.
    pub fn acquire(&mut self, arrival: SimTime, service: Duration) -> Grant {
        let start = arrival.max(self.next_free);
        let end = start + service;
        self.next_free = end;
        self.served += 1;
        self.busy_total += service;
        self.wait_total += start - arrival;
        Grant { start, end }
    }

    /// Earliest time a new request could begin service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Whether the resource would be idle for a request arriving at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.next_free <= now
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total service (busy) time granted.
    pub fn busy_total(&self) -> Duration {
        self.busy_total
    }

    /// Total queueing delay experienced by all requests.
    pub fn wait_total(&self) -> Duration {
        self.wait_total
    }

    /// Busy fraction of the window `[0, end]`.
    pub fn utilization(&mut self, end: SimTime) -> f64 {
        // Rebuild from busy_total: the tracker variant is unnecessary since
        // grants are non-overlapping by construction.
        let _ = &self.util;
        if end == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_total.min(end - SimTime::ZERO).as_ns() as f64) / end.as_ns() as f64
    }
}

impl Default for SerialResource {
    fn default() -> Self {
        Self::new()
    }
}

/// A shared link with finite bandwidth, modeled as a serial pipe.
///
/// # Examples
///
/// ```
/// use simkit::{BandwidthResource, SimTime};
///
/// let mut pcie = BandwidthResource::new(8_000_000_000); // 8 GB/s
/// let g = pcie.transfer(SimTime::ZERO, 8_000);
/// assert_eq!(g.end.as_ns(), 1_000); // 8 KB at 8 GB/s = 1 us
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthResource {
    bytes_per_sec: u64,
    pipe: SerialResource,
    bytes_moved: u64,
}

impl BandwidthResource {
    /// Creates a link with the given bandwidth in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        BandwidthResource {
            bytes_per_sec,
            pipe: SerialResource::new(),
            bytes_moved: 0,
        }
    }

    /// Schedules a transfer of `bytes` arriving at `arrival`.
    pub fn transfer(&mut self, arrival: SimTime, bytes: u64) -> Grant {
        self.bytes_moved += bytes;
        let service = Duration::from_bytes_at_bandwidth(bytes, self.bytes_per_sec);
        self.pipe.acquire(arrival, service)
    }

    /// Link bandwidth in bytes/second.
    pub fn bandwidth(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of transfers served.
    pub fn served(&self) -> u64 {
        self.pipe.served()
    }

    /// Total busy time.
    pub fn busy_total(&self) -> Duration {
        self.pipe.busy_total()
    }

    /// Busy fraction of the window `[0, end]`.
    pub fn utilization(&mut self, end: SimTime) -> f64 {
        self.pipe.utilization(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_fcfs_queueing() {
        let mut r = SerialResource::new();
        let g1 = r.acquire(SimTime::from_ns(0), Duration::from_ns(10));
        let g2 = r.acquire(SimTime::from_ns(2), Duration::from_ns(10));
        let g3 = r.acquire(SimTime::from_ns(50), Duration::from_ns(10));
        assert_eq!((g1.start.as_ns(), g1.end.as_ns()), (0, 10));
        assert_eq!((g2.start.as_ns(), g2.end.as_ns()), (10, 20));
        assert_eq!((g3.start.as_ns(), g3.end.as_ns()), (50, 60)); // idle gap
        assert_eq!(g2.wait(SimTime::from_ns(2)), Duration::from_ns(8));
        assert_eq!(r.served(), 3);
        assert_eq!(r.busy_total(), Duration::from_ns(30));
        assert_eq!(r.wait_total(), Duration::from_ns(8));
    }

    #[test]
    fn serial_utilization() {
        let mut r = SerialResource::new();
        r.acquire(SimTime::ZERO, Duration::from_ns(25));
        let u = r.utilization(SimTime::from_ns(100));
        assert!((u - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_transfer_time() {
        let mut link = BandwidthResource::new(1_000_000_000); // 1 GB/s
        let g = link.transfer(SimTime::ZERO, 1_000);
        assert_eq!(g.end.as_ns(), 1_000);
        assert_eq!(link.bytes_moved(), 1_000);
        assert_eq!(link.served(), 1);
        assert_eq!(link.bandwidth(), 1_000_000_000);
    }

    #[test]
    fn bandwidth_serializes_contention() {
        let mut link = BandwidthResource::new(1_000_000_000);
        let g1 = link.transfer(SimTime::ZERO, 500);
        let g2 = link.transfer(SimTime::ZERO, 500);
        assert_eq!(g1.end.as_ns(), 500);
        assert_eq!(g2.start.as_ns(), 500);
        assert_eq!(g2.end.as_ns(), 1_000);
        assert_eq!(link.busy_total(), Duration::from_ns(1_000));
    }

    #[test]
    fn idle_check() {
        let mut r = SerialResource::new();
        assert!(r.is_idle_at(SimTime::ZERO));
        r.acquire(SimTime::ZERO, Duration::from_ns(10));
        assert!(!r.is_idle_at(SimTime::from_ns(5)));
        assert!(r.is_idle_at(SimTime::from_ns(10)));
        assert_eq!(r.next_free(), SimTime::from_ns(10));
    }
}
