//! Deterministic pseudo-random number generators.
//!
//! Simulations in this workspace never consult OS entropy: all randomness
//! flows from explicitly seeded generators so that identical configurations
//! replay identically. Two generators are provided:
//!
//! * [`SplitMix64`] — tiny, fast, used for seeding and for low-stakes
//!   decisions (e.g. synthetic graph wiring).
//! * [`Xoshiro256StarStar`] — higher-quality stream used by the modeled
//!   on-die TRNG (the paper's die-level sampler carries a true random
//!   number generator; we model its *distribution*, not its entropy
//!   source).

/// The SplitMix64 finalizer: a full-avalanche 64-bit mixing function.
///
/// Every input bit affects every output bit, which makes it the right
/// tool for deriving *independent* RNG streams from structured inputs
/// (seed, salt, item index). Plain `SplitMix64::new(seed + i)` would
/// hand out shifted copies of one sequence — adjacent seeds walk the
/// same golden-ratio orbit — so stream derivation must go through a
/// mix, never through arithmetic on the seed.
///
/// # Examples
///
/// ```
/// use simkit::rng::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
#[inline]
pub const fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// # Examples
///
/// ```
/// use simkit::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Creates the generator for item `index` of the stream family
    /// `(seed, salt)`.
    ///
    /// Each `(seed, salt, index)` triple gets a statistically
    /// independent starting state, so per-item generators can run on
    /// any thread in any order and still produce output identical to a
    /// sequential pass — the foundation of the deterministic parallel
    /// build pipeline.
    ///
    /// # Examples
    ///
    /// ```
    /// use simkit::SplitMix64;
    /// let a = SplitMix64::for_stream(1, 2, 3);
    /// assert_eq!(a, SplitMix64::for_stream(1, 2, 3));
    /// assert_ne!(a, SplitMix64::for_stream(1, 2, 4));
    /// ```
    pub const fn for_stream(seed: u64, salt: u64, index: u64) -> Self {
        let a = mix64(seed ^ 0x9E3779B97F4A7C15u64.wrapping_mul(salt.wrapping_add(1)));
        SplitMix64 {
            state: mix64(a ^ 0xD1B54A32D192ED03u64.wrapping_mul(index.wrapping_add(1))),
        }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift reduction (slightly biased for huge
    /// bounds; negligible for the bounds used in graph sampling).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// xoshiro256** generator (Blackman & Vigna 2018).
///
/// Used to model the on-die TRNG in the die-level sampler.
///
/// # Examples
///
/// ```
/// use simkit::Xoshiro256StarStar;
/// let mut rng = Xoshiro256StarStar::seeded(42);
/// let sample = rng.next_bounded(10);
/// assert!(sample < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator with state expanded from `seed` via SplitMix64,
    /// per the reference implementation's seeding recommendation.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid (fixed point); SplitMix64 of any seed
        // practically never yields it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the published SplitMix64 algorithm, seed 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn xoshiro_distinct_seeds_diverge() {
        let mut a = Xoshiro256StarStar::seeded(1);
        let mut b = Xoshiro256StarStar::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_stays_in_range_and_covers() {
        let mut r = Xoshiro256StarStar::seeded(99);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.next_bounded(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = Xoshiro256StarStar::seeded(7);
        let n = 100_000;
        let k = 10u64;
        let mut counts = vec![0u64; k as usize];
        for _ in 0..n {
            counts[r.next_bounded(k) as usize] += 1;
        }
        let expect = n as f64 / k as f64;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket deviates {dev}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_bounded(0);
    }

    #[test]
    fn streams_do_not_overlap_like_shifted_seeds() {
        // Adjacent plain seeds share almost their whole sequence (one is
        // the other advanced by a step); for_stream must not.
        let mut a = SplitMix64::for_stream(7, 1, 0);
        let b0: Vec<u64> = {
            let mut b = SplitMix64::for_stream(7, 1, 1);
            (0..64).map(|_| b.next_u64()).collect()
        };
        for _ in 0..64 {
            assert!(!b0.contains(&a.next_u64()), "streams share values");
        }
    }

    #[test]
    fn stream_components_all_matter() {
        let base = SplitMix64::for_stream(1, 2, 3);
        assert_ne!(base, SplitMix64::for_stream(9, 2, 3));
        assert_ne!(base, SplitMix64::for_stream(1, 9, 3));
        assert_ne!(base, SplitMix64::for_stream(1, 2, 9));
    }
}
