//! Measurement instruments for simulations.
//!
//! These are the instruments the BeaconGNN figures are built from:
//!
//! * [`Counter`] — monotonically increasing event/byte counters.
//! * [`Summary`] — streaming min/max/mean/sum of durations or values.
//! * [`Histogram`] — fixed-bin latency histograms with percentile queries.
//! * [`UtilizationTracker`] — time-weighted busy fraction of a resource
//!   (used for Fig 15's active-channel/die curves).
//! * [`BusyTimeline`] — per-interval active-unit counts sampled over time.

use std::fmt;

use crate::time::{Duration, SimTime};

/// A monotonically increasing count.
///
/// # Examples
///
/// ```
/// use simkit::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Returns the current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming summary statistics over `f64` observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration observation in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_ns() as f64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over durations with fixed-width bins plus an overflow bin.
///
/// # Examples
///
/// ```
/// use simkit::stats::Histogram;
/// use simkit::Duration;
///
/// let mut h = Histogram::new(Duration::from_us(1), 100);
/// h.record(Duration::from_us(3));
/// h.record(Duration::from_us(50));
/// assert_eq!(h.count(), 2);
/// assert!(h.percentile(0.99).unwrap() >= Duration::from_us(50));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: Duration,
    bins: Vec<u64>,
    overflow: u64,
    summary: Summary,
}

impl Histogram {
    /// Creates a histogram with `nbins` bins of width `bin_width` and an
    /// overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero or `nbins` is zero.
    pub fn new(bin_width: Duration, nbins: usize) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        assert!(nbins > 0, "need at least one bin");
        Histogram {
            bin_width,
            bins: vec![0; nbins],
            overflow: 0,
            summary: Summary::new(),
        }
    }

    /// Records a duration.
    pub fn record(&mut self, d: Duration) {
        let idx = (d.as_ns() / self.bin_width.as_ns()) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.summary.record_duration(d);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Mean duration, or `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        self.summary.mean().map(Duration::from_ns_f64)
    }

    /// Maximum recorded duration, or `None` when empty.
    pub fn max(&self) -> Option<Duration> {
        self.summary.max().map(Duration::from_ns_f64)
    }

    /// Observations that landed past the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `q`-quantile (0.0–1.0) as the upper edge of the containing bin;
    /// observations in the overflow bin report the recorded maximum.
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bin_width * (i as u64 + 1));
            }
        }
        self.max()
    }
}

/// Tracks the time-weighted busy fraction of a single resource.
///
/// Call [`UtilizationTracker::set_busy`] on every busy/idle transition and
/// [`UtilizationTracker::finish`] at end of simulation.
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    busy: bool,
    last_change: SimTime,
    busy_time: Duration,
}

impl UtilizationTracker {
    /// Creates a tracker that is idle at time zero.
    pub fn new() -> Self {
        UtilizationTracker {
            busy: false,
            last_change: SimTime::ZERO,
            busy_time: Duration::ZERO,
        }
    }

    /// Records a busy/idle transition at time `now`.
    pub fn set_busy(&mut self, now: SimTime, busy: bool) {
        if self.busy {
            self.busy_time += now.saturating_duration_since(self.last_change);
        }
        self.busy = busy;
        self.last_change = now;
    }

    /// Closes the tracking window at `end` and returns total busy time.
    pub fn finish(&mut self, end: SimTime) -> Duration {
        self.set_busy(end, self.busy);
        self.busy_time
    }

    /// Accumulated busy time so far (excluding any open busy interval).
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }

    /// Busy fraction of the window `[0, end]`, in `[0, 1]`.
    pub fn utilization(&mut self, end: SimTime) -> f64 {
        let busy = self.finish(end);
        if end == SimTime::ZERO {
            return 0.0;
        }
        busy.as_ns() as f64 / end.as_ns() as f64
    }
}

impl Default for UtilizationTracker {
    fn default() -> Self {
        Self::new()
    }
}

/// Samples how many units of a group (dies, channels) are active per fixed
/// time slice — the instrument behind the paper's Fig 15(a–e).
#[derive(Debug, Clone)]
pub struct BusyTimeline {
    slice: Duration,
    /// busy-unit-nanoseconds accumulated per slice.
    acc: Vec<u64>,
    active: u64,
    last_change: SimTime,
}

impl BusyTimeline {
    /// Creates a timeline with the given sampling slice width.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is zero.
    pub fn new(slice: Duration) -> Self {
        assert!(!slice.is_zero(), "slice must be positive");
        BusyTimeline {
            slice,
            acc: Vec::new(),
            active: 0,
            last_change: SimTime::ZERO,
        }
    }

    /// Records that one more unit became active at `now`.
    pub fn unit_up(&mut self, now: SimTime) {
        self.advance(now);
        self.active += 1;
    }

    /// Records that one unit became idle at `now`.
    ///
    /// # Panics
    ///
    /// Panics if no unit is currently active.
    pub fn unit_down(&mut self, now: SimTime) {
        self.advance(now);
        assert!(self.active > 0, "unit_down with zero active units");
        self.active -= 1;
    }

    fn advance(&mut self, now: SimTime) {
        let mut t = self.last_change;
        while t < now {
            let slice_idx = (t.as_ns() / self.slice.as_ns()) as usize;
            let slice_end = SimTime::from_ns((slice_idx as u64 + 1) * self.slice.as_ns());
            let seg_end = slice_end.min(now);
            if self.acc.len() <= slice_idx {
                self.acc.resize(slice_idx + 1, 0);
            }
            self.acc[slice_idx] += self.active * (seg_end - t).as_ns();
            t = seg_end;
        }
        self.last_change = now;
    }

    /// Finalizes at `end` and returns the mean number of active units per
    /// slice, in slice order.
    pub fn finish(mut self, end: SimTime) -> Vec<f64> {
        self.advance(end);
        let slice_ns = self.slice.as_ns() as f64;
        self.acc
            .iter()
            .map(|&busy_ns| busy_ns as f64 / slice_ns)
            .collect()
    }

    /// Number of currently active units.
    pub fn active(&self) -> u64 {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "11");
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        s.record(2.0);
        s.record(8.0);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(8.0));
        assert_eq!(s.count(), 2);
        let mut t = Summary::new();
        t.record(100.0);
        s.merge(&t);
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(Duration::from_us(1), 10);
        for us in 1..=9 {
            h.record(Duration::from_us(us));
        }
        // Median of 1..9 us is 5 us, which lands in bin [5,6): the
        // histogram reports the bin's upper edge.
        assert_eq!(h.percentile(0.5), Some(Duration::from_us(6)));
        assert_eq!(h.percentile(1.0), Some(Duration::from_us(10)));
        assert_eq!(h.mean(), Some(Duration::from_us(5)));
    }

    #[test]
    fn histogram_overflow_reports_max() {
        let mut h = Histogram::new(Duration::from_us(1), 4);
        h.record(Duration::from_us(100));
        assert_eq!(h.percentile(0.5), Some(Duration::from_us(100)));
        assert_eq!(h.max(), Some(Duration::from_us(100)));
    }

    #[test]
    fn histogram_empty_percentiles_are_none() {
        let h = Histogram::new(Duration::from_us(1), 4);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(1.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_single_sample_every_quantile() {
        let mut h = Histogram::new(Duration::from_us(1), 10);
        h.record(Duration::from_us(3));
        // With one observation every quantile (including q=0, whose
        // rank clamps to the first observation) lands in its bin and
        // reports the bin's upper edge.
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(Duration::from_us(4)), "q={q}");
        }
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_all_in_overflow_bin() {
        let mut h = Histogram::new(Duration::from_ns(10), 3);
        for ns in [40, 50, 60] {
            h.record(Duration::from_ns(ns));
        }
        assert_eq!(h.overflow(), 3);
        // Every quantile walks past the (empty) regular bins and falls
        // back to the recorded maximum.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.percentile(q), Some(Duration::from_ns(60)), "q={q}");
        }
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_boundary_sample_lands_in_overflow() {
        // A sample exactly at nbins * bin_width is the first value past
        // the last bin's half-open range.
        let mut h = Histogram::new(Duration::from_ns(10), 3);
        h.record(Duration::from_ns(30));
        assert_eq!(h.overflow(), 1);
        h.record(Duration::from_ns(29));
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn utilization_zero_length_busy_intervals() {
        let mut u = UtilizationTracker::new();
        // Busy then immediately idle at the same instant: no busy time.
        u.set_busy(SimTime::from_ns(10), true);
        u.set_busy(SimTime::from_ns(10), false);
        assert_eq!(u.busy_time(), Duration::ZERO);
        // A run of zero-length toggles at one instant stays at zero.
        for _ in 0..3 {
            u.set_busy(SimTime::from_ns(20), true);
            u.set_busy(SimTime::from_ns(20), false);
        }
        assert_eq!(u.finish(SimTime::from_ns(20)), Duration::ZERO);
        assert_eq!(u.utilization(SimTime::from_ns(100)), 0.0);
        // Zero-length toggles between real busy spans don't disturb the
        // accumulated total.
        let mut v = UtilizationTracker::new();
        v.set_busy(SimTime::from_ns(0), true);
        v.set_busy(SimTime::from_ns(10), true); // redundant re-assert
        v.set_busy(SimTime::from_ns(30), false);
        assert_eq!(v.finish(SimTime::from_ns(30)), Duration::from_ns(30));
    }

    #[test]
    fn utilization_zero_window_is_zero() {
        let mut u = UtilizationTracker::new();
        assert_eq!(u.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn utilization_fraction() {
        let mut u = UtilizationTracker::new();
        u.set_busy(SimTime::from_ns(0), true);
        u.set_busy(SimTime::from_ns(30), false);
        u.set_busy(SimTime::from_ns(70), true);
        let frac = u.utilization(SimTime::from_ns(100));
        assert!((frac - 0.6).abs() < 1e-12);
    }

    #[test]
    fn busy_timeline_splits_slices() {
        let mut tl = BusyTimeline::new(Duration::from_ns(10));
        tl.unit_up(SimTime::from_ns(0));
        tl.unit_up(SimTime::from_ns(5));
        tl.unit_down(SimTime::from_ns(15));
        let curve = tl.finish(SimTime::from_ns(20));
        // Slice 0: 1 unit for 5ns + 2 units for 5ns = 15 unit-ns -> 1.5.
        // Slice 1: 2 units for 5ns + 1 unit for 5ns = 15 unit-ns -> 1.5.
        assert_eq!(curve, vec![1.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "zero active")]
    fn timeline_underflow_panics() {
        let mut tl = BusyTimeline::new(Duration::from_ns(10));
        tl.unit_down(SimTime::from_ns(1));
    }
}
