//! Conservative-lookahead synchronization for partitioned event loops.
//!
//! A partitioned simulation splits its units into *lanes* that each own
//! a private calendar and advance in bulk-synchronous *rounds*: every
//! round the coordinator picks a shared horizon, each lane drains its
//! calendar strictly below the horizon, and everything a lane wants to
//! tell another lane (or a shared resource) is buffered as a message
//! and delivered at the next round boundary.
//!
//! Determinism at any worker-thread count comes from two rules this
//! module enforces:
//!
//! 1. The horizon is a pure function of simulated state — the next
//!    epoch boundary at or above the earliest pending event across all
//!    lanes ([`EpochWindow::horizon_for`]) — never of thread timing.
//! 2. Cross-lane messages are merged into one globally sorted sequence
//!    by `(time, key)` ([`MessagePool::drain_sorted`]), where `key` is
//!    a deterministic per-message identity, before any of them is
//!    delivered. Which worker produced a message is invisible after the
//!    sort, so any grouping of lanes onto threads yields byte-identical
//!    delivery order.

use crate::time::{Duration, SimTime};

/// The conservative lookahead window: lanes may only interact at
/// multiples of `window`, so a round that drains `[.., horizon)` can
/// run its lanes independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochWindow {
    window: Duration,
}

impl EpochWindow {
    /// Creates a window of `window` nanoseconds of lookahead.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — a zero window would make every
    /// round a single event and the rounds would never terminate.
    pub fn new(window: Duration) -> Self {
        assert!(!window.is_zero(), "epoch window must be positive");
        EpochWindow { window }
    }

    /// The window length.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The first epoch boundary strictly after `t`: the earliest
    /// instant a message emitted at `t` may be delivered to another
    /// lane.
    pub fn next_boundary(&self, t: SimTime) -> SimTime {
        let w = self.window.as_ns();
        let n = t.as_ns() / w + 1;
        SimTime::from_ns(n.saturating_mul(w))
    }

    /// The round horizon for an earliest pending event at `min_next`:
    /// the first boundary strictly above it. Every lane drains events
    /// with `time < horizon` this round.
    pub fn horizon_for(&self, min_next: SimTime) -> SimTime {
        self.next_boundary(min_next)
    }

    /// Quantizes a cross-lane delivery: the later of the message's own
    /// arrival time and the first boundary after `sent` — a message
    /// never lands inside the epoch it was produced in.
    pub fn quantize(&self, sent: SimTime, arrival: SimTime) -> SimTime {
        arrival.max(self.next_boundary(sent))
    }
}

/// A deterministically ordered pool of cross-lane messages.
///
/// Workers append in whatever interleaving the host scheduler produces;
/// [`drain_sorted`](MessagePool::drain_sorted) then yields them in
/// `(time, key)` order. As long as every message carries a unique
/// deterministic `key`, the drained order is a pure function of the
/// simulation — worker count and scheduling are invisible.
#[derive(Debug)]
pub struct MessagePool<M> {
    items: Vec<(SimTime, u128, M)>,
}

impl<M> Default for MessagePool<M> {
    fn default() -> Self {
        MessagePool { items: Vec::new() }
    }
}

impl<M> MessagePool<M> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one message.
    pub fn push(&mut self, at: SimTime, key: u128, msg: M) {
        self.items.push((at, key, msg));
    }

    /// Moves another pool's messages into this one (used to fold
    /// per-worker outboxes into the round's global pool).
    pub fn absorb(&mut self, other: &mut MessagePool<M>) {
        self.items.append(&mut other.items);
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Sorts by `(time, key)` and drains, returning the canonical
    /// delivery sequence for this round.
    ///
    /// The sort is unstable on purpose: keys must be unique, so no two
    /// messages ever compare equal and instability can never show.
    pub fn drain_sorted(&mut self) -> std::vec::Drain<'_, (SimTime, u128, M)> {
        self.items.sort_unstable_by_key(|&(t, k, _)| (t, k));
        self.items.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn boundary_is_strictly_after() {
        let w = EpochWindow::new(Duration::from_ns(500));
        assert_eq!(w.next_boundary(t(0)), t(500));
        assert_eq!(w.next_boundary(t(499)), t(500));
        assert_eq!(w.next_boundary(t(500)), t(1000));
        assert_eq!(w.next_boundary(t(501)), t(1000));
        assert_eq!(w.window(), Duration::from_ns(500));
    }

    #[test]
    fn quantize_never_lands_in_source_epoch() {
        let w = EpochWindow::new(Duration::from_ns(500));
        // Arrival already past the boundary: untouched.
        assert_eq!(w.quantize(t(100), t(700)), t(700));
        // Arrival inside the source epoch: pushed to the boundary.
        assert_eq!(w.quantize(t(100), t(200)), t(500));
        // Sent exactly on a boundary: delivery waits for the next one.
        assert_eq!(w.quantize(t(500), t(500)), t(1000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        EpochWindow::new(Duration::ZERO);
    }

    #[test]
    fn pool_drains_in_time_key_order_regardless_of_push_order() {
        let mut a: MessagePool<&str> = MessagePool::new();
        let mut b: MessagePool<&str> = MessagePool::new();
        // Two "workers" push in different interleavings.
        a.push(t(20), 1, "a-late");
        a.push(t(10), 7, "a-early-hi");
        b.push(t(10), 3, "b-early-lo");
        b.push(t(30), 0, "b-last");
        let mut merged = MessagePool::new();
        merged.absorb(&mut a);
        merged.absorb(&mut b);
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(merged.len(), 4);
        let order: Vec<&str> = merged.drain_sorted().map(|(_, _, m)| m).collect();
        assert_eq!(order, vec!["b-early-lo", "a-early-hi", "a-late", "b-last"]);
        assert!(merged.is_empty());

        // The reverse interleaving produces the identical sequence.
        let mut merged2 = MessagePool::new();
        merged2.push(t(30), 0, "b-last");
        merged2.push(t(10), 3, "b-early-lo");
        merged2.push(t(20), 1, "a-late");
        merged2.push(t(10), 7, "a-early-hi");
        let order2: Vec<&str> = merged2.drain_sorted().map(|(_, _, m)| m).collect();
        assert_eq!(order, order2);
    }
}
