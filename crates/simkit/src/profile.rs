//! Lightweight, compile-time-gated profiling: scoped phase timers and
//! per-run counters.
//!
//! The simulator's hot paths cannot afford instrumentation overhead in
//! ordinary builds, so everything here compiles to no-ops unless the
//! `profile` cargo feature is enabled:
//!
//! ```sh
//! cargo run --release --features simkit/profile -p beacon-bench --bin perf_smoke
//! ```
//!
//! With the feature on, recording is still gated at runtime: set
//! `BEACON_PROFILE=1` in the environment (or call [`set_enabled`]) to
//! start collecting. Two kinds of data are collected into one global
//! registry:
//!
//! * **Phases** — [`phase("engine/prep")`](phase) returns a guard that
//!   adds its scope's wall-clock time to the named phase on drop.
//! * **Counters** — [`count("calendar/pool_reuse", n)`](count) adds to
//!   a named monotonic counter (events popped, allocations avoided,
//!   queue depths observed, …).
//!
//! [`report`] renders everything recorded so far, sorted by name so the
//! output is stable; [`reset`] clears the registry between measurement
//! windows. See `docs/profiling.md` for the end-to-end workflow.
//!
//! # Examples
//!
//! ```
//! use simkit::profile;
//!
//! {
//!     let _p = profile::phase("example/setup");
//!     profile::count("example/items", 3);
//! }
//! // Without the `profile` feature (or with it, but disabled at
//! // runtime) nothing is recorded and the report is empty.
//! let text = profile::report();
//! assert!(text.is_empty() || text.contains("example/items"));
//! ```

#[cfg(feature = "profile")]
mod enabled {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    #[derive(Debug, Default, Clone, Copy)]
    struct Cell {
        /// Accumulated nanoseconds (phases) or count (counters).
        total: u64,
        /// Number of contributions.
        hits: u64,
    }

    #[derive(Debug, Default)]
    struct Registry {
        phases: BTreeMap<&'static str, Cell>,
        counters: BTreeMap<&'static str, Cell>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    fn enabled_flag() -> &'static AtomicBool {
        static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
        ENABLED.get_or_init(|| {
            AtomicBool::new(
                std::env::var("BEACON_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0"),
            )
        })
    }

    /// True when profiling is compiled in *and* enabled at runtime.
    pub fn is_enabled() -> bool {
        enabled_flag().load(Ordering::Relaxed)
    }

    /// Turns runtime collection on or off (overrides `BEACON_PROFILE`).
    pub fn set_enabled(on: bool) {
        enabled_flag().store(on, Ordering::Relaxed);
    }

    /// A scoped phase timer; adds its elapsed time on drop.
    #[derive(Debug)]
    pub struct PhaseGuard {
        name: &'static str,
        start: Option<Instant>,
    }

    impl Drop for PhaseGuard {
        fn drop(&mut self) {
            if let Some(start) = self.start {
                let ns = start.elapsed().as_nanos() as u64;
                let mut reg = registry().lock().expect("profile registry poisoned");
                let cell = reg.phases.entry(self.name).or_default();
                cell.total += ns;
                cell.hits += 1;
            }
        }
    }

    /// Starts a scoped phase timer named `name`.
    pub fn phase(name: &'static str) -> PhaseGuard {
        PhaseGuard {
            name,
            start: is_enabled().then(Instant::now),
        }
    }

    /// Adds `n` to the counter named `name`.
    pub fn count(name: &'static str, n: u64) {
        if !is_enabled() {
            return;
        }
        let mut reg = registry().lock().expect("profile registry poisoned");
        let cell = reg.counters.entry(name).or_default();
        cell.total += n;
        cell.hits += 1;
    }

    /// Clears everything recorded so far.
    pub fn reset() {
        let mut reg = registry().lock().expect("profile registry poisoned");
        reg.phases.clear();
        reg.counters.clear();
    }

    /// Renders the registry: one `phase <name> <total_ms> <hits>` or
    /// `count <name> <total> <hits>` line per entry, name-sorted.
    pub fn report() -> String {
        use std::fmt::Write as _;
        let reg = registry().lock().expect("profile registry poisoned");
        let mut out = String::new();
        for (name, c) in &reg.phases {
            let _ = writeln!(
                out,
                "phase {name} {:.3} ms over {} scopes",
                c.total as f64 / 1e6,
                c.hits
            );
        }
        for (name, c) in &reg.counters {
            let _ = writeln!(out, "count {name} {} over {} records", c.total, c.hits);
        }
        out
    }
}

#[cfg(feature = "profile")]
pub use enabled::{count, is_enabled, phase, report, reset, set_enabled, PhaseGuard};

#[cfg(not(feature = "profile"))]
mod disabled {
    /// Zero-sized stand-in for the scoped timer; does nothing on drop.
    #[derive(Debug)]
    pub struct PhaseGuard;

    /// No-op without the `profile` feature.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }

    /// No-op without the `profile` feature.
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// No-op without the `profile` feature.
    #[inline(always)]
    pub fn phase(_name: &'static str) -> PhaseGuard {
        PhaseGuard
    }

    /// No-op without the `profile` feature.
    #[inline(always)]
    pub fn count(_name: &'static str, _n: u64) {}

    /// No-op without the `profile` feature.
    #[inline(always)]
    pub fn reset() {}

    /// Always empty without the `profile` feature.
    #[inline(always)]
    pub fn report() -> String {
        String::new()
    }
}

#[cfg(not(feature = "profile"))]
pub use disabled::{count, is_enabled, phase, report, reset, set_enabled, PhaseGuard};

#[cfg(all(test, feature = "profile"))]
mod tests {
    use super::*;

    #[test]
    fn records_when_enabled() {
        set_enabled(true);
        reset();
        {
            let _p = phase("test/scope");
            count("test/counter", 2);
            count("test/counter", 3);
        }
        let text = report();
        assert!(text.contains("phase test/scope"));
        assert!(text.contains("count test/counter 5 over 2 records"));
        reset();
        assert!(report().is_empty());
        set_enabled(false);
    }

    #[test]
    fn silent_when_disabled() {
        set_enabled(false);
        reset();
        {
            let _p = phase("quiet/scope");
            count("quiet/counter", 1);
        }
        assert!(report().is_empty());
    }
}
