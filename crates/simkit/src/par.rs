//! Deterministic build-time parallelism.
//!
//! Offline preparation work (graph synthesis, feature synthesis, page
//! serialization) is embarrassingly parallel *as long as the output
//! cannot observe the schedule*. This module provides the minimal
//! scaffolding for that discipline without pulling in a thread-pool
//! dependency: jobs are partitioned by **fixed, input-derived chunk
//! boundaries** (never by worker count), each job writes only its own
//! disjoint output region, and workers are plain `std::thread::scope`
//! threads draining a shared queue. The result is byte-identical at any
//! thread count, including 1.
//!
//! The worker count comes from [`build_threads`]: the
//! `BEACON_BUILD_THREADS` environment variable if set, otherwise the
//! host's available parallelism. [`set_build_threads`] overrides it at
//! runtime (used by benchmarks sweeping thread counts and by
//! determinism tests).
//!
//! # Examples
//!
//! ```
//! use simkit::par;
//!
//! let mut data = vec![0u64; 10_000];
//! par::for_each_chunk_mut(&mut data, 1024, |start, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (start + i) as u64 * 3;
//!     }
//! });
//! assert_eq!(data[7777], 7777 * 3);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 means "not yet resolved"; resolution happens lazily on first use
/// so `set_build_threads` can win over the environment when called
/// before any parallel work runs.
static BUILD_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads build-time parallel loops use.
///
/// Resolution order: a prior [`set_build_threads`] call, else the
/// `BEACON_BUILD_THREADS` environment variable (must parse to ≥ 1),
/// else the host's available parallelism. Never less than 1.
pub fn build_threads() -> usize {
    let v = BUILD_THREADS.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let n = resolve_default();
    // Benign race: concurrent first calls resolve to the same value.
    BUILD_THREADS.store(n, Ordering::Relaxed);
    n
}

fn resolve_default() -> usize {
    if let Ok(s) = std::env::var("BEACON_BUILD_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Sets the worker count for subsequent build-time parallel loops
/// (clamped to ≥ 1). Output never depends on this value — only
/// wall-clock time does.
pub fn set_build_threads(n: usize) {
    BUILD_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Runs every job, on [`build_threads`] scoped workers when that pays.
///
/// Jobs must be independent: each may only touch state it owns (moved
/// captures or disjoint `&mut` regions). With one worker (or one job)
/// everything runs inline on the caller's thread, in order — the
/// sequential reference the parallel schedule is tested against.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers first).
pub fn run_jobs<F>(jobs: Vec<F>)
where
    F: FnOnce() + Send,
{
    let threads = build_threads().min(jobs.len());
    if threads <= 1 {
        for job in jobs {
            job();
        }
        return;
    }
    let queue = Mutex::new(jobs);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("build job queue poisoned").pop();
                match job {
                    Some(job) => job(),
                    None => break,
                }
            });
        }
    });
}

/// Splits `data` into fixed `chunk`-element pieces and applies `f` to
/// each, in parallel. `f` receives the chunk's starting element index
/// and the chunk itself; boundaries depend only on `chunk`, so results
/// are identical at any thread count.
///
/// # Panics
///
/// Panics if `chunk` is zero; propagates a panic from `f`.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let f = &f;
    let jobs: Vec<_> = data
        .chunks_mut(chunk)
        .enumerate()
        .map(|(i, piece)| move || f(i * chunk, piece))
        .collect();
    run_jobs(jobs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_fill_matches_sequential_at_any_thread_count() {
        let expected: Vec<u64> = (0..5_000u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 8] {
            set_build_threads(threads);
            let mut data = vec![0u64; 5_000];
            for_each_chunk_mut(&mut data, 333, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = ((start + i) as u64).wrapping_mul(0x9E37);
                }
            });
            assert_eq!(data, expected, "threads={threads}");
        }
        set_build_threads(1);
    }

    #[test]
    fn run_jobs_executes_every_job_once() {
        use std::sync::atomic::AtomicU64;
        set_build_threads(4);
        let hits = AtomicU64::new(0);
        let jobs: Vec<_> = (0..100u64)
            .map(|i| {
                let hits = &hits;
                move || {
                    hits.fetch_add(i + 1, Ordering::Relaxed);
                }
            })
            .collect();
        run_jobs(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 100 * 101 / 2);
        set_build_threads(1);
    }

    #[test]
    fn empty_inputs_are_fine() {
        run_jobs(Vec::<fn()>::new());
        let mut empty: [u8; 0] = [];
        for_each_chunk_mut(&mut empty, 16, |_, _| panic!("no chunks expected"));
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let mut data = [1u8];
        for_each_chunk_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn empty_queue_under_multithread_setting_spawns_nothing() {
        // threads = min(build_threads, jobs) = 0 → the inline path; an
        // empty queue must return immediately even when the configured
        // worker count is large.
        set_build_threads(16);
        run_jobs(Vec::<fn()>::new());
        let mut empty: [u64; 0] = [];
        for_each_chunk_mut(&mut empty, 1, |_, _| panic!("no chunks expected"));
        set_build_threads(1);
    }

    #[test]
    fn single_thread_runs_inline_and_in_order() {
        use std::sync::atomic::AtomicUsize;
        set_build_threads(1);
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        let inline_hits = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                let order = &order;
                let inline_hits = &inline_hits;
                move || {
                    if std::thread::current().id() == caller {
                        inline_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    order.lock().unwrap().push(i);
                }
            })
            .collect();
        run_jobs(jobs);
        // Degenerate path: no workers; every job ran on the caller's
        // thread, in submission order.
        assert_eq!(inline_hits.load(Ordering::Relaxed), 8);
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_larger_than_slice_yields_one_full_chunk() {
        for threads in [1, 4] {
            set_build_threads(threads);
            let mut data = [7u32; 5];
            let calls = Mutex::new(Vec::new());
            for_each_chunk_mut(&mut data, 100, |start, chunk| {
                calls.lock().unwrap().push((start, chunk.len()));
                for v in chunk.iter_mut() {
                    *v *= 2;
                }
            });
            // One call covering the whole (shorter-than-chunk) slice.
            assert_eq!(*calls.lock().unwrap(), vec![(0, 5)]);
            assert_eq!(data, [14; 5]);
        }
        set_build_threads(1);
    }
}
