//! Sim-time observability: hierarchical spans, Chrome trace export, and
//! structured per-run metric reports.
//!
//! Three pieces, all deterministic and all zero-cost when disabled:
//!
//! - [`SpanRecorder`] collects [`Span`]s — intervals of simulated time
//!   keyed by a `(unit kind, unit index)` pair. A disabled recorder
//!   (capacity 0, the default) costs one predictable branch per record
//!   site, mirroring the [`Trace`](crate::Trace) pattern the engine hot
//!   path already proved cheap.
//! - [`ChromeTraceWriter`] exports a recorder as Chrome trace-event
//!   JSON, loadable in [Perfetto](https://ui.perfetto.dev) or
//!   `chrome://tracing`. Events are sorted by `(time, unit, seq)` so
//!   identical runs produce byte-identical files.
//! - [`MetricsRegistry`] is an insertion-ordered collection of named
//!   sections of named values, serializing to JSON with stable field
//!   ordering and deterministic number formatting — the per-run metric
//!   report format.
//!
//! Nothing here uses wall-clock time, host thread identity, or hash-map
//! iteration order: two identical runs serialize byte-identically
//! regardless of `--jobs` or host.

use std::io::{self, Write};

use crate::stats::{Histogram, Summary};
use crate::time::{Duration, SimTime};

pub mod latency;

/// The classes of simulated units spans are keyed by.
///
/// The discriminant doubles as the Chrome-trace `pid`, so the Perfetto
/// process list shows units grouped top-down in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum UnitKind {
    /// The engine itself (batch-level phases).
    Engine = 0,
    /// A host CPU core.
    HostCpu = 1,
    /// An embedded (firmware) core.
    Core = 2,
    /// The hardware command router.
    Router = 3,
    /// A flash die.
    Die = 4,
    /// A flash channel bus.
    Channel = 5,
    /// SSD-internal DRAM.
    Dram = 6,
    /// The PCIe link.
    Pcie = 7,
    /// The GNN accelerator (systolic + vector arrays).
    Accelerator = 8,
}

impl UnitKind {
    /// Every kind, in `pid` order.
    pub const ALL: [UnitKind; 9] = [
        UnitKind::Engine,
        UnitKind::HostCpu,
        UnitKind::Core,
        UnitKind::Router,
        UnitKind::Die,
        UnitKind::Channel,
        UnitKind::Dram,
        UnitKind::Pcie,
        UnitKind::Accelerator,
    ];

    /// Stable lower-case display name (also the trace process name).
    pub fn as_str(self) -> &'static str {
        match self {
            UnitKind::Engine => "engine",
            UnitKind::HostCpu => "host_cpu",
            UnitKind::Core => "core",
            UnitKind::Router => "router",
            UnitKind::Die => "die",
            UnitKind::Channel => "channel",
            UnitKind::Dram => "dram",
            UnitKind::Pcie => "pcie",
            UnitKind::Accelerator => "accelerator",
        }
    }

    fn pid(self) -> u32 {
        self as u32 + 1
    }
}

/// One span of simulated time on one unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Unit class.
    pub kind: UnitKind,
    /// Unit index within its class (die index, channel index, ...).
    pub unit: u32,
    /// Span name (e.g. `"sense"`, `"xfer"`, `"compute"`).
    pub name: &'static str,
    /// Span start.
    pub start: SimTime,
    /// Span end (`== start` for instant events).
    pub end: SimTime,
    /// Free-form payload (hop number, byte count, batch index, ...).
    pub value: f64,
    /// Record-order sequence number — the determinism tiebreaker.
    pub seq: u64,
}

/// Bounded span collector; disabled unless built with a capacity.
///
/// Recording past the capacity drops the new span and counts it in
/// [`dropped`](SpanRecorder::dropped) — the retained prefix stays a
/// faithful, deterministic view of the start of the run.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

impl SpanRecorder {
    /// A disabled recorder: every `record` is a no-op after one branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recorder retaining up to `capacity` spans (0 disables).
    pub fn with_capacity(capacity: usize) -> Self {
        SpanRecorder {
            // Lazy: large captures grow on demand, tiny ones stay tiny.
            spans: Vec::new(),
            capacity,
            seq: 0,
            dropped: 0,
        }
    }

    /// Whether spans are being collected. Call sites with non-trivial
    /// argument computation should branch on this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one span.
    #[inline]
    pub fn record(
        &mut self,
        kind: UnitKind,
        unit: u32,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        value: f64,
    ) {
        if !self.is_enabled() {
            return;
        }
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.spans.push(Span {
            kind,
            unit,
            name,
            start,
            end,
            value,
            seq,
        });
    }

    /// Records an instant (zero-length) event.
    #[inline]
    pub fn instant(
        &mut self,
        kind: UnitKind,
        unit: u32,
        name: &'static str,
        at: SimTime,
        value: f64,
    ) {
        self.record(kind, unit, name, at, at, value);
    }

    /// Spans retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` if no spans were retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans dropped after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retention capacity this recorder was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates retained spans in record order.
    pub fn iter(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Appends another recorder's spans, re-stamping their sequence
    /// numbers to continue this recorder's — the merge step for
    /// per-partition recorders. Absorbing in a fixed partition order
    /// yields one recorder indistinguishable from a serial recording;
    /// capacity and drop accounting behave exactly as if the absorbed
    /// spans had been recorded here directly.
    pub fn absorb(&mut self, other: &SpanRecorder) {
        self.dropped += other.dropped;
        for s in &other.spans {
            self.record(s.kind, s.unit, s.name, s.start, s.end, s.value);
        }
    }

    /// Absorbs spans a caller staged in exact record order (their `seq`
    /// fields are ignored and re-stamped), clearing `batch`.
    ///
    /// This is the batched counterpart of [`record`](Self::record) for
    /// hot loops: the caller pushes plain [`Span`] values into its own
    /// staging buffer with no capacity or sequence bookkeeping, then
    /// flushes once per phase. Because the staging buffer is a single
    /// FIFO, sequence numbers are assigned in the identical order a
    /// per-call `record` would have used, and the capacity/drop
    /// accounting is applied span-by-span exactly as `record` applies
    /// it — the resulting recorder is indistinguishable.
    pub fn record_batch(&mut self, batch: &mut Vec<Span>) {
        if !self.is_enabled() {
            batch.clear();
            return;
        }
        let room = self.capacity - self.spans.len().min(self.capacity);
        self.spans.reserve(batch.len().min(room));
        for s in batch.drain(..) {
            if self.spans.len() >= self.capacity {
                self.dropped += 1;
                continue;
            }
            let seq = self.seq;
            self.seq += 1;
            self.spans.push(Span { seq, ..s });
        }
    }

    /// Retained spans sorted canonically by `(time, unit, seq)` — the
    /// export order.
    pub fn sorted(&self) -> Vec<Span> {
        let mut v = self.spans.clone();
        v.sort_by_key(|s| (s.start, s.kind, s.unit, s.seq));
        v
    }
}

/// Exports a [`SpanRecorder`] as Chrome trace-event JSON.
///
/// Each span becomes a `ph:"X"` complete event (or `ph:"i"` for instant
/// events) with `pid` = unit kind and `tid` = unit index; metadata
/// events name the processes/threads so Perfetto shows "die 3" instead
/// of "pid 5 tid 3". Timestamps are microseconds with fixed
/// three-decimal nanosecond precision, formatted from integers — no
/// float round-trip, so output is byte-stable across hosts.
pub struct ChromeTraceWriter;

impl ChromeTraceWriter {
    /// Writes the full trace JSON document.
    pub fn write<W: Write>(spans: &SpanRecorder, mut w: W) -> io::Result<()> {
        w.write_all(b"{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")?;
        let sorted = spans.sorted();
        let mut first = true;
        // Name each unit kind present (plus sort order) exactly once,
        // then each unit within it, so Perfetto rows read "die 3"
        // rather than bare pid/tid numbers.
        for kind in UnitKind::ALL {
            let mut units: Vec<u32> = sorted
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.unit)
                .collect();
            units.sort_unstable();
            units.dedup();
            if units.is_empty() {
                continue;
            }
            Self::sep(&mut w, &mut first)?;
            write!(
                w,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}},\n\
                 {{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_sort_index\",\"args\":{{\"sort_index\":{pid}}}}}",
                pid = kind.pid(),
                name = kind.as_str(),
            )?;
            for unit in units {
                Self::sep(&mut w, &mut first)?;
                write!(
                    w,
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name} {tid}\"}}}}",
                    pid = kind.pid(),
                    tid = unit,
                    name = kind.as_str(),
                )?;
            }
        }
        for s in &sorted {
            Self::sep(&mut w, &mut first)?;
            let ts = micros(s.start.as_ns());
            if s.end == s.start {
                write!(
                    w,
                    "{{\"name\":{name},\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{\"v\":{v},\"seq\":{seq}}}}}",
                    name = json_string(s.name),
                    cat = s.kind.as_str(),
                    pid = s.kind.pid(),
                    tid = s.unit,
                    ts = ts,
                    v = format_f64(s.value),
                    seq = s.seq,
                )?;
            } else {
                write!(
                    w,
                    "{{\"name\":{name},\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"v\":{v},\"seq\":{seq}}}}}",
                    name = json_string(s.name),
                    cat = s.kind.as_str(),
                    pid = s.kind.pid(),
                    tid = s.unit,
                    ts = ts,
                    dur = micros((s.end - s.start).as_ns()),
                    v = format_f64(s.value),
                    seq = s.seq,
                )?;
            }
        }
        w.write_all(b"\n]}\n")
    }

    fn sep<W: Write>(w: &mut W, first: &mut bool) -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            w.write_all(b",\n")
        }
    }
}

/// Nanoseconds rendered as a microsecond decimal with exactly three
/// fractional digits (`1234` → `"1.234"`), entirely in integer math.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// One metric value. Numbers render without quotes; strings are
/// escaped.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A boolean flag.
    Bool(bool),
    /// An unsigned counter / total.
    U64(u64),
    /// A float (rendered with shortest-round-trip formatting; non-finite
    /// values render as `null`).
    F64(f64),
    /// A string.
    Str(String),
}

impl MetricValue {
    fn render(&self) -> String {
        match self {
            MetricValue::Bool(b) => b.to_string(),
            MetricValue::U64(v) => v.to_string(),
            MetricValue::F64(v) => format_f64(*v),
            MetricValue::Str(s) => json_string(s),
        }
    }
}

/// An insertion-ordered set of named metric values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Section {
    entries: Vec<(String, MetricValue)>,
}

impl Section {
    /// Sets `key` (replacing in place if present, preserving its
    /// original position).
    pub fn set(&mut self, key: &str, value: MetricValue) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
    }

    /// Sets an unsigned counter.
    pub fn set_u64(&mut self, key: &str, v: u64) {
        self.set(key, MetricValue::U64(v));
    }

    /// Sets a float.
    pub fn set_f64(&mut self, key: &str, v: f64) {
        self.set(key, MetricValue::F64(v));
    }

    /// Sets a boolean.
    pub fn set_bool(&mut self, key: &str, v: bool) {
        self.set(key, MetricValue::Bool(v));
    }

    /// Sets a string.
    pub fn set_str(&mut self, key: &str, v: &str) {
        self.set(key, MetricValue::Str(v.to_string()));
    }

    /// Sets a duration, in integer nanoseconds under `<key>_ns`.
    pub fn set_duration(&mut self, key: &str, d: Duration) {
        self.set_u64(&format!("{key}_ns"), d.as_ns());
    }

    /// Snapshots a [`Summary`] as `<prefix>_{count,mean,min,max}`.
    pub fn set_summary(&mut self, prefix: &str, s: &Summary) {
        self.set_u64(&format!("{prefix}_count"), s.count());
        self.set_f64(&format!("{prefix}_mean"), s.mean().unwrap_or(0.0));
        self.set_f64(&format!("{prefix}_min"), s.min().unwrap_or(0.0));
        self.set_f64(&format!("{prefix}_max"), s.max().unwrap_or(0.0));
    }

    /// Snapshots a [`Histogram`] as
    /// `<prefix>_{count,mean_ns,p50_ns,p99_ns,max_ns,overflow}`.
    pub fn set_histogram(&mut self, prefix: &str, h: &Histogram) {
        let ns = |d: Option<Duration>| d.map_or(0, |d| d.as_ns());
        self.set_u64(&format!("{prefix}_count"), h.count());
        self.set_u64(&format!("{prefix}_mean_ns"), ns(h.mean()));
        self.set_u64(&format!("{prefix}_p50_ns"), ns(h.percentile(0.50)));
        self.set_u64(&format!("{prefix}_p99_ns"), ns(h.percentile(0.99)));
        self.set_u64(&format!("{prefix}_max_ns"), ns(h.max()));
        self.set_u64(&format!("{prefix}_overflow"), h.overflow());
    }

    /// Looks a value up (mainly for tests).
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Entries in insertion order — lets exporters enumerate fields
    /// generically instead of hardcoding (and silently missing) names.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the section has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An insertion-ordered collection of [`Section`]s serializing to JSON
/// with stable field ordering — the per-run metric report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    sections: Vec<(String, Section)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds or appends the named section.
    pub fn section(&mut self, name: &str) -> &mut Section {
        if let Some(i) = self.sections.iter().position(|(n, _)| n == name) {
            return &mut self.sections[i].1;
        }
        self.sections.push((name.to_string(), Section::default()));
        &mut self.sections.last_mut().unwrap().1
    }

    /// Looks a section up without inserting.
    pub fn get(&self, name: &str) -> Option<&Section> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Section names in order (mainly for tests and schema checks).
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Sections in insertion order. Consumers that iterate here see
    /// every section the run produced — including ones added after
    /// they were written (e.g. `replay`) — rather than a fixed list.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Section)> {
        self.sections.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Renders the report as pretty JSON (2-space indent, stable
    /// ordering, trailing newline).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\n");
        for (si, (name, section)) in self.sections.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&json_string(name));
            out.push_str(": {\n");
            for (ei, (key, value)) in section.entries.iter().enumerate() {
                out.push_str("    ");
                out.push_str(&json_string(key));
                out.push_str(": ");
                out.push_str(&value.render());
                if ei + 1 < section.entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("  }");
            if si + 1 < self.sections.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    /// Writes the JSON report.
    pub fn write_json<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.to_json_string().as_bytes())
    }
}

/// Deterministic JSON float formatting: shortest round-trip for finite
/// values (`3.0`, `0.125`, `1e300`), `null` for NaN/infinities.
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes a string for JSON.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = SpanRecorder::disabled();
        assert!(!r.is_enabled());
        r.record(UnitKind::Die, 0, "sense", t(0), t(10), 1.0);
        r.instant(UnitKind::Engine, 0, "done", t(5), 0.0);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_retention_and_counts_drops() {
        let mut r = SpanRecorder::with_capacity(2);
        for i in 0..5 {
            r.record(UnitKind::Die, i, "sense", t(i as u64), t(i as u64 + 1), 0.0);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        // The retained prefix is the first-recorded spans.
        assert_eq!(r.iter().map(|s| s.unit).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn sorted_orders_by_time_then_unit_then_seq() {
        let mut r = SpanRecorder::with_capacity(16);
        r.record(UnitKind::Channel, 1, "xfer", t(20), t(30), 0.0);
        r.record(UnitKind::Die, 3, "sense", t(10), t(20), 0.0);
        r.record(UnitKind::Die, 1, "sense", t(10), t(15), 0.0);
        r.record(UnitKind::Die, 1, "sense", t(10), t(18), 0.0);
        let order: Vec<(u64, u32, u64)> = r
            .sorted()
            .iter()
            .map(|s| (s.start.as_ns(), s.unit, s.seq))
            .collect();
        assert_eq!(order, vec![(10, 1, 2), (10, 1, 3), (10, 3, 1), (20, 1, 0)]);
    }

    #[test]
    fn chrome_trace_is_deterministic_and_well_formed() {
        let mut r = SpanRecorder::with_capacity(16);
        r.record(UnitKind::Die, 2, "sense", t(1_500), t(4_500), 1.0);
        r.instant(UnitKind::Engine, 0, "cmd_done", t(4_500), 2.0);
        let mut a = Vec::new();
        ChromeTraceWriter::write(&r, &mut a).unwrap();
        let mut b = Vec::new();
        ChromeTraceWriter::write(&r, &mut b).unwrap();
        assert_eq!(a, b);
        let s = String::from_utf8(a).unwrap();
        assert!(s.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ts\":1.500"));
        assert!(s.contains("\"dur\":3.000"));
        assert!(s.contains("\"name\":\"process_name\""));
        assert!(s.contains("{\"name\":\"die\"}"));
        assert!(s.contains("\"name\":\"thread_name\""));
        assert!(s.contains("{\"name\":\"die 2\"}"));
        assert!(s.contains("{\"name\":\"engine 0\"}"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn micros_is_fixed_point() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn registry_preserves_insertion_order_and_is_stable() {
        let mut m = MetricsRegistry::new();
        m.section("zeta").set_u64("b", 2);
        m.section("alpha").set_f64("x", 0.125);
        m.section("zeta").set_u64("a", 1);
        m.section("zeta").set_u64("b", 7); // replace in place
        assert_eq!(m.section_names(), vec!["zeta", "alpha"]);
        let json = m.to_json_string();
        assert_eq!(json, m.clone().to_json_string());
        let zb = json.find("\"b\": 7").unwrap();
        let za = json.find("\"a\": 1").unwrap();
        assert!(zb < za, "replaced key keeps its original position");
        assert!(json.find("\"zeta\"").unwrap() < json.find("\"alpha\"").unwrap());
    }

    #[test]
    fn float_formatting_is_json_safe() {
        assert_eq!(format_f64(3.0), "3.0");
        assert_eq!(format_f64(0.1), "0.1");
        assert_eq!(format_f64(f64::NAN), "null");
        assert_eq!(format_f64(f64::INFINITY), "null");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn summary_and_histogram_snapshots() {
        let mut s = Summary::default();
        s.record(2.0);
        s.record(4.0);
        let mut h = Histogram::new(Duration::from_ns(10), 4);
        h.record(Duration::from_ns(5));
        h.record(Duration::from_ns(500));
        let mut sec = Section::default();
        sec.set_summary("lat", &s);
        sec.set_histogram("q", &h);
        assert_eq!(sec.get("lat_count"), Some(&MetricValue::U64(2)));
        assert_eq!(sec.get("lat_mean"), Some(&MetricValue::F64(3.0)));
        assert_eq!(sec.get("q_count"), Some(&MetricValue::U64(2)));
        assert_eq!(sec.get("q_overflow"), Some(&MetricValue::U64(1)));
        assert_eq!(sec.get("q_max_ns"), Some(&MetricValue::U64(500)));
    }
}
