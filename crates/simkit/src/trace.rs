//! Bounded event tracing with CSV export.
//!
//! Simulations emit [`TraceEvent`]s into a [`Trace`] ring; the trace
//! can then be exported as CSV for external plotting (the raw material
//! behind timeline figures like the paper's Fig 15/16). The ring is
//! bounded so tracing a long run cannot exhaust memory — the newest
//! events win.

use std::collections::VecDeque;
use std::io::{self, Write};

use crate::time::SimTime;

/// One traced event: a timestamped, labeled record with an optional
/// numeric payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// Event category (e.g. "die_start", "xfer_done").
    pub kind: &'static str,
    /// Which unit it concerns (die id, channel id, command id...).
    pub unit: u64,
    /// Free payload (bytes moved, hop number, ...).
    pub value: f64,
}

/// A bounded in-memory event trace.
///
/// # Examples
///
/// ```
/// use simkit::trace::Trace;
/// use simkit::SimTime;
///
/// let mut trace = Trace::with_capacity(2);
/// trace.record(SimTime::from_ns(1), "a", 0, 0.0);
/// trace.record(SimTime::from_ns(2), "b", 0, 0.0);
/// trace.record(SimTime::from_ns(3), "c", 0, 0.0); // evicts "a"
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().next().unwrap().kind, "b");
/// assert_eq!(trace.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace bounded to `capacity` events (0 disables
    /// recording entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            ring: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (dropping the oldest when full).
    pub fn record(&mut self, at: SimTime, kind: &'static str, unit: u64, value: f64) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent {
            at,
            kind,
            unit,
            value,
        });
    }

    /// Appends another trace's events (oldest-first), subject to this
    /// ring's own capacity — the merge step for per-partition traces.
    /// Drop counts carry over.
    pub fn absorb(&mut self, other: &Trace) {
        self.dropped += other.dropped;
        for e in &other.ring {
            self.record(e.at, e.kind, e.unit, e.value);
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted or suppressed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Writes the trace as CSV (`time_ns,kind,unit,value`) to `writer`.
    /// A `&mut` reference can be passed as the writer.
    ///
    /// `kind` labels containing CSV metacharacters (comma, quote,
    /// newline) are quoted with doubled inner quotes per RFC 4180, so a
    /// hostile or careless label can never corrupt the row structure.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn to_csv<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writeln!(writer, "time_ns,kind,unit,value")?;
        for e in &self.ring {
            writeln!(
                writer,
                "{},{},{},{}",
                e.at.as_ns(),
                csv_field(e.kind),
                e.unit,
                e.value
            )?;
        }
        Ok(())
    }
}

/// Quotes a CSV field when it contains a metacharacter; passes plain
/// fields through untouched (borrowed, no allocation on the fast path).
fn csv_field(s: &str) -> std::borrow::Cow<'_, str> {
    if s.contains(['"', ',', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", s.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::with_capacity(10);
        t.record(SimTime::from_ns(5), "x", 1, 2.0);
        t.record(SimTime::from_ns(9), "y", 2, 3.0);
        let kinds: Vec<&str> = t.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["x", "y"]);
        assert!(!t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for i in 0..10u64 {
            t.record(SimTime::from_ns(i), "e", i, 0.0);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.iter().next().unwrap().unit, 7);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut t = Trace::with_capacity(0);
        t.record(SimTime::ZERO, "e", 0, 0.0);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn csv_escapes_hostile_kind_labels() {
        let mut t = Trace::with_capacity(4);
        t.record(SimTime::from_ns(1), "a,b", 0, 1.0);
        t.record(SimTime::from_ns(2), "say \"hi\"", 0, 2.0);
        t.record(SimTime::from_ns(3), "line\nbreak", 0, 3.0);
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("1,\"a,b\",0,1"));
        assert!(s.contains("2,\"say \"\"hi\"\"\",0,2"));
        assert!(s.contains("3,\"line\nbreak\",0,3"));
        // Unquoted commas appear only as the three real separators per
        // row: every data row still splits into exactly four fields
        // under an RFC 4180 reader (quoted regions keep theirs).
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn csv_export_of_short_ring_reflects_evictions() {
        // A ring shorter than the event stream exports only the
        // retained tail — header plus `capacity` rows, newest last.
        let mut t = Trace::with_capacity(2);
        for i in 0..5u64 {
            t.record(SimTime::from_ns(i), "e", i, 0.0);
        }
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "3,e,3,0");
        assert_eq!(lines[2], "4,e,4,0");
        assert_eq!(t.dropped(), 3);
    }

    /// A writer that fails after `ok_writes` successful writes.
    struct FailingWriter {
        ok_writes: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(io::Error::other("disk full"));
            }
            self.ok_writes -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn csv_export_propagates_io_errors() {
        let mut t = Trace::with_capacity(4);
        t.record(SimTime::from_ns(1), "e", 0, 0.0);
        // Failure on the very first write (the header)...
        let err = t.to_csv(FailingWriter { ok_writes: 0 }).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        // ...and mid-body, after the header went through.
        assert!(t.to_csv(FailingWriter { ok_writes: 1 }).is_err());
        // A healthy writer still succeeds afterwards (export does not
        // consume or corrupt the trace).
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn csv_export() {
        let mut t = Trace::with_capacity(4);
        t.record(SimTime::from_ns(1), "die_start", 3, 4096.0);
        t.record(SimTime::from_ns(2), "xfer_done", 3, 456.0);
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "time_ns,kind,unit,value");
        assert_eq!(lines[1], "1,die_start,3,4096");
        assert_eq!(lines[2], "2,xfer_done,3,456");
    }
}
