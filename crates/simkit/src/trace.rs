//! Bounded event tracing with CSV export.
//!
//! Simulations emit [`TraceEvent`]s into a [`Trace`] ring; the trace
//! can then be exported as CSV for external plotting (the raw material
//! behind timeline figures like the paper's Fig 15/16). The ring is
//! bounded so tracing a long run cannot exhaust memory — the newest
//! events win.

use std::collections::VecDeque;
use std::io::{self, Write};

use crate::time::SimTime;

/// One traced event: a timestamped, labeled record with an optional
/// numeric payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// Event category (e.g. "die_start", "xfer_done").
    pub kind: &'static str,
    /// Which unit it concerns (die id, channel id, command id...).
    pub unit: u64,
    /// Free payload (bytes moved, hop number, ...).
    pub value: f64,
}

/// A bounded in-memory event trace.
///
/// # Examples
///
/// ```
/// use simkit::trace::Trace;
/// use simkit::SimTime;
///
/// let mut trace = Trace::with_capacity(2);
/// trace.record(SimTime::from_ns(1), "a", 0, 0.0);
/// trace.record(SimTime::from_ns(2), "b", 0, 0.0);
/// trace.record(SimTime::from_ns(3), "c", 0, 0.0); // evicts "a"
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().next().unwrap().kind, "b");
/// assert_eq!(trace.dropped(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace bounded to `capacity` events (0 disables
    /// recording entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            ring: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (dropping the oldest when full).
    pub fn record(&mut self, at: SimTime, kind: &'static str, unit: u64, value: f64) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent {
            at,
            kind,
            unit,
            value,
        });
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted or suppressed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Writes the trace as CSV (`time_ns,kind,unit,value`) to `writer`.
    /// A `&mut` reference can be passed as the writer.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn to_csv<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writeln!(writer, "time_ns,kind,unit,value")?;
        for e in &self.ring {
            writeln!(writer, "{},{},{},{}", e.at.as_ns(), e.kind, e.unit, e.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::with_capacity(10);
        t.record(SimTime::from_ns(5), "x", 1, 2.0);
        t.record(SimTime::from_ns(9), "y", 2, 3.0);
        let kinds: Vec<&str> = t.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["x", "y"]);
        assert!(!t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for i in 0..10u64 {
            t.record(SimTime::from_ns(i), "e", i, 0.0);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.iter().next().unwrap().unit, 7);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut t = Trace::with_capacity(0);
        t.record(SimTime::ZERO, "e", 0, 0.0);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn csv_export() {
        let mut t = Trace::with_capacity(4);
        t.record(SimTime::from_ns(1), "die_start", 3, 4096.0);
        t.record(SimTime::from_ns(2), "xfer_done", 3, 456.0);
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "time_ns,kind,unit,value");
        assert_eq!(lines[1], "1,die_start,3,4096");
        assert_eq!(lines[2], "2,xfer_done,3,456");
    }
}
