//! # simkit — deterministic discrete-event simulation kernel
//!
//! `simkit` provides the primitives that every timing model in the
//! BeaconGNN reproduction is built on:
//!
//! * [`SimTime`] / [`Duration`] — nanosecond-resolution simulated time,
//!   as newtypes so wall-clock and simulated time can never be confused.
//! * [`Calendar`] — a monotonic event calendar (priority queue) with
//!   deterministic FIFO tie-breaking for events scheduled at the same
//!   instant.
//! * [`rng`] — seedable, portable pseudo-random number generators
//!   (SplitMix64 and xoshiro256**). Simulations never touch OS entropy,
//!   so identical configurations replay identically.
//! * [`par`] — deterministic build-time parallelism: fixed-boundary
//!   chunking over scoped worker threads, byte-identical at any thread
//!   count.
//! * [`sync`] — conservative-lookahead primitives for partitioned
//!   event loops: epoch-window horizon math and a deterministically
//!   ordered cross-partition message pool.
//! * [`stats`] — counters, streaming summaries, fixed-bin histograms,
//!   time-weighted utilization trackers and event timelines used to
//!   regenerate the paper's figures.
//! * [`resource`] — first-come-first-served serial and bandwidth
//!   resources with queueing-delay accounting.
//! * [`obs`] — sim-time observability: unit-keyed spans, Chrome
//!   trace-event export (Perfetto-loadable), and deterministic
//!   per-run metric reports with stable field ordering.
//!
//! ## Example
//!
//! ```
//! use simkit::{Calendar, SimTime, Duration};
//!
//! let mut cal: Calendar<&'static str> = Calendar::new();
//! cal.schedule(SimTime::ZERO + Duration::from_us(3), "read done");
//! cal.schedule(SimTime::ZERO + Duration::from_us(1), "issue");
//! let (t, ev) = cal.pop().unwrap();
//! assert_eq!(ev, "issue");
//! assert_eq!(t, SimTime::from_ns(1_000));
//! ```

pub mod calendar;
pub mod obs;
pub mod par;
pub mod profile;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;
pub mod trace;

pub use calendar::{Calendar, EventKey, PoolStats};
pub use obs::latency::{
    ChainTable, LatencyHistogram, LatencyReport, PathArena, PathAttr, QueryLat, Stage, NO_PATH,
};
pub use obs::{
    ChromeTraceWriter, MetricValue, MetricsRegistry, Section, Span, SpanRecorder, UnitKind,
};
pub use resource::{BandwidthResource, SerialResource};
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use sync::{EpochWindow, MessagePool};
pub use time::{Duration, SimTime};
pub use trace::{Trace, TraceEvent};
