//! Property tests for the simulation kernel's ordering guarantees.

use proptest::prelude::*;
use simkit::{Calendar, Duration, SerialResource, SimTime};

proptest! {
    /// The calendar delivers events in nondecreasing time order, with
    /// FIFO tie-breaking among equal timestamps.
    #[test]
    fn calendar_orders_any_schedule(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_ns(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, id)) = cal.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(at >= lt, "time went backwards");
                if at == lt {
                    // FIFO among ties: schedule order == insertion index.
                    prop_assert!(
                        times[lid] != times[id] || lid < id,
                        "tie broken out of order"
                    );
                }
            }
            last = Some((at, id));
        }
    }

    /// Serial-resource grants never overlap and respect arrival order:
    /// for arrivals issued in nondecreasing time order, each grant
    /// starts no earlier than the previous grant's end or its own
    /// arrival.
    #[test]
    fn serial_resource_grants_are_disjoint(
        jobs in proptest::collection::vec((0u64..500, 1u64..50), 1..100),
    ) {
        let mut r = SerialResource::new();
        let mut arrivals: Vec<(u64, u64)> = jobs;
        arrivals.sort_by_key(|&(a, _)| a);
        let mut prev_end = SimTime::ZERO;
        let mut busy_total = Duration::ZERO;
        for (arrive, dur) in arrivals {
            let g = r.acquire(SimTime::from_ns(arrive), Duration::from_ns(dur));
            prop_assert!(g.start >= prev_end, "grants overlap");
            prop_assert!(g.start >= SimTime::from_ns(arrive), "service before arrival");
            prop_assert_eq!(g.end, g.start + Duration::from_ns(dur));
            prev_end = g.end;
            busy_total += Duration::from_ns(dur);
        }
        prop_assert_eq!(r.busy_total(), busy_total);
    }

    /// Busy-timeline accounting integrates exactly: total busy
    /// unit-time equals the sum over slices of (active × slice width).
    #[test]
    fn busy_timeline_integral_matches(
        intervals in proptest::collection::vec((0u64..200, 1u64..100), 1..50),
    ) {
        use simkit::stats::BusyTimeline;
        // Convert to nested, chronologically ordered up/down events.
        let mut events: Vec<(u64, bool)> = Vec::new();
        let mut expected: u64 = 0;
        for &(start, len) in &intervals {
            events.push((start, true));
            events.push((start + len, false));
            expected += len;
        }
        events.sort_by_key(|&(t, up)| (t, !up));
        let mut tl = BusyTimeline::new(Duration::from_ns(7));
        let mut end = 0u64;
        for (t, up) in events {
            if up {
                tl.unit_up(SimTime::from_ns(t));
            } else {
                tl.unit_down(SimTime::from_ns(t));
            }
            end = end.max(t);
        }
        let curve = tl.finish(SimTime::from_ns(end));
        let integral: f64 = curve.iter().sum::<f64>() * 7.0;
        prop_assert!(
            (integral - expected as f64).abs() < 1e-6,
            "integral {} vs expected {}",
            integral,
            expected
        );
    }
}

proptest! {
    /// The pooled slab/free-list calendar is a drop-in replacement for a
    /// naive sorted-list calendar: under arbitrary interleavings of
    /// schedules, pops, and cancels (including stale-key cancels), the
    /// delivery order — nondecreasing time with FIFO tie-breaking — is
    /// identical to the reference model's.
    #[test]
    fn pooled_calendar_matches_reference_model(
        ops in proptest::collection::vec((0u8..10, 0u64..60, 0u64..1000), 1..300),
    ) {
        let mut cal = simkit::Calendar::new();
        // Reference model: live events as (at, seq, id); delivery order
        // is the (at, seq) minimum. `keys` remembers every key ever
        // issued so cancels can target live, popped, and already-
        // cancelled events alike.
        let mut model: Vec<(u64, u64, u32)> = Vec::new();
        let mut keys: Vec<(simkit::EventKey, u64, u64, u32)> = Vec::new();
        let mut seq = 0u64;
        let mut next_id = 0u32;
        let mut watermark = 0u64;
        for (kind, a, b) in ops {
            match kind {
                // Schedule at or after the watermark (weight 6/10; a=0
                // exercises the immediate-ring fast path).
                0..=5 => {
                    let at = watermark + a;
                    let key = cal.schedule(SimTime::from_ns(at), next_id);
                    model.push((at, seq, next_id));
                    keys.push((key, at, seq, next_id));
                    seq += 1;
                    next_id += 1;
                }
                // Pop and compare against the model's (at, seq) minimum.
                6 | 7 => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &(at, s, _))| (at, s))
                        .map(|(i, _)| i);
                    match expect {
                        Some(i) => {
                            let (at, _, id) = model.remove(i);
                            watermark = at;
                            prop_assert_eq!(cal.pop(), Some((SimTime::from_ns(at), id)));
                        }
                        None => prop_assert_eq!(cal.pop(), None),
                    }
                }
                // Cancel an arbitrary previously issued key; it must
                // succeed exactly when the event is still live.
                _ => {
                    if keys.is_empty() {
                        continue;
                    }
                    let (key, at, s, id) = keys[(b as usize) % keys.len()];
                    let live = model.iter().position(|&e| e == (at, s, id));
                    let cancelled = cal.cancel(key);
                    match live {
                        Some(i) => {
                            prop_assert!(cancelled, "live event must cancel");
                            model.remove(i);
                        }
                        None => prop_assert!(!cancelled, "stale key must be inert"),
                    }
                }
            }
            prop_assert_eq!(cal.len(), model.len());
        }
        // Drain the remainder and compare the full tail order.
        model.sort_by_key(|&(at, s, _)| (at, s));
        for &(at, _, id) in &model {
            prop_assert_eq!(cal.pop(), Some((SimTime::from_ns(at), id)));
        }
        prop_assert_eq!(cal.pop(), None);
    }

    /// The cross-tier variant of the reference-model test: time deltas
    /// up to 100_000 ns span many 8192-ns wheel windows, so schedules
    /// land in the far tier, promote into the wheel as the watermark
    /// advances, and wrap the wheel's bucket array repeatedly. Order
    /// and cancel semantics must stay identical to the flat model.
    #[test]
    fn calendar_matches_reference_across_tiers(
        ops in proptest::collection::vec((0u8..10, 0u64..100_000, 0u64..1000), 1..200),
    ) {
        let mut cal = simkit::Calendar::new();
        let mut model: Vec<(u64, u64, u32)> = Vec::new();
        let mut keys: Vec<(simkit::EventKey, u64, u64, u32)> = Vec::new();
        let mut seq = 0u64;
        let mut next_id = 0u32;
        let mut watermark = 0u64;
        for (kind, a, b) in ops {
            match kind {
                0..=5 => {
                    let at = watermark + a;
                    let key = cal.schedule(SimTime::from_ns(at), next_id);
                    model.push((at, seq, next_id));
                    keys.push((key, at, seq, next_id));
                    seq += 1;
                    next_id += 1;
                }
                6 | 7 => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &(at, s, _))| (at, s))
                        .map(|(i, _)| i);
                    match expect {
                        Some(i) => {
                            let (at, _, id) = model.remove(i);
                            watermark = at;
                            prop_assert_eq!(cal.pop(), Some((SimTime::from_ns(at), id)));
                        }
                        None => prop_assert_eq!(cal.pop(), None),
                    }
                }
                _ => {
                    if keys.is_empty() {
                        continue;
                    }
                    let (key, at, s, id) = keys[(b as usize) % keys.len()];
                    let live = model.iter().position(|&e| e == (at, s, id));
                    let cancelled = cal.cancel(key);
                    match live {
                        Some(i) => {
                            prop_assert!(cancelled, "live event must cancel");
                            model.remove(i);
                        }
                        None => prop_assert!(!cancelled, "stale key must be inert"),
                    }
                }
            }
            prop_assert_eq!(cal.len(), model.len());
        }
        model.sort_by_key(|&(at, s, _)| (at, s));
        for &(at, _, id) in &model {
            prop_assert_eq!(cal.pop(), Some((SimTime::from_ns(at), id)));
        }
        prop_assert_eq!(cal.pop(), None);
    }

    /// Equal timestamps drain in schedule order even when the tied
    /// group sits beyond the wheel window at schedule time (far tier)
    /// and is only promoted into the wheel later: the `(time, seq)`
    /// tie-break survives the tier migration.
    #[test]
    fn calendar_far_tier_preserves_fifo_ties(
        tie_at in 8_192u64..200_000,
        n in 2usize..64,
    ) {
        let mut cal = simkit::Calendar::new();
        for i in 0..n {
            cal.schedule(SimTime::from_ns(tie_at), i);
        }
        for expect in 0..n {
            prop_assert_eq!(cal.pop(), Some((SimTime::from_ns(tie_at), expect)));
        }
        prop_assert_eq!(cal.pop(), None);
    }

    /// `reset` restores a calendar that has events resident in every
    /// tier (immediate ring, wheel, far map) to a pristine state: the
    /// next schedule/pop cycle behaves exactly like a fresh calendar's,
    /// with tie-break sequence numbering restarted.
    #[test]
    fn calendar_reset_then_reuse_across_tiers(
        first in proptest::collection::vec(0u64..100_000, 1..100),
        pops in 0usize..50,
        second in proptest::collection::vec(0u64..100_000, 1..100),
    ) {
        let mut cal = simkit::Calendar::new();
        let mut fresh = simkit::Calendar::new();
        for (i, &t) in first.iter().enumerate() {
            cal.schedule(SimTime::from_ns(t), i);
        }
        for _ in 0..pops.min(first.len()) {
            cal.pop();
        }
        cal.reset();
        prop_assert_eq!(cal.len(), 0);
        prop_assert_eq!(cal.peek_time(), None);
        prop_assert_eq!(cal.pop(), None);
        // Second wave: the reused calendar must deliver the same
        // sequence as a never-used one.
        for (i, &t) in second.iter().enumerate() {
            cal.schedule(SimTime::from_ns(t), i);
            fresh.schedule(SimTime::from_ns(t), i);
        }
        while let Some(expect) = fresh.pop() {
            prop_assert_eq!(cal.pop(), Some(expect));
        }
        prop_assert_eq!(cal.pop(), None);
    }

    /// `drain_until` is equivalent to repeated `pop` calls: same events,
    /// same order, same watermark afterwards.
    #[test]
    fn drain_until_equals_repeated_pop(
        times in proptest::collection::vec(0u64..50, 1..150),
        cut in 0u64..50,
    ) {
        let mut a = simkit::Calendar::new();
        let mut b = simkit::Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            a.schedule(SimTime::from_ns(t), i);
            b.schedule(SimTime::from_ns(t), i);
        }
        let mut drained = Vec::new();
        a.drain_until(SimTime::from_ns(cut), &mut drained);
        let mut popped = Vec::new();
        while b.peek_time().is_some_and(|t| t <= SimTime::from_ns(cut)) {
            popped.push(b.pop().unwrap());
        }
        prop_assert_eq!(drained, popped);
        prop_assert_eq!(a.now(), b.now());
        prop_assert_eq!(a.len(), b.len());
    }
}
