//! Property tests for the simulation kernel's ordering guarantees.

use proptest::prelude::*;
use simkit::{Calendar, Duration, SerialResource, SimTime};

proptest! {
    /// The calendar delivers events in nondecreasing time order, with
    /// FIFO tie-breaking among equal timestamps.
    #[test]
    fn calendar_orders_any_schedule(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_ns(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, id)) = cal.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(at >= lt, "time went backwards");
                if at == lt {
                    // FIFO among ties: schedule order == insertion index.
                    prop_assert!(
                        times[lid] != times[id] || lid < id,
                        "tie broken out of order"
                    );
                }
            }
            last = Some((at, id));
        }
    }

    /// Serial-resource grants never overlap and respect arrival order:
    /// for arrivals issued in nondecreasing time order, each grant
    /// starts no earlier than the previous grant's end or its own
    /// arrival.
    #[test]
    fn serial_resource_grants_are_disjoint(
        jobs in proptest::collection::vec((0u64..500, 1u64..50), 1..100),
    ) {
        let mut r = SerialResource::new();
        let mut arrivals: Vec<(u64, u64)> = jobs;
        arrivals.sort_by_key(|&(a, _)| a);
        let mut prev_end = SimTime::ZERO;
        let mut busy_total = Duration::ZERO;
        for (arrive, dur) in arrivals {
            let g = r.acquire(SimTime::from_ns(arrive), Duration::from_ns(dur));
            prop_assert!(g.start >= prev_end, "grants overlap");
            prop_assert!(g.start >= SimTime::from_ns(arrive), "service before arrival");
            prop_assert_eq!(g.end, g.start + Duration::from_ns(dur));
            prev_end = g.end;
            busy_total += Duration::from_ns(dur);
        }
        prop_assert_eq!(r.busy_total(), busy_total);
    }

    /// Busy-timeline accounting integrates exactly: total busy
    /// unit-time equals the sum over slices of (active × slice width).
    #[test]
    fn busy_timeline_integral_matches(
        intervals in proptest::collection::vec((0u64..200, 1u64..100), 1..50),
    ) {
        use simkit::stats::BusyTimeline;
        // Convert to nested, chronologically ordered up/down events.
        let mut events: Vec<(u64, bool)> = Vec::new();
        let mut expected: u64 = 0;
        for &(start, len) in &intervals {
            events.push((start, true));
            events.push((start + len, false));
            expected += len;
        }
        events.sort_by_key(|&(t, up)| (t, !up));
        let mut tl = BusyTimeline::new(Duration::from_ns(7));
        let mut end = 0u64;
        for (t, up) in events {
            if up {
                tl.unit_up(SimTime::from_ns(t));
            } else {
                tl.unit_down(SimTime::from_ns(t));
            }
            end = end.max(t);
        }
        let curve = tl.finish(SimTime::from_ns(end));
        let integral: f64 = curve.iter().sum::<f64>() * 7.0;
        prop_assert!(
            (integral - expected as f64).abs() < 1e-6,
            "integral {} vs expected {}",
            integral,
            expected
        );
    }
}
