//! # beacon-flash — the NAND flash substrate (paper §II-B, §V-A, §VI-C)
//!
//! Models the flash backend of a BeaconGNN SSD:
//!
//! * [`geometry`] — the channel/chip/die/plane/block/page organization
//!   and the striping of DirectGraph page indices across dies.
//! * [`timing`] — sense/program/erase/transfer latencies, with presets
//!   for ultra-low-latency (Z-NAND-class, 3 µs reads) and traditional
//!   (20 µs) flash.
//! * [`onfi`] — byte-level ONFI command encoding, including BeaconGNN's
//!   two custom commands (global GNN configuration and sampling, Fig 13).
//! * [`sampler`] — the die-level sampler microarchitecture (§V-A):
//!   section iterator, vector retriever, node sampler with on-die TRNG,
//!   and command generator with per-secondary-section coalescing.
//! * [`ecc`] — the reliability model: RBER-driven error outcomes with
//!   bounded correction, backing the firmware's scrubbing loop (§VI-F).
//!
//! ## Example: one die-level sampling step
//!
//! ```
//! use beacon_graph::{Dataset, DatasetSpec, NodeId};
//! use directgraph::{build::DirectGraphBuilder, AddrLayout};
//! use beacon_flash::sampler::{DieSampler, GnnDieConfig, SampleCommand};
//!
//! let spec = DatasetSpec::preset(Dataset::Ogbn).at_scale(300);
//! let (g, x) = (spec.build_graph(5), spec.build_features(5));
//! let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
//!     .build(&g, &x).unwrap();
//!
//! let cfg = GnnDieConfig { num_hops: 3, fanout: 3, feature_bytes: spec.feature_bytes() as u16 };
//! let mut sampler = DieSampler::new(cfg, 42);
//! let target = NodeId::new(0);
//! let cmd = SampleCommand::root(dg.directory().primary_addr(target).unwrap(), 0);
//! let out = sampler.execute(&cmd, dg.image()).unwrap();
//! assert_eq!(out.visited, Some(target));
//! assert!(out.new_commands.len() <= 3);
//! ```

pub mod die;
pub mod ecc;
pub mod geometry;
pub mod onfi;
pub mod sampler;
pub mod timing;

pub use die::{DieModel, ReadGrant, RegisterMode};
pub use ecc::{EccOutcome, ReliabilityModel};
pub use geometry::{DieId, FlashGeometry, FlashLocation};
pub use onfi::OnfiCommand;
pub use sampler::{DieSampler, GnnDieConfig, SampleCommand, SampleOutcome, SamplerError};
pub use timing::FlashTiming;
