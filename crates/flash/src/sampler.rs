//! The die-level sampler (paper §V-A, Figs 10–11).
//!
//! BeaconGNN places sampling logic in each flash die's control layer so
//! that only *useful* bytes — sampled-neighbor commands and feature
//! vectors — cross the channel, instead of whole pages. The
//! microarchitecture has four components, all modeled here functionally:
//!
//! * **section iterator** — walks the page in the cache register to the
//!   target section (implemented by
//!   [`PageStore::parse_section`](directgraph::PageStore::parse_section));
//! * **vector retriever** — copies the feature vector from the cache
//!   register to the data register (modeled as the returned feature
//!   bytes);
//! * **node sampler** — draws neighbor indices with the on-die TRNG via
//!   a modulo (here: multiply-shift) reduction. For a *primary* section
//!   it samples over the node's **entire** neighbor range; hits inside
//!   the page become direct neighbor commands, hits in overflow ranges
//!   become per-secondary-section resolution commands (coalesced so a
//!   secondary page is read once);
//! * **command generator** — emits the new sampling commands into the
//!   data register for the channel-level router.
//!
//! The final hop performs feature retrieval only — no further commands.

use beacon_graph::NodeId;
use directgraph::layout::secondary_capacity;
use directgraph::{PageStore, PhysAddr, SectionParseError, SectionView};
use simkit::Xoshiro256StarStar;

/// Serialized size of one sampling command on the channel, in bytes
/// (matches [`crate::onfi`]'s encoding).
pub const SAMPLE_CMD_BYTES: usize = 16;
/// Per-result framing overhead on the channel, in bytes.
pub const RESULT_HEADER_BYTES: usize = 8;

/// Global GNN configuration, set once per die before a task begins
/// (paper Fig 13's global-configuration command).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GnnDieConfig {
    /// Number of sampling hops (`k`; the paper's model uses 3).
    pub num_hops: u8,
    /// Neighbors sampled per node per hop (the paper's model uses 3).
    pub fanout: u16,
    /// Feature-vector length in bytes.
    pub feature_bytes: u16,
}

impl GnnDieConfig {
    /// The paper's evaluation model: 3 hops × 3 samples.
    pub fn paper_default(feature_bytes: u16) -> Self {
        GnnDieConfig {
            num_hops: 3,
            fanout: 3,
            feature_bytes,
        }
    }

    /// Expected subgraph size per target: `sum_{i=0..=k} fanout^i`.
    pub fn subgraph_nodes(&self) -> u64 {
        let mut total = 0u64;
        let mut level = 1u64;
        for _ in 0..=self.num_hops {
            total += level;
            level *= self.fanout as u64;
        }
        total
    }
}

/// One sampling command (paper Fig 13's runtime sampling command):
/// target section address plus hop id, sampling count, and subgraph
/// reconstruction metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SampleCommand {
    /// Section to read and sample from.
    pub target: PhysAddr,
    /// Hop id of the node being visited (0 = mini-batch target).
    pub hop: u8,
    /// Sampling count: 0 means "use the configured fanout"; nonzero is a
    /// coalesced count for secondary-section resolution.
    pub count: u16,
    /// Which subgraph (batch slot) this command belongs to.
    pub subgraph: u32,
    /// Node id of the sampling parent (`u32::MAX` for roots).
    pub parent: u32,
}

impl SampleCommand {
    /// Marker parent value for mini-batch targets.
    pub const NO_PARENT: u32 = u32::MAX;

    /// The command the controller issues for a mini-batch target node.
    pub fn root(target: PhysAddr, subgraph: u32) -> Self {
        SampleCommand {
            target,
            hop: 0,
            count: 0,
            subgraph,
            parent: Self::NO_PARENT,
        }
    }
}

/// The result of executing one sampling command on a die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleOutcome {
    /// The node visited, when the command addressed a primary section
    /// (it joins the subgraph and its feature is retrieved).
    pub visited: Option<NodeId>,
    /// Feature bytes placed in the data register (0 for secondary
    /// sections).
    pub feature_bytes: usize,
    /// Newly generated sampling commands.
    pub new_commands: Vec<SampleCommand>,
}

impl SampleOutcome {
    /// Bytes this result occupies on the channel: framing + feature +
    /// encoded new commands. This is the die-sampler's whole point —
    /// compare with a full page transfer.
    pub fn result_bytes(&self) -> usize {
        RESULT_HEADER_BYTES + self.feature_bytes + self.new_commands.len() * SAMPLE_CMD_BYTES
    }
}

/// Why a sampling command failed on-die.
///
/// Per §VI-E, the sampler stops immediately and returns control to the
/// firmware when a section is missing or has the wrong type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplerError {
    /// The target section failed to parse.
    Section(SectionParseError),
    /// A secondary-resolution command addressed a primary section or
    /// vice versa is impossible by construction; this covers a root /
    /// child command landing on a secondary section unexpectedly.
    WrongSectionKind { target: PhysAddr },
}

impl std::fmt::Display for SamplerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplerError::Section(e) => write!(f, "section error: {e}"),
            SamplerError::WrongSectionKind { target } => {
                write!(f, "command targeted wrong section kind at {target}")
            }
        }
    }
}

impl std::error::Error for SamplerError {}

impl From<SectionParseError> for SamplerError {
    fn from(e: SectionParseError) -> Self {
        SamplerError::Section(e)
    }
}

/// The functional model of one die's sampler logic.
///
/// Each die owns a TRNG (paper Fig 10); we model its *distribution*
/// with a xoshiro256** stream. Draws are **command-content-keyed**: the
/// stream for one command is derived from the run seed and the
/// command's own fields (see [`draw_stream_seed`]), never from the
/// order commands happen to reach the die. That makes the sampled
/// cascade a pure function of (graph image, mini-batches, model
/// configuration, run seed) — independent of device timing, geometry,
/// and platform wiring — which is what lets one recorded cascade be
/// replayed byte-identically under any re-timing (see
/// `beacon_platforms::replay`).
#[derive(Debug, Clone)]
pub struct DieSampler {
    config: GnnDieConfig,
    seed: u64,
    executed: u64,
    /// Reusable `(secondary index, coalesced count)` scratch for
    /// overflow-hit coalescing, so the hot path allocates nothing in
    /// steady state. Always left empty between commands.
    coalesce: Vec<(usize, u16)>,
}

/// The draw-stream seed for one command: a full-avalanche mix of the
/// run seed and the command's content. Two commands with identical
/// content share a stream (they sample the same realization); any field
/// difference yields a statistically independent stream.
#[inline]
pub fn draw_stream_seed(seed: u64, cmd: &SampleCommand) -> u64 {
    use simkit::rng::mix64;
    let lo = (cmd.hop as u64) | ((cmd.count as u64) << 8) | ((cmd.subgraph as u64) << 24);
    mix64(mix64(seed ^ mix64(cmd.target.to_raw() as u64)) ^ lo ^ ((cmd.parent as u64) << 32))
}

impl DieSampler {
    /// Creates a sampler with the given global configuration and draw
    /// seed. Samplers with the same seed produce identical outcomes for
    /// identical commands regardless of which die they model — per-die
    /// streams come from the command content, not the constructor.
    pub fn new(config: GnnDieConfig, seed: u64) -> Self {
        DieSampler {
            config,
            seed,
            executed: 0,
            coalesce: Vec::new(),
        }
    }

    /// The configured global parameters.
    pub fn config(&self) -> GnnDieConfig {
        self.config
    }

    /// Reconfigures the die (the global GNN configuration command).
    pub fn configure(&mut self, config: GnnDieConfig) {
        self.config = config;
    }

    /// Number of sampling commands executed.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Executes one sampling command against the flash image.
    ///
    /// Convenience wrapper over [`DieSampler::execute_into`] that
    /// returns a freshly allocated outcome. Hot paths should prefer
    /// `execute_into` with a pooled outcome so the child-command vector
    /// is reused across commands.
    ///
    /// # Errors
    ///
    /// Returns [`SamplerError`] when the section is missing or malformed
    /// (the §VI-E on-die runtime check).
    pub fn execute(
        &mut self,
        cmd: &SampleCommand,
        store: &PageStore,
    ) -> Result<SampleOutcome, SamplerError> {
        let mut out = SampleOutcome {
            visited: None,
            feature_bytes: 0,
            new_commands: Vec::new(),
        };
        self.execute_into(cmd, store, &mut out)?;
        Ok(out)
    }

    /// Executes one sampling command, writing the result into `out`
    /// (cleared first; its `new_commands` allocation is reused).
    ///
    /// On error `out` is left cleared — no visit, no feature bytes, no
    /// child commands — which is exactly the §VI-E abort semantics: the
    /// command's subtree is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SamplerError`] when the section is missing or malformed
    /// (the §VI-E on-die runtime check).
    pub fn execute_into(
        &mut self,
        cmd: &SampleCommand,
        store: &PageStore,
        out: &mut SampleOutcome,
    ) -> Result<(), SamplerError> {
        out.visited = None;
        out.feature_bytes = 0;
        out.new_commands.clear();
        self.executed += 1;
        let mut trng = Xoshiro256StarStar::seeded(draw_stream_seed(self.seed, cmd));
        let section = store.parse_section_view(cmd.target)?;
        match section {
            SectionView::Primary(p) => {
                out.visited = Some(p.node);
                out.feature_bytes = p.feature_bytes;
                if cmd.hop >= self.config.num_hops {
                    return Ok(()); // final hop: feature retrieval only
                }
                let total = p.total_neighbors as u64;
                if total == 0 {
                    return Ok(());
                }
                let fanout = if cmd.count == 0 {
                    self.config.fanout
                } else {
                    cmd.count
                };
                let inline = p.inline_count() as u64;
                let sec_cap = secondary_capacity(store.layout().page_size()) as u64;
                // Coalesce overflow hits per secondary section so each
                // secondary page is read once (paper §V-A). The scratch
                // is tiny (≤ fanout entries), so linear-probe accumulate
                // plus one sort beats a per-command tree allocation.
                debug_assert!(self.coalesce.is_empty());
                for _ in 0..fanout {
                    let r = trng.next_bounded(total);
                    if r < inline {
                        out.new_commands.push(SampleCommand {
                            target: p.inline_neighbor(r as usize),
                            hop: cmd.hop + 1,
                            count: 0,
                            subgraph: cmd.subgraph,
                            parent: p.node.as_u32(),
                        });
                    } else {
                        let j = ((r - inline) / sec_cap) as usize;
                        match self.coalesce.iter_mut().find(|(k, _)| *k == j) {
                            Some((_, c)) => *c += 1,
                            None => self.coalesce.push((j, 1)),
                        }
                    }
                }
                // Ascending secondary index, matching the ordered-map
                // iteration the engine's determinism contract relies on.
                self.coalesce.sort_unstable_by_key(|&(j, _)| j);
                for &(j, count) in &self.coalesce {
                    out.new_commands.push(SampleCommand {
                        target: p.secondary_addr(j),
                        hop: cmd.hop,
                        count,
                        subgraph: cmd.subgraph,
                        parent: p.node.as_u32(),
                    });
                }
                self.coalesce.clear();
                Ok(())
            }
            SectionView::Secondary(s) => {
                if cmd.count == 0 {
                    // A fanout-style command must target a primary section.
                    return Err(SamplerError::WrongSectionKind { target: cmd.target });
                }
                let n = s.num_neighbors() as u64;
                if n == 0 {
                    return Ok(());
                }
                for _ in 0..cmd.count {
                    let idx = trng.next_bounded(n) as usize;
                    out.new_commands.push(SampleCommand {
                        target: s.neighbor(idx),
                        hop: cmd.hop + 1,
                        count: 0,
                        subgraph: cmd.subgraph,
                        parent: s.node.as_u32(),
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_graph::{generate, FeatureTable};
    use directgraph::{build::DirectGraphBuilder, AddrLayout, DirectGraph};

    fn build(avg_deg: f64, feat_dim: usize, n: usize) -> DirectGraph {
        let cfg = generate::PowerLawConfig::new(n, avg_deg);
        let graph = generate::power_law(&cfg, 3);
        let features = FeatureTable::synthetic(n, feat_dim, 3);
        DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap()
    }

    fn feature_bytes(dim: usize) -> u16 {
        (dim * 2) as u16
    }

    #[test]
    fn subgraph_size_formula() {
        let cfg = GnnDieConfig::paper_default(256);
        // 1 + 3 + 9 + 27 = 40 — the paper's "total of 40 nodes".
        assert_eq!(cfg.subgraph_nodes(), 40);
    }

    #[test]
    fn root_samples_fanout_children() {
        let dg = build(20.0, 16, 400);
        let cfg = GnnDieConfig::paper_default(feature_bytes(16));
        let mut sampler = DieSampler::new(cfg, 1);
        let cmd = SampleCommand::root(dg.directory().primary_addr(NodeId::new(0)).unwrap(), 0);
        let out = sampler.execute(&cmd, dg.image()).unwrap();
        assert_eq!(out.visited, Some(NodeId::new(0)));
        assert_eq!(out.feature_bytes, 32);
        // With everything inline, exactly `fanout` child commands.
        assert_eq!(out.new_commands.len(), 3);
        for c in &out.new_commands {
            assert_eq!(c.hop, 1);
            assert_eq!(c.parent, 0);
            assert_eq!(c.subgraph, 0);
        }
        assert_eq!(sampler.executed(), 1);
    }

    #[test]
    fn final_hop_is_feature_only() {
        let dg = build(10.0, 16, 200);
        let cfg = GnnDieConfig::paper_default(feature_bytes(16));
        let mut sampler = DieSampler::new(cfg, 2);
        let mut cmd = SampleCommand::root(dg.directory().primary_addr(NodeId::new(5)).unwrap(), 0);
        cmd.hop = cfg.num_hops; // leaf
        let out = sampler.execute(&cmd, dg.image()).unwrap();
        assert!(out.new_commands.is_empty());
        assert_eq!(out.feature_bytes, 32);
    }

    #[test]
    fn overflow_sampling_coalesces_per_secondary() {
        // Force many secondary sections: degree >> page capacity.
        let dg = build(900.0, 600, 200);
        let cfg = GnnDieConfig {
            num_hops: 3,
            fanout: 64,
            feature_bytes: 1200,
        };
        let mut sampler = DieSampler::new(cfg, 7);
        // Find a node with secondaries.
        let mut found = false;
        for v in 0..200u32 {
            let addr = dg.directory().primary_addr(NodeId::new(v)).unwrap();
            let p = dg.image().parse_section(addr).unwrap();
            let p = p.as_primary().unwrap().clone();
            if p.secondary_addrs.is_empty() {
                continue;
            }
            found = true;
            let cmd = SampleCommand::root(addr, 0);
            let out = sampler.execute(&cmd, dg.image()).unwrap();
            // Coalescing: at most one command per distinct secondary.
            let sec_targets: Vec<_> = out
                .new_commands
                .iter()
                .filter(|c| c.count > 0)
                .map(|c| c.target)
                .collect();
            let mut dedup = sec_targets.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(
                sec_targets.len(),
                dedup.len(),
                "secondary commands must coalesce"
            );
            // Total sampled = fanout.
            let total: u32 = out
                .new_commands
                .iter()
                .map(|c| if c.count == 0 { 1 } else { c.count as u32 })
                .sum();
            assert_eq!(total, 64);
            // Resolve one secondary command and check children.
            if let Some(sc) = out.new_commands.iter().find(|c| c.count > 0) {
                let res = sampler.execute(sc, dg.image()).unwrap();
                assert_eq!(res.visited, None);
                assert_eq!(res.feature_bytes, 0);
                assert_eq!(res.new_commands.len(), sc.count as usize);
                for c in &res.new_commands {
                    assert_eq!(c.hop, sc.hop + 1);
                    assert_eq!(c.parent, v);
                }
            }
            break;
        }
        assert!(found, "test graph should have overflow nodes");
    }

    #[test]
    fn sampled_children_are_true_neighbors() {
        let n = 300;
        let cfg_g = generate::PowerLawConfig::new(n, 25.0);
        let graph = generate::power_law(&cfg_g, 9);
        let features = FeatureTable::synthetic(n, 8, 9);
        let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap();
        let cfg = GnnDieConfig::paper_default(16);
        let mut sampler = DieSampler::new(cfg, 11);
        for v in graph.nodes().take(50) {
            let cmd = SampleCommand::root(dg.directory().primary_addr(v).unwrap(), 0);
            let out = sampler.execute(&cmd, dg.image()).unwrap();
            for c in out.new_commands.iter().filter(|c| c.count == 0) {
                let child = dg.image().parse_section(c.target).unwrap().node();
                assert!(graph.has_edge(v, child), "{child} is not a neighbor of {v}");
            }
        }
    }

    #[test]
    fn result_bytes_far_below_page_size() {
        let dg = build(30.0, 64, 300);
        let cfg = GnnDieConfig::paper_default(128);
        let mut sampler = DieSampler::new(cfg, 5);
        let cmd = SampleCommand::root(dg.directory().primary_addr(NodeId::new(1)).unwrap(), 0);
        let out = sampler.execute(&cmd, dg.image()).unwrap();
        assert!(
            out.result_bytes() < 4096 / 4,
            "result {} B",
            out.result_bytes()
        );
    }

    #[test]
    fn deterministic_with_same_seed() {
        let dg = build(20.0, 16, 300);
        let cfg = GnnDieConfig::paper_default(32);
        let cmd = SampleCommand::root(dg.directory().primary_addr(NodeId::new(2)).unwrap(), 0);
        let a = DieSampler::new(cfg, 3).execute(&cmd, dg.image()).unwrap();
        let b = DieSampler::new(cfg, 3).execute(&cmd, dg.image()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn execute_into_matches_execute_with_reused_buffer() {
        let dg = build(25.0, 16, 300);
        let cfg = GnnDieConfig::paper_default(32);
        let mut fresh_sampler = DieSampler::new(cfg, 3);
        let mut pooled_sampler = DieSampler::new(cfg, 3);
        let mut out = SampleOutcome {
            visited: Some(NodeId::new(99)), // stale garbage, must be cleared
            feature_bytes: 777,
            new_commands: vec![SampleCommand::root(
                dg.directory().primary_addr(NodeId::new(0)).unwrap(),
                9,
            )],
        };
        for v in 0..30u32 {
            let cmd = SampleCommand::root(dg.directory().primary_addr(NodeId::new(v)).unwrap(), 0);
            let fresh = fresh_sampler.execute(&cmd, dg.image()).unwrap();
            pooled_sampler
                .execute_into(&cmd, dg.image(), &mut out)
                .unwrap();
            assert_eq!(out, fresh, "pooled outcome diverged at node {v}");
        }
        assert_eq!(fresh_sampler.executed(), pooled_sampler.executed());
    }

    #[test]
    fn execute_into_clears_outcome_on_error() {
        let dg = build(900.0, 600, 100);
        let mut sec_addr = None;
        for v in 0..100u32 {
            let addr = dg.directory().primary_addr(NodeId::new(v)).unwrap();
            let p = dg.image().parse_section(addr).unwrap();
            if let Some(a) = p.as_primary().unwrap().secondary_addrs.first() {
                sec_addr = Some(*a);
                break;
            }
        }
        let sec_addr = sec_addr.expect("graph should have secondaries");
        let mut sampler = DieSampler::new(GnnDieConfig::paper_default(1200), 1);
        let mut out = SampleOutcome {
            visited: Some(NodeId::new(1)),
            feature_bytes: 5,
            new_commands: vec![SampleCommand::root(sec_addr, 0)],
        };
        let err = sampler
            .execute_into(&SampleCommand::root(sec_addr, 0), dg.image(), &mut out)
            .unwrap_err();
        assert!(matches!(err, SamplerError::WrongSectionKind { .. }));
        // §VI-E abort: the outcome carries nothing.
        assert_eq!(out.visited, None);
        assert_eq!(out.feature_bytes, 0);
        assert!(out.new_commands.is_empty());
    }

    #[test]
    fn wrong_kind_stops_sampler() {
        let dg = build(900.0, 600, 100);
        // Find a secondary address and send a fanout-style (count=0)
        // command at it.
        let mut sec_addr = None;
        for v in 0..100u32 {
            let addr = dg.directory().primary_addr(NodeId::new(v)).unwrap();
            let p = dg.image().parse_section(addr).unwrap();
            if let Some(a) = p.as_primary().unwrap().secondary_addrs.first() {
                sec_addr = Some(*a);
                break;
            }
        }
        let sec_addr = sec_addr.expect("graph should have secondaries");
        let cfg = GnnDieConfig::paper_default(1200);
        let mut sampler = DieSampler::new(cfg, 1);
        let cmd = SampleCommand::root(sec_addr, 0);
        let err = sampler.execute(&cmd, dg.image()).unwrap_err();
        assert!(matches!(err, SamplerError::WrongSectionKind { .. }));
    }

    #[test]
    fn reconfigure_changes_behaviour() {
        let dg = build(20.0, 16, 200);
        let mut sampler = DieSampler::new(GnnDieConfig::paper_default(32), 4);
        sampler.configure(GnnDieConfig {
            num_hops: 1,
            fanout: 5,
            feature_bytes: 32,
        });
        assert_eq!(sampler.config().fanout, 5);
        let cmd = SampleCommand::root(dg.directory().primary_addr(NodeId::new(0)).unwrap(), 0);
        let out = sampler.execute(&cmd, dg.image()).unwrap();
        assert_eq!(out.new_commands.len(), 5);
    }
}
