//! Reliability model: raw bit errors, ECC correction, wear (paper §VI-F).
//!
//! BeaconGNN relies on SLC Z-NAND's extremely low raw bit error rate
//! (RBER < 1e-7) plus two firmware mechanisms: periodic **data
//! scrubbing** of DirectGraph blocks (read, ECC-check, re-program the
//! block if any page has errors) and **wear-aware reclamation** when
//! pinned DirectGraph blocks fall behind regular blocks in P/E count.
//! This module supplies the error-arrival model those mechanisms consume;
//! the firmware loops themselves live in `beacon-ssd`.
//!
//! Following SimpleSSD-style practice, errors are *statistical*: each
//! page read draws a bit-error count from a binomial model at an
//! effective RBER that grows with retention time and accumulated P/E
//! cycles, and the ECC engine corrects up to its per-codeword capability.

use simkit::{Duration, SplitMix64};

/// Outcome of ECC-checking one page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// No raw bit errors.
    Clean,
    /// Errors occurred and were all corrected (count given).
    Corrected(u32),
    /// More errors than the ECC can correct; data loss without scrubbing.
    Uncorrectable(u32),
}

impl EccOutcome {
    /// Whether the read returned valid data.
    pub fn is_ok(self) -> bool {
        !matches!(self, EccOutcome::Uncorrectable(_))
    }
}

/// Statistical reliability model for a flash population.
///
/// # Examples
///
/// ```
/// use beacon_flash::ReliabilityModel;
/// use simkit::Duration;
///
/// let mut m = ReliabilityModel::z_nand(4096, 1);
/// let out = m.read_outcome(Duration::ZERO, 0);
/// assert!(out.is_ok()); // fresh Z-NAND page: virtually always clean
/// ```
#[derive(Debug, Clone)]
pub struct ReliabilityModel {
    /// Base raw bit error rate at zero retention/wear.
    rber_base: f64,
    /// Multiplicative RBER growth per simulated day of retention.
    retention_growth_per_day: f64,
    /// Multiplicative RBER growth per 1000 P/E cycles.
    wear_growth_per_kilocycle: f64,
    /// Page size in bytes (bits = 8×).
    page_bytes: usize,
    /// Correctable bits per page.
    correction_capability: u32,
    rng: SplitMix64,
    reads: u64,
    corrected_events: u64,
    uncorrectable_events: u64,
}

impl ReliabilityModel {
    /// SLC Z-NAND-class model: RBER 1e-7, strong growth margins, 8-bit
    /// correction per page.
    pub fn z_nand(page_bytes: usize, seed: u64) -> Self {
        ReliabilityModel {
            rber_base: 1e-7,
            retention_growth_per_day: 0.05,
            wear_growth_per_kilocycle: 0.10,
            page_bytes,
            correction_capability: 8,
            rng: SplitMix64::new(seed),
            reads: 0,
            corrected_events: 0,
            uncorrectable_events: 0,
        }
    }

    /// TLC-class model for the traditional-SSD comparison: RBER 1e-5,
    /// 72-bit correction per page.
    pub fn tlc(page_bytes: usize, seed: u64) -> Self {
        ReliabilityModel {
            rber_base: 1e-5,
            retention_growth_per_day: 0.20,
            wear_growth_per_kilocycle: 0.50,
            page_bytes,
            correction_capability: 72,
            rng: SplitMix64::new(seed),
            reads: 0,
            corrected_events: 0,
            uncorrectable_events: 0,
        }
    }

    /// Overrides the base RBER (for accelerated-aging tests).
    pub fn with_rber(mut self, rber: f64) -> Self {
        self.rber_base = rber;
        self
    }

    /// Effective RBER after `retention` time and `pe_cycles` wear.
    pub fn effective_rber(&self, retention: Duration, pe_cycles: u64) -> f64 {
        let days = retention.as_secs_f64() / 86_400.0;
        self.rber_base
            * (1.0 + self.retention_growth_per_day * days)
            * (1.0 + self.wear_growth_per_kilocycle * pe_cycles as f64 / 1000.0)
    }

    /// Draws the ECC outcome for one page read.
    pub fn read_outcome(&mut self, retention: Duration, pe_cycles: u64) -> EccOutcome {
        self.reads += 1;
        let rber = self.effective_rber(retention, pe_cycles);
        let bits = (self.page_bytes * 8) as f64;
        let expected = rber * bits;
        let errors = self.draw_poisson(expected);
        if errors == 0 {
            EccOutcome::Clean
        } else if errors <= self.correction_capability {
            self.corrected_events += 1;
            EccOutcome::Corrected(errors)
        } else {
            self.uncorrectable_events += 1;
            EccOutcome::Uncorrectable(errors)
        }
    }

    /// Draws from Poisson(λ) — the binomial limit appropriate for
    /// per-bit error probabilities — via Knuth's method for small λ and
    /// a normal approximation above.
    fn draw_poisson(&mut self, lambda: f64) -> u32 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut k = 0u32;
            let mut p = 1.0;
            loop {
                p *= self.rng.next_f64();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction.
            let u1 = self.rng.next_f64().max(1e-12);
            let u2 = self.rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (lambda + z * lambda.sqrt()).round().max(0.0) as u32
        }
    }

    /// Correctable bits per page.
    pub fn correction_capability(&self) -> u32 {
        self.correction_capability
    }

    /// Total reads drawn.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads that needed correction.
    pub fn corrected_events(&self) -> u64 {
        self.corrected_events
    }

    /// Reads that exceeded correction capability.
    pub fn uncorrectable_events(&self) -> u64 {
        self.uncorrectable_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_z_nand_is_effectively_error_free() {
        let mut m = ReliabilityModel::z_nand(4096, 1);
        let mut bad = 0;
        for _ in 0..10_000 {
            if !matches!(m.read_outcome(Duration::ZERO, 0), EccOutcome::Clean) {
                bad += 1;
            }
        }
        // Expected error events ~ 1e-7 * 32768 bits * 1e4 reads ≈ 33,
        // all single-bit and corrected; uncorrectable should be zero.
        assert_eq!(m.uncorrectable_events(), 0);
        assert!(bad < 200, "{bad} non-clean reads");
        assert_eq!(m.reads(), 10_000);
    }

    #[test]
    fn retention_and_wear_raise_rber() {
        let m = ReliabilityModel::z_nand(4096, 1);
        let fresh = m.effective_rber(Duration::ZERO, 0);
        let aged = m.effective_rber(Duration::from_secs(86_400 * 365), 3_000);
        assert!(aged > 10.0 * fresh, "aged {aged} vs fresh {fresh}");
    }

    #[test]
    fn extreme_rber_becomes_uncorrectable() {
        let mut m = ReliabilityModel::z_nand(4096, 2).with_rber(1e-3);
        // 1e-3 * 32768 ≈ 33 expected errors/page >> 8-bit capability.
        let mut uncorrectable = 0;
        for _ in 0..100 {
            if let EccOutcome::Uncorrectable(n) = m.read_outcome(Duration::ZERO, 0) {
                assert!(n > 8);
                uncorrectable += 1;
            }
        }
        assert!(uncorrectable > 90, "{uncorrectable}");
        assert!(!EccOutcome::Uncorrectable(9).is_ok());
    }

    #[test]
    fn tlc_has_more_errors_but_stronger_ecc() {
        let tlc = ReliabilityModel::tlc(4096, 3);
        let znand = ReliabilityModel::z_nand(4096, 3);
        assert!(tlc.effective_rber(Duration::ZERO, 0) > znand.effective_rber(Duration::ZERO, 0));
        assert!(tlc.correction_capability() > znand.correction_capability());
    }

    #[test]
    fn poisson_mean_roughly_matches() {
        let mut m = ReliabilityModel::z_nand(4096, 4);
        let lambda = 5.0;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.draw_poisson(lambda) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.2, "mean {mean}");
        // Large-lambda path.
        let total: u64 = (0..n).map(|_| m.draw_poisson(100.0) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn outcomes_deterministic_per_seed() {
        let mut a = ReliabilityModel::z_nand(4096, 9).with_rber(1e-4);
        let mut b = ReliabilityModel::z_nand(4096, 9).with_rber(1e-4);
        for _ in 0..100 {
            assert_eq!(
                a.read_outcome(Duration::from_secs(1000), 50),
                b.read_outcome(Duration::from_secs(1000), 50)
            );
        }
    }
}
