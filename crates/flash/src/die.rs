//! Flash die state machine: planes, registers, and read pipelining
//! (paper Fig 10).
//!
//! A die couples a NAND array per plane with page-sized SRAM registers.
//! How many register stages the read path has decides whether a die can
//! overlap sensing with the channel transfer of the previous page:
//!
//! * **one register** — the sensed page occupies the register until the
//!   channel drains it; the array stalls. This is the behaviour behind
//!   the paper's Fig 7a: per-die throughput is `1/(t_sense + t_xfer)`.
//! * **two registers** (cache + data) — the array senses page *n+1*
//!   while page *n* waits in the data register; per-die throughput
//!   approaches `1/max(t_sense, t_xfer)`.
//!
//! Multi-plane reads sense all planes in one array operation, trading
//! address freedom for bandwidth.

use simkit::{Duration, SimTime};

/// Read-path register configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegisterMode {
    /// Single register: no sense/transfer overlap.
    Single,
    /// Cache + data registers: one-deep pipelining.
    Double,
}

/// The scheduling outcome of one plane read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadGrant {
    /// When the array starts sensing.
    pub sense_start: SimTime,
    /// When the page is available in the output register (ready for the
    /// channel bus).
    pub data_ready: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct PlaneState {
    array_free: SimTime,
    register_free: SimTime,
}

/// One flash die with `planes` planes.
///
/// The caller owns channel-bus scheduling: after the bus grant for a
/// page is known, report it with [`DieModel::note_transfer_done`] so
/// the register frees.
///
/// # Examples
///
/// ```
/// use beacon_flash::die::{DieModel, RegisterMode};
/// use simkit::{Duration, SimTime};
///
/// let mut die = DieModel::new(2, Duration::from_us(3), RegisterMode::Double);
/// let g = die.read(0, SimTime::ZERO);
/// assert_eq!(g.data_ready, SimTime::from_ns(3_000));
/// ```
#[derive(Debug, Clone)]
pub struct DieModel {
    sense_time: Duration,
    mode: RegisterMode,
    planes: Vec<PlaneState>,
    reads: u64,
}

impl DieModel {
    /// Creates a die with `planes` planes and the given sense latency.
    ///
    /// # Panics
    ///
    /// Panics if `planes` is zero.
    pub fn new(planes: usize, sense_time: Duration, mode: RegisterMode) -> Self {
        assert!(planes > 0, "die needs at least one plane");
        DieModel {
            sense_time,
            mode,
            planes: vec![
                PlaneState {
                    array_free: SimTime::ZERO,
                    register_free: SimTime::ZERO
                };
                planes
            ],
            reads: 0,
        }
    }

    /// Number of planes.
    pub fn planes(&self) -> usize {
        self.planes.len()
    }

    /// Reads issued so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Schedules a single-plane read requested at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn read(&mut self, plane: usize, at: SimTime) -> ReadGrant {
        self.reads += 1;
        let p = &mut self.planes[plane];
        let sense_start = match self.mode {
            // Single register: the array cannot sense until the
            // previous page has left the register.
            RegisterMode::Single => at.max(p.array_free).max(p.register_free),
            // Double: sensing overlaps a pending transfer.
            RegisterMode::Double => at.max(p.array_free),
        };
        let sense_end = sense_start + self.sense_time;
        // Data lands in the output register once it is free.
        let data_ready = match self.mode {
            RegisterMode::Single => sense_end,
            RegisterMode::Double => sense_end.max(p.register_free),
        };
        p.array_free = match self.mode {
            RegisterMode::Single => sense_end,
            // The array is released once its cache register drains into
            // the data register.
            RegisterMode::Double => data_ready,
        };
        // The register is occupied until the caller reports transfer
        // completion; model pessimistically as "occupied forever" until
        // note_transfer_done rewinds it.
        p.register_free = SimTime::MAX;
        ReadGrant {
            sense_start,
            data_ready,
        }
    }

    /// Schedules a multi-plane read: all planes sense together in one
    /// array operation, synchronizing on the latest-constrained plane.
    pub fn multi_plane_read(&mut self, at: SimTime) -> Vec<ReadGrant> {
        let start = (0..self.planes.len())
            .map(|p| self.plane_free(p))
            .fold(at, SimTime::max);
        let mode = self.mode;
        let sense_time = self.sense_time;
        self.reads += self.planes.len() as u64;
        self.planes
            .iter_mut()
            .map(|p| {
                let sense_end = start + sense_time;
                let data_ready = match mode {
                    RegisterMode::Single => sense_end,
                    RegisterMode::Double => sense_end.max(p.register_free),
                };
                p.array_free = match mode {
                    RegisterMode::Single => sense_end,
                    RegisterMode::Double => data_ready,
                };
                p.register_free = SimTime::MAX;
                ReadGrant {
                    sense_start: start,
                    data_ready,
                }
            })
            .collect()
    }

    /// Reports that `plane`'s pending page finished its channel
    /// transfer at `end`, freeing the output register.
    ///
    /// # Panics
    ///
    /// Panics if `plane` is out of range.
    pub fn note_transfer_done(&mut self, plane: usize, end: SimTime) {
        self.planes[plane].register_free = end;
    }

    /// Earliest time `plane` could start a new sense.
    pub fn plane_free(&self, plane: usize) -> SimTime {
        let p = &self.planes[plane];
        match self.mode {
            RegisterMode::Single => p.array_free.max(p.register_free),
            RegisterMode::Double => p.array_free,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SENSE: Duration = Duration::from_us(3);
    const XFER: Duration = Duration::from_ns(5_320);

    /// Streams `n` reads through one plane with back-to-back transfers;
    /// returns the completion time of the last transfer.
    fn stream(mode: RegisterMode, n: u64) -> SimTime {
        let mut die = DieModel::new(1, SENSE, mode);
        let mut bus_free = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let g = die.read(0, SimTime::ZERO + Duration::ZERO);
            let start = g.data_ready.max(bus_free);
            let end = start + XFER;
            bus_free = end;
            die.note_transfer_done(0, end);
            last = end;
        }
        last
    }

    #[test]
    fn single_register_serializes_sense_and_transfer() {
        // Period = sense + xfer per page.
        let end = stream(RegisterMode::Single, 10);
        let expect = (SENSE + XFER) * 10;
        assert_eq!(end, SimTime::ZERO + expect);
    }

    #[test]
    fn double_register_pipelines() {
        // Period approaches max(sense, xfer) = xfer here.
        let end = stream(RegisterMode::Double, 10);
        let expect = SENSE + XFER * 10; // fill + 10 transfers
        assert_eq!(end, SimTime::ZERO + expect);
    }

    #[test]
    fn double_mode_is_strictly_faster() {
        assert!(stream(RegisterMode::Double, 20) < stream(RegisterMode::Single, 20));
    }

    #[test]
    fn multi_plane_read_senses_together() {
        let mut die = DieModel::new(2, SENSE, RegisterMode::Double);
        let grants = die.multi_plane_read(SimTime::from_ns(100));
        assert_eq!(grants.len(), 2);
        assert_eq!(grants[0].sense_start, grants[1].sense_start);
        assert_eq!(grants[0].data_ready, SimTime::from_ns(100) + SENSE);
        assert_eq!(die.reads(), 2);
    }

    #[test]
    fn planes_are_independent_in_double_mode() {
        let mut die = DieModel::new(2, SENSE, RegisterMode::Double);
        let a = die.read(0, SimTime::ZERO);
        let b = die.read(1, SimTime::ZERO);
        // Both planes sense in parallel.
        assert_eq!(a.sense_start, b.sense_start);
    }

    #[test]
    fn stalled_register_delays_next_sense_in_single_mode() {
        let mut die = DieModel::new(1, SENSE, RegisterMode::Single);
        let g1 = die.read(0, SimTime::ZERO);
        assert_eq!(g1.data_ready, SimTime::ZERO + SENSE);
        // Transfer finishes late.
        die.note_transfer_done(0, SimTime::from_ns(50_000));
        let g2 = die.read(0, SimTime::ZERO + SENSE);
        assert_eq!(g2.sense_start, SimTime::from_ns(50_000));
    }

    #[test]
    #[should_panic(expected = "at least one plane")]
    fn zero_planes_rejected() {
        DieModel::new(0, SENSE, RegisterMode::Single);
    }
}
