//! Flash organization and page-to-die striping.
//!
//! A commodity SSD backend (paper Fig 2) is organized as channels ×
//! chips × dies × planes × blocks × pages. The contention points the
//! simulation cares about are the **die** (one sense at a time) and the
//! **channel bus** (one transfer at a time); planes and blocks matter
//! for capacity, erase granularity and wear accounting.

use directgraph::PageIndex;

/// Identifier of a flash die, flattened across channels.
///
/// # Examples
///
/// ```
/// use beacon_flash::{DieId, FlashGeometry};
/// let geo = FlashGeometry::paper_default();
/// let die = DieId::new(17);
/// assert_eq!(die.channel(&geo), 17 % 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DieId(u32);

impl DieId {
    /// Creates a die id from its flat index.
    pub const fn new(v: u32) -> Self {
        DieId(v)
    }

    /// The flat index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The channel this die hangs off, under `geo`'s striping.
    pub fn channel(self, geo: &FlashGeometry) -> usize {
        self.index() % geo.channels
    }

    /// The die's position within its channel.
    pub fn die_in_channel(self, geo: &FlashGeometry) -> usize {
        self.index() / geo.channels
    }
}

/// The physical location a DirectGraph page index stripes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashLocation {
    /// Channel index.
    pub channel: usize,
    /// Die index within the channel.
    pub die_in_channel: usize,
    /// Plane within the die.
    pub plane: usize,
    /// Block within the plane.
    pub block: usize,
    /// Page within the block.
    pub page_in_block: usize,
}

impl FlashLocation {
    /// The flattened die id of this location under `geo`.
    pub fn die_id(&self, geo: &FlashGeometry) -> DieId {
        DieId::new((self.die_in_channel * geo.channels + self.channel) as u32)
    }
}

/// The flash backend's organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Number of flash channels.
    pub channels: usize,
    /// Dies per channel.
    pub dies_per_channel: usize,
    /// Planes per die (paper Fig 10 shows a two-plane die).
    pub planes_per_die: usize,
    /// Blocks per plane.
    pub blocks_per_plane: usize,
    /// Pages per block ("hundreds of 4KB pages").
    pub pages_per_block: usize,
    /// Page size in bytes.
    pub page_size: usize,
}

impl FlashGeometry {
    /// The paper's default: 16 channels × 8 dies (128 dies total),
    /// two-plane dies, 4 KB pages, 256-page blocks.
    pub fn paper_default() -> Self {
        FlashGeometry {
            channels: 16,
            dies_per_channel: 8,
            planes_per_die: 2,
            blocks_per_plane: 1024,
            pages_per_block: 256,
            page_size: 4096,
        }
    }

    /// Total dies.
    pub fn total_dies(&self) -> usize {
        self.channels * self.dies_per_channel
    }

    /// Pages per die.
    pub fn pages_per_die(&self) -> usize {
        self.planes_per_die * self.blocks_per_plane * self.pages_per_block
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_dies() as u64 * self.pages_per_die() as u64 * self.page_size as u64
    }

    /// Maps a DirectGraph page index to its physical location.
    ///
    /// Pages stripe channel-first, then die, to maximize parallelism for
    /// consecutive page indices (the standard page-level striping of
    /// SimpleSSD-style models): page `i` lands on channel `i % C`, die
    /// `(i / C) % D`, and fills planes/blocks/pages sequentially above
    /// that.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds the geometry's capacity.
    pub fn locate(&self, index: PageIndex) -> FlashLocation {
        let i = index.as_usize();
        let channel = i % self.channels;
        let rest = i / self.channels;
        let die_in_channel = rest % self.dies_per_channel;
        let rest = rest / self.dies_per_channel;
        let plane = rest % self.planes_per_die;
        let rest = rest / self.planes_per_die;
        let page_in_block = rest % self.pages_per_block;
        let block = rest / self.pages_per_block;
        assert!(
            block < self.blocks_per_plane,
            "page index {index} exceeds geometry capacity"
        );
        FlashLocation {
            channel,
            die_in_channel,
            plane,
            block,
            page_in_block,
        }
    }

    /// The flattened die id a page index stripes to.
    pub fn die_of(&self, index: PageIndex) -> DieId {
        self.locate(index).die_id(self)
    }
}

impl Default for FlashGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_counts() {
        let g = FlashGeometry::paper_default();
        assert_eq!(g.total_dies(), 128);
        assert_eq!(g.pages_per_die(), 2 * 1024 * 256);
        // 128 dies x 512Ki pages x 4KB = 256 GiB.
        assert_eq!(g.capacity_bytes(), 128 * 2 * 1024 * 256 * 4096);
    }

    #[test]
    fn consecutive_pages_spread_channels_first() {
        let g = FlashGeometry::paper_default();
        for i in 0..16 {
            assert_eq!(g.locate(PageIndex::new(i)).channel, i as usize);
            assert_eq!(g.locate(PageIndex::new(i)).die_in_channel, 0);
        }
        // Page 16 wraps to channel 0, die 1.
        let loc = g.locate(PageIndex::new(16));
        assert_eq!((loc.channel, loc.die_in_channel), (0, 1));
    }

    #[test]
    fn die_id_roundtrip() {
        let g = FlashGeometry::paper_default();
        for i in [0u64, 1, 17, 127, 12345] {
            let loc = g.locate(PageIndex::new(i));
            let die = loc.die_id(&g);
            assert_eq!(die.channel(&g), loc.channel);
            assert_eq!(die.die_in_channel(&g), loc.die_in_channel);
            assert!(die.index() < g.total_dies());
        }
    }

    #[test]
    fn locations_are_unique_within_capacity() {
        let g = FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 2,
            pages_per_block: 2,
            page_size: 4096,
        };
        let total = g.total_dies() * g.pages_per_die();
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            let loc = g.locate(PageIndex::new(i as u64));
            assert!(seen.insert(loc), "duplicate location for page {i}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds geometry capacity")]
    fn over_capacity_panics() {
        let g = FlashGeometry {
            channels: 1,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 1,
            pages_per_block: 1,
            page_size: 4096,
        };
        g.locate(PageIndex::new(1));
    }
}
