//! Flash timing parameters.
//!
//! The paper's headline medium is ultra-low-latency (ULL) flash — SLC
//! Z-NAND-class with ~3 µs page sense — evaluated against a traditional
//! 20 µs SSD in §VII-E. Channel transfer runs at 800 MB/s by default and
//! is swept 333–2400 MB/s in the Fig 18b sensitivity test.

use simkit::Duration;

/// Latency/bandwidth parameters of the flash backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Page sense (read) latency, command issue to data-in-cache-register.
    pub read_latency: Duration,
    /// Page program latency.
    pub program_latency: Duration,
    /// Block erase latency.
    pub erase_latency: Duration,
    /// Per-channel bus bandwidth in bytes/second.
    pub channel_bandwidth: u64,
    /// Fixed command/addressing overhead on the channel per operation.
    pub command_overhead: Duration,
}

impl FlashTiming {
    /// ULL (Z-NAND-class) flash: 3 µs reads, 100 µs programs, 1 ms
    /// erases, 800 MB/s channels.
    pub fn ull() -> Self {
        FlashTiming {
            read_latency: Duration::from_us(3),
            program_latency: Duration::from_us(100),
            erase_latency: Duration::from_ms(1),
            channel_bandwidth: 800_000_000,
            command_overhead: Duration::from_ns(200),
        }
    }

    /// Traditional TLC-class flash: 20 µs reads (the §VII-E comparison
    /// point), 400 µs programs, 4 ms erases.
    pub fn traditional() -> Self {
        FlashTiming {
            read_latency: Duration::from_us(20),
            program_latency: Duration::from_us(400),
            erase_latency: Duration::from_ms(4),
            channel_bandwidth: 800_000_000,
            command_overhead: Duration::from_ns(200),
        }
    }

    /// Returns this timing with a different channel bandwidth (Fig 18b).
    pub fn with_channel_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.channel_bandwidth = bytes_per_sec;
        self
    }

    /// Returns this timing with a different read latency.
    pub fn with_read_latency(mut self, d: Duration) -> Self {
        self.read_latency = d;
        self
    }

    /// Time to move `bytes` over one channel (excluding command overhead).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        Duration::from_bytes_at_bandwidth(bytes, self.channel_bandwidth)
    }

    /// Full page transfer time for `page_size` bytes plus command
    /// overhead — the page-granular cost that motivates die-level
    /// sampling (paper Fig 6).
    pub fn page_transfer_time(&self, page_size: usize) -> Duration {
        self.command_overhead + self.transfer_time(page_size as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ull_read_is_3us() {
        assert_eq!(FlashTiming::ull().read_latency, Duration::from_us(3));
    }

    #[test]
    fn traditional_read_is_20us() {
        assert_eq!(
            FlashTiming::traditional().read_latency,
            Duration::from_us(20)
        );
    }

    #[test]
    fn page_transfer_dominates_ull_read() {
        // The paper's Challenge 2: at 800 MB/s a 4 KB transfer (5.12 us)
        // exceeds the 3 us ULL sense time.
        let t = FlashTiming::ull();
        assert!(t.page_transfer_time(4096) > t.read_latency);
    }

    #[test]
    fn transfer_scales_with_bandwidth() {
        let slow = FlashTiming::ull().with_channel_bandwidth(400_000_000);
        let fast = FlashTiming::ull().with_channel_bandwidth(1_600_000_000);
        assert_eq!(
            slow.transfer_time(4096).as_ns(),
            4 * fast.transfer_time(4096).as_ns()
        );
    }

    #[test]
    fn builders_override_fields() {
        let t = FlashTiming::ull().with_read_latency(Duration::from_us(7));
        assert_eq!(t.read_latency, Duration::from_us(7));
        assert_eq!(t.channel_bandwidth, 800_000_000);
    }
}
