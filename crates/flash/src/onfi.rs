//! ONFI command encoding (paper §VI-C, Fig 13).
//!
//! ONFI is the standard interface for talking to flash chips. BeaconGNN
//! extends it with two custom commands whose payloads travel over the
//! existing data bus: a **global GNN configuration** command (set once
//! per die before the task) and a **sampling** command (issued at
//! runtime). This module gives the standard and custom commands a
//! concrete byte encoding with round-trip tests, as a stand-in for the
//! paper's Verilog command decoder.
//!
//! Encoding (little-endian):
//!
//! ```text
//! [0]    opcode        00h read, 80h program, 60h erase,
//!                      E0h gnn-config, E1h gnn-sample
//! read/program/erase:
//! [1..5] row address   u32
//! gnn-config:
//! [1]    num_hops      u8
//! [2..4] fanout        u16
//! [4..6] feature_bytes u16
//! gnn-sample (16 bytes total):
//! [1..5]  target       u32 (PhysAddr)
//! [5]     hop          u8
//! [6..8]  count        u16
//! [8..12] subgraph     u32
//! [12..16] parent      u32
//! ```

use directgraph::PhysAddr;

use crate::sampler::{GnnDieConfig, SampleCommand, SAMPLE_CMD_BYTES};

/// Opcode byte for page read (ONFI 00h/30h cycle).
pub const OP_READ: u8 = 0x00;
/// Opcode byte for page program (ONFI 80h/10h cycle).
pub const OP_PROGRAM: u8 = 0x80;
/// Opcode byte for block erase (ONFI 60h/D0h cycle).
pub const OP_ERASE: u8 = 0x60;
/// Custom opcode: global GNN configuration.
pub const OP_GNN_CONFIG: u8 = 0xE0;
/// Custom opcode: GNN sampling.
pub const OP_GNN_SAMPLE: u8 = 0xE1;

/// A command on the flash channel, standard or BeaconGNN-custom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnfiCommand {
    /// Standard page read.
    Read {
        /// Flat row (page) address.
        row: u32,
    },
    /// Standard page program.
    Program {
        /// Flat row (page) address.
        row: u32,
    },
    /// Standard block erase.
    Erase {
        /// Row address of the block's first page.
        block_row: u32,
    },
    /// Custom: set global GNN parameters on a die.
    GnnConfig(GnnDieConfig),
    /// Custom: perform an on-die sampling operation.
    GnnSample(SampleCommand),
}

/// Failure to decode a command byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnfiDecodeError {
    /// The buffer is shorter than the opcode requires.
    Truncated {
        opcode: u8,
        have: usize,
        need: usize,
    },
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// The buffer is empty.
    Empty,
}

impl std::fmt::Display for OnfiDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnfiDecodeError::Truncated { opcode, have, need } => {
                write!(f, "opcode {opcode:#04x} needs {need} bytes, got {have}")
            }
            OnfiDecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            OnfiDecodeError::Empty => write!(f, "empty command buffer"),
        }
    }
}

impl std::error::Error for OnfiDecodeError {}

impl OnfiCommand {
    /// Serializes the command to its bus byte representation.
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            OnfiCommand::Read { row } => encode_addr(OP_READ, row),
            OnfiCommand::Program { row } => encode_addr(OP_PROGRAM, row),
            OnfiCommand::Erase { block_row } => encode_addr(OP_ERASE, block_row),
            OnfiCommand::GnnConfig(cfg) => {
                let mut b = vec![OP_GNN_CONFIG, cfg.num_hops];
                b.extend_from_slice(&cfg.fanout.to_le_bytes());
                b.extend_from_slice(&cfg.feature_bytes.to_le_bytes());
                b
            }
            OnfiCommand::GnnSample(cmd) => {
                let mut b = Vec::with_capacity(SAMPLE_CMD_BYTES);
                b.push(OP_GNN_SAMPLE);
                b.extend_from_slice(&cmd.target.to_raw().to_le_bytes());
                b.push(cmd.hop);
                b.extend_from_slice(&cmd.count.to_le_bytes());
                b.extend_from_slice(&cmd.subgraph.to_le_bytes());
                b.extend_from_slice(&cmd.parent.to_le_bytes());
                debug_assert_eq!(b.len(), SAMPLE_CMD_BYTES);
                b
            }
        }
    }

    /// Parses a command from its bus byte representation.
    ///
    /// # Errors
    ///
    /// Returns [`OnfiDecodeError`] for empty/truncated buffers or unknown
    /// opcodes.
    pub fn decode(bytes: &[u8]) -> Result<Self, OnfiDecodeError> {
        let &opcode = bytes.first().ok_or(OnfiDecodeError::Empty)?;
        let need = |n: usize| {
            if bytes.len() < n {
                Err(OnfiDecodeError::Truncated {
                    opcode,
                    have: bytes.len(),
                    need: n,
                })
            } else {
                Ok(())
            }
        };
        match opcode {
            OP_READ | OP_PROGRAM | OP_ERASE => {
                need(5)?;
                let row = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
                Ok(match opcode {
                    OP_READ => OnfiCommand::Read { row },
                    OP_PROGRAM => OnfiCommand::Program { row },
                    _ => OnfiCommand::Erase { block_row: row },
                })
            }
            OP_GNN_CONFIG => {
                need(6)?;
                Ok(OnfiCommand::GnnConfig(GnnDieConfig {
                    num_hops: bytes[1],
                    fanout: u16::from_le_bytes([bytes[2], bytes[3]]),
                    feature_bytes: u16::from_le_bytes([bytes[4], bytes[5]]),
                }))
            }
            OP_GNN_SAMPLE => {
                need(SAMPLE_CMD_BYTES)?;
                Ok(OnfiCommand::GnnSample(SampleCommand {
                    target: PhysAddr::from_raw(u32::from_le_bytes([
                        bytes[1], bytes[2], bytes[3], bytes[4],
                    ])),
                    hop: bytes[5],
                    count: u16::from_le_bytes([bytes[6], bytes[7]]),
                    subgraph: u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
                    parent: u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]),
                }))
            }
            other => Err(OnfiDecodeError::UnknownOpcode(other)),
        }
    }
}

fn encode_addr(op: u8, row: u32) -> Vec<u8> {
    let mut b = Vec::with_capacity(5);
    b.push(op);
    b.extend_from_slice(&row.to_le_bytes());
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cmd: OnfiCommand) {
        let bytes = cmd.encode();
        assert_eq!(OnfiCommand::decode(&bytes), Ok(cmd));
    }

    #[test]
    fn standard_commands_roundtrip() {
        roundtrip(OnfiCommand::Read { row: 0xDEADBEEF });
        roundtrip(OnfiCommand::Program { row: 42 });
        roundtrip(OnfiCommand::Erase { block_row: 7 });
    }

    #[test]
    fn gnn_config_roundtrips() {
        roundtrip(OnfiCommand::GnnConfig(GnnDieConfig {
            num_hops: 3,
            fanout: 3,
            feature_bytes: 400,
        }));
    }

    #[test]
    fn gnn_sample_roundtrips_and_is_16_bytes() {
        let cmd = OnfiCommand::GnnSample(SampleCommand {
            target: PhysAddr::from_raw(0x12345678),
            hop: 2,
            count: 5,
            subgraph: 99,
            parent: 12345,
        });
        assert_eq!(cmd.encode().len(), SAMPLE_CMD_BYTES);
        roundtrip(cmd);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(OnfiCommand::decode(&[]), Err(OnfiDecodeError::Empty));
        assert_eq!(
            OnfiCommand::decode(&[0xFF]),
            Err(OnfiDecodeError::UnknownOpcode(0xFF))
        );
        let err = OnfiCommand::decode(&[OP_GNN_SAMPLE, 1, 2]).unwrap_err();
        assert!(matches!(err, OnfiDecodeError::Truncated { need: 16, .. }));
        assert!(err.to_string().contains("needs 16 bytes"));
    }

    #[test]
    fn opcodes_are_distinct() {
        let ops = [OP_READ, OP_PROGRAM, OP_ERASE, OP_GNN_CONFIG, OP_GNN_SAMPLE];
        let mut dedup = ops.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ops.len());
    }
}
