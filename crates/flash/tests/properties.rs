//! Property tests for the flash substrate.

use beacon_flash::die::{DieModel, RegisterMode};
use beacon_flash::{FlashGeometry, OnfiCommand};
use directgraph::PageIndex;
use proptest::prelude::*;
use simkit::{Duration, SimTime};

proptest! {
    /// Every page index within capacity maps to a unique, in-range
    /// location, for arbitrary (small) geometries.
    #[test]
    fn striping_is_a_bijection(
        channels in 1usize..6,
        dies in 1usize..4,
        planes in 1usize..3,
        blocks in 1usize..4,
        pages in 1usize..4,
    ) {
        let geo = FlashGeometry {
            channels,
            dies_per_channel: dies,
            planes_per_die: planes,
            blocks_per_plane: blocks,
            pages_per_block: pages,
            page_size: 4096,
        };
        let total = geo.total_dies() * geo.pages_per_die();
        let mut seen = std::collections::HashSet::new();
        for i in 0..total {
            let loc = geo.locate(PageIndex::new(i as u64));
            prop_assert!(loc.channel < channels);
            prop_assert!(loc.die_in_channel < dies);
            prop_assert!(loc.plane < planes);
            prop_assert!(loc.block < blocks);
            prop_assert!(loc.page_in_block < pages);
            prop_assert!(seen.insert(loc), "duplicate location");
        }
    }

    /// Die reads never time-travel: per plane, sense starts are
    /// nondecreasing and data is never ready before the sense ends.
    #[test]
    fn die_model_is_causal(
        mode_double in any::<bool>(),
        ops in proptest::collection::vec((0u64..1_000, 0u64..500), 1..60),
    ) {
        let mode = if mode_double { RegisterMode::Double } else { RegisterMode::Single };
        let sense = Duration::from_us(3);
        let mut die = DieModel::new(1, sense, mode);
        let mut last_start = SimTime::ZERO;
        for (at, xfer_gap) in ops {
            let g = die.read(0, SimTime::from_ns(at));
            prop_assert!(g.sense_start >= last_start, "sense starts went backwards");
            prop_assert!(g.data_ready >= g.sense_start + sense);
            last_start = g.sense_start;
            die.note_transfer_done(0, g.data_ready + Duration::from_ns(xfer_gap));
        }
    }

    /// ONFI encoding of standard commands round-trips for any row.
    #[test]
    fn onfi_standard_roundtrip(row in any::<u32>(), which in 0u8..3) {
        let cmd = match which {
            0 => OnfiCommand::Read { row },
            1 => OnfiCommand::Program { row },
            _ => OnfiCommand::Erase { block_row: row },
        };
        prop_assert_eq!(OnfiCommand::decode(&cmd.encode()), Ok(cmd));
    }
}
