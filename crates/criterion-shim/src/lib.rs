//! # criterion (offline shim)
//!
//! A dependency-free stand-in for the subset of the
//! [criterion](https://docs.rs/criterion) API this workspace's benches
//! use, so `cargo bench` works in environments with no crates-io
//! access. It measures plain wall-clock time over `std::time::Instant`
//! — no statistical analysis, outlier rejection, or HTML reports — and
//! prints one line per benchmark:
//!
//! ```text
//! group/name            time: 12.345 us/iter  (20 iters)  thrpt: 3.2 Melem/s
//! ```
//!
//! Supported surface: `Criterion::{benchmark_group, bench_function}`,
//! group `sample_size`/`throughput`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`, `criterion_main!`, and `black_box`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of measured iterations when a group does not set
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Work-per-iteration declaration, used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    total: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, after one untimed warm-up call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores
    /// all harness arguments (`--bench`, filters, ...).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, DEFAULT_SAMPLE_SIZE, None, f);
        self
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work so results report a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters: sample_size,
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.total.as_secs_f64() / b.iters.max(1) as f64;
    let mut line = format!(
        "{label:<48} time: {}  ({} iters)",
        format_seconds(per_iter),
        b.iters
    );
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem"),
            Throughput::Bytes(n) => (n as f64, "B"),
        };
        if per_iter > 0.0 {
            line.push_str(&format!(
                "  thrpt: {}",
                format_rate(amount / per_iter, unit)
            ));
        }
    }
    println!("{line}");
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s/iter")
    } else if s >= 1e-3 {
        format!("{:.3} ms/iter", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us/iter", s * 1e6)
    } else {
        format!("{:.1} ns/iter", s * 1e9)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

/// Declares a function that runs the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default().configure_from_args();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3).throughput(Throughput::Elements(2));
            g.bench_function("inline", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        // 3 measured + 1 warm-up call of the first closure.
        assert_eq!(ran, 4);
    }

    #[test]
    fn formatting_covers_scales() {
        assert!(format_seconds(2.0).ends_with("s/iter"));
        assert!(format_seconds(2e-3).contains("ms"));
        assert!(format_seconds(2e-6).contains("us"));
        assert!(format_seconds(2e-9).contains("ns"));
        assert!(format_rate(5e9, "elem").contains('G'));
        assert!(format_rate(5e6, "elem").contains('M'));
        assert!(format_rate(5e3, "elem").contains('K'));
        assert!(format_rate(5.0, "B").contains("B/s"));
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("BG-2").to_string(), "BG-2");
    }
}
