//! # beacon-accel — spatial accelerator timing models (paper §V-C, §VII-A)
//!
//! BeaconGNN attaches a spatial accelerator to the SSD's internal bus:
//! a **1-D vector array** for embedding aggregation, a **2-D systolic
//! array** for GEMM-based embedding update, and a shared SRAM buffer.
//! The paper models accelerators with ScaleSim-2.0; for the dense,
//! fixed-dataflow GEMMs of GNN update layers, ScaleSim's cycle counts
//! follow the closed-form output-stationary tiling formula implemented
//! by [`SystolicArray::gemm_cycles`] (see DESIGN.md, substitutions).
//!
//! Two configurations mirror the paper's platforms:
//! [`AcceleratorConfig::ssd_internal`] sized to SSD power/area budgets,
//! and [`AcceleratorConfig::discrete_tpu`], the server-scale PCIe
//! accelerator of the CPU-centric baseline.

pub mod systolic;
pub mod vector;

pub use systolic::SystolicArray;
pub use vector::VectorArray;

use simkit::Duration;

/// A complete spatial-accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceleratorConfig {
    /// The GEMM engine.
    pub systolic: SystolicArray,
    /// The aggregation engine.
    pub vector: VectorArray,
    /// On-chip SRAM buffer in bytes (double-buffered halves).
    pub sram_bytes: usize,
    /// Sustained DRAM-side bandwidth feeding the SRAM, bytes/second.
    pub feed_bandwidth: u64,
}

impl AcceleratorConfig {
    /// The SSD-internal accelerator: a 128×128 systolic array and
    /// 512-lane vector array at 500 MHz with 4 MiB of SRAM — a
    /// TPU-lite sized to the SSD power envelope (the paper configures
    /// its SSD-level accelerator with ScaleSim "to meet SSD resource
    /// budgets"; in-SSD FPGA/ASIC compute of this class is what GLIST
    /// deploys). Roughly 4× below the discrete TPU in sustained GEMM
    /// rate (clock + SRAM + feed bandwidth).
    pub fn ssd_internal() -> Self {
        AcceleratorConfig {
            systolic: SystolicArray::new(128, 128, 500_000_000),
            vector: VectorArray::new(512, 500_000_000),
            sram_bytes: 4 << 20,
            feed_bandwidth: 12_800_000_000,
        }
    }

    /// The discrete server-scale accelerator of the CC baseline: a
    /// 128×128 array and 1024-lane vector unit at 940 MHz with 24 MiB of
    /// SRAM (TPU-class).
    pub fn discrete_tpu() -> Self {
        AcceleratorConfig {
            systolic: SystolicArray::new(128, 128, 940_000_000),
            vector: VectorArray::new(1024, 940_000_000),
            sram_bytes: 24 << 20,
            feed_bandwidth: 300_000_000_000,
        }
    }

    /// Time to run one GEMM of shape `m×k×n`, including a memory-bound
    /// floor from streaming inputs/outputs through the feed link.
    pub fn gemm_time(&self, m: u64, k: u64, n: u64) -> Duration {
        let compute = self.systolic.gemm_time(m, k, n);
        // FP16 operands: read m*k + k*n, write m*n.
        let bytes = 2 * (m * k + k * n + m * n);
        let feed = Duration::from_bytes_at_bandwidth(bytes, self.feed_bandwidth);
        compute.max(feed)
    }

    /// Time to reduce (vector-sum) `vectors` vectors of `dim` elements.
    pub fn reduce_time(&self, vectors: u64, dim: u64) -> Duration {
        let compute = self.vector.reduce_time(vectors, dim);
        let bytes = 2 * vectors * dim;
        let feed = Duration::from_bytes_at_bandwidth(bytes.max(1), self.feed_bandwidth);
        compute.max(feed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_scale() {
        let ssd = AcceleratorConfig::ssd_internal();
        let tpu = AcceleratorConfig::discrete_tpu();
        assert!(tpu.systolic.clock_hz() > ssd.systolic.clock_hz());
        assert!(tpu.sram_bytes > ssd.sram_bytes);
        assert!(tpu.feed_bandwidth > ssd.feed_bandwidth);
    }

    #[test]
    fn tpu_outruns_ssd_accelerator_on_big_gemm() {
        let ssd = AcceleratorConfig::ssd_internal();
        let tpu = AcceleratorConfig::discrete_tpu();
        let (m, k, n) = (4096, 512, 128);
        assert!(tpu.gemm_time(m, k, n) < ssd.gemm_time(m, k, n));
    }

    #[test]
    fn memory_floor_applies_to_skinny_gemm() {
        // A 1-row GEMM is feed-bound, not compute-bound.
        let ssd = AcceleratorConfig::ssd_internal();
        let t = ssd.gemm_time(1, 128, 128);
        let bytes = 2 * (128 + 128 * 128 + 128);
        let feed = Duration::from_bytes_at_bandwidth(bytes, ssd.feed_bandwidth);
        assert!(t >= feed);
    }

    #[test]
    fn reduce_time_scales_linearly() {
        let ssd = AcceleratorConfig::ssd_internal();
        let t1 = ssd.reduce_time(1_000, 128);
        let t2 = ssd.reduce_time(2_000, 128);
        assert!(t2 >= t1 * 2 - Duration::from_ns(10));
    }
}
