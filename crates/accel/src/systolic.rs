//! Output-stationary systolic-array GEMM timing.
//!
//! For an `R×C` array computing `M×K×N = (M×K)·(K×N)`, the output matrix
//! tiles into `⌈M/R⌉ × ⌈N/C⌉` blocks; each block streams `K` partial
//! sums through the array and pays a fill/drain skew of `R + C - 1`
//! cycles. This is the closed form ScaleSim-2.0's output-stationary
//! dataflow converges to for dense GEMMs.

use simkit::Duration;

/// A 2-D systolic MAC array.
///
/// # Examples
///
/// ```
/// use beacon_accel::SystolicArray;
/// let a = SystolicArray::new(32, 32, 500_000_000);
/// // One 32x32 output tile with K=128: 128 + 63 cycles.
/// assert_eq!(a.gemm_cycles(32, 128, 32), 128 + 32 + 32 - 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SystolicArray {
    rows: u64,
    cols: u64,
    clock_hz: u64,
}

impl SystolicArray {
    /// Creates an array of `rows × cols` MACs at `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(rows: u64, cols: u64, clock_hz: u64) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        assert!(clock_hz > 0, "clock must be positive");
        SystolicArray {
            rows,
            cols,
            clock_hz,
        }
    }

    /// Array rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Array columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Peak MAC throughput per cycle.
    pub fn macs_per_cycle(&self) -> u64 {
        self.rows * self.cols
    }

    /// Cycles for an `m×k×n` GEMM under output-stationary tiling.
    ///
    /// Zero-sized GEMMs take zero cycles.
    pub fn gemm_cycles(&self, m: u64, k: u64, n: u64) -> u64 {
        if m == 0 || k == 0 || n == 0 {
            return 0;
        }
        let tiles = m.div_ceil(self.rows) * n.div_ceil(self.cols);
        tiles * (k + self.rows + self.cols - 1)
    }

    /// Wall time for an `m×k×n` GEMM.
    pub fn gemm_time(&self, m: u64, k: u64, n: u64) -> Duration {
        Duration::from_cycles(self.gemm_cycles(m, k, n), self.clock_hz)
    }

    /// MAC-utilization of an `m×k×n` GEMM: useful MACs over peak MACs
    /// during the busy window (1.0 = perfectly filled array).
    pub fn utilization(&self, m: u64, k: u64, n: u64) -> f64 {
        let cycles = self.gemm_cycles(m, k, n);
        if cycles == 0 {
            return 0.0;
        }
        let useful = (m * k * n) as f64;
        useful / (cycles as f64 * self.macs_per_cycle() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_math() {
        let a = SystolicArray::new(4, 4, 1_000_000_000);
        // 8x8 output = 4 tiles; each K=16 + 7 skew = 23 cycles.
        assert_eq!(a.gemm_cycles(8, 16, 8), 4 * 23);
        // Ragged edges round up.
        assert_eq!(a.gemm_cycles(5, 16, 5), 4 * 23);
    }

    #[test]
    fn zero_gemm_is_free() {
        let a = SystolicArray::new(8, 8, 1_000_000_000);
        assert_eq!(a.gemm_cycles(0, 10, 10), 0);
        assert_eq!(a.gemm_time(10, 0, 10), Duration::ZERO);
        assert_eq!(a.utilization(0, 0, 0), 0.0);
    }

    #[test]
    fn utilization_improves_with_larger_k() {
        let a = SystolicArray::new(32, 32, 1_000_000_000);
        let short = a.utilization(32, 8, 32);
        let long = a.utilization(32, 1024, 32);
        assert!(long > short);
        assert!(long <= 1.0 && short > 0.0);
    }

    #[test]
    fn time_matches_cycles_at_clock() {
        let a = SystolicArray::new(32, 32, 500_000_000);
        let cycles = a.gemm_cycles(64, 128, 64);
        assert_eq!(
            a.gemm_time(64, 128, 64),
            Duration::from_cycles(cycles, 500_000_000)
        );
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_array_rejected() {
        SystolicArray::new(0, 4, 1);
    }
}
