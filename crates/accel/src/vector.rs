//! 1-D vector array for embedding aggregation.
//!
//! BeaconGNN's aggregation function is `vector_sum` (§VII-A): reducing
//! the embeddings of a node's sampled neighbors element-wise. A 1-D
//! SIMD array of `lanes` adders performs `lanes` element-additions per
//! cycle.

use simkit::Duration;

/// A 1-D SIMD reduction array.
///
/// # Examples
///
/// ```
/// use beacon_accel::VectorArray;
/// let v = VectorArray::new(64, 500_000_000);
/// // Summing 4 vectors of 128 elements = 3 adds x 128 = 384 ops -> 6 cycles.
/// assert_eq!(v.reduce_cycles(4, 128), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorArray {
    lanes: u64,
    clock_hz: u64,
}

impl VectorArray {
    /// Creates an array with `lanes` adder lanes at `clock_hz`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(lanes: u64, clock_hz: u64) -> Self {
        assert!(lanes > 0, "lanes must be positive");
        assert!(clock_hz > 0, "clock must be positive");
        VectorArray { lanes, clock_hz }
    }

    /// Number of adder lanes.
    pub fn lanes(&self) -> u64 {
        self.lanes
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Cycles to vector-sum `vectors` vectors of `dim` elements
    /// (`(vectors-1) × dim` element additions, `lanes` per cycle).
    pub fn reduce_cycles(&self, vectors: u64, dim: u64) -> u64 {
        if vectors <= 1 || dim == 0 {
            return 0;
        }
        ((vectors - 1) * dim).div_ceil(self.lanes)
    }

    /// Wall time for the reduction.
    pub fn reduce_time(&self, vectors: u64, dim: u64) -> Duration {
        Duration::from_cycles(self.reduce_cycles(vectors, dim), self.clock_hz)
    }

    /// Total element additions performed (for energy accounting).
    pub fn reduce_ops(&self, vectors: u64, dim: u64) -> u64 {
        if vectors <= 1 {
            return 0;
        }
        (vectors - 1) * dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vector_is_free() {
        let v = VectorArray::new(16, 1_000_000_000);
        assert_eq!(v.reduce_cycles(1, 128), 0);
        assert_eq!(v.reduce_cycles(0, 128), 0);
        assert_eq!(v.reduce_ops(1, 128), 0);
    }

    #[test]
    fn cycles_round_up() {
        let v = VectorArray::new(16, 1_000_000_000);
        // 2 vectors x dim 17 = 17 ops -> 2 cycles on 16 lanes.
        assert_eq!(v.reduce_cycles(2, 17), 2);
    }

    #[test]
    fn ops_count_for_energy() {
        let v = VectorArray::new(64, 500_000_000);
        assert_eq!(v.reduce_ops(4, 128), 3 * 128);
    }

    #[test]
    fn time_uses_clock() {
        let v = VectorArray::new(64, 500_000_000);
        let c = v.reduce_cycles(40, 128);
        assert_eq!(
            v.reduce_time(40, 128),
            Duration::from_cycles(c, 500_000_000)
        );
    }

    #[test]
    #[should_panic(expected = "lanes must be positive")]
    fn zero_lanes_rejected() {
        VectorArray::new(0, 1);
    }
}
