//! Edge-list import/export.
//!
//! Real deployments convert *their* graphs, not synthetic ones; this
//! module reads the ubiquitous whitespace-separated edge-list format
//! (one `src dst` pair per line, `#` comments, as used by SNAP and most
//! graph repositories) and writes it back out.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::csr::{CsrGraph, CsrGraphBuilder, NodeId};

/// Failures while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line did not contain two integers.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "i/o: {e}"),
            EdgeListError::Malformed { line, content } => {
                write!(f, "line {line}: expected `src dst`, got `{content}`")
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Reads a whitespace-separated edge list into a CSR graph.
///
/// The graph is sized to the largest node id seen. Empty lines and
/// lines starting with `#` or `%` are skipped. A `&mut` reference can
/// be passed as the reader.
///
/// # Errors
///
/// Returns [`EdgeListError`] for I/O failures or malformed lines.
///
/// # Examples
///
/// ```
/// use beacon_graph::io::read_edge_list;
/// let text = "# a comment\n0 1\n1 2\n2 0\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// # Ok::<(), beacon_graph::io::EdgeListError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, EdgeListError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u32> { s.and_then(|t| t.parse().ok()) };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) => {
                max_id = max_id.max(u).max(v);
                edges.push((u, v));
            }
            _ => {
                return Err(EdgeListError::Malformed {
                    line: i + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = CsrGraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(NodeId::new(u), NodeId::new(v));
    }
    Ok(b.build())
}

/// Writes a graph as a whitespace-separated edge list. A `&mut`
/// reference can be passed as the writer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for v in graph.nodes() {
        for &nb in graph.neighbors(v) {
            writeln!(writer, "{} {}", v.as_u32(), nb.as_u32())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn roundtrip() {
        let g = generate::uniform(50, 4, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "% matrix-market style\n\n# comment\n0 1\n\n1 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            EdgeListError::Malformed { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "not numbers");
            }
            other => panic!("expected Malformed, got {other}"),
        }
    }

    #[test]
    fn single_token_line_is_malformed() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, EdgeListError::Malformed { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn ids_size_the_graph() {
        let g = read_edge_list("3 7\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.degree(NodeId::new(3)), 1);
    }

    #[test]
    fn extra_columns_are_ignored() {
        // SNAP-style files sometimes carry weights/timestamps.
        let g = read_edge_list("0 1 0.5 1234\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
