//! Evaluation-workload presets (paper Table III / Table IV).
//!
//! The paper adopts five large-scale GNN workloads taken from PyTorch
//! Geometric and scaled up following SmartSage's methodology, reaching
//! 30–400 GB raw size. This module records the per-dataset parameters
//! that drive the simulation — average degree, feature dimensionality,
//! degree skew — together with the paper-reported raw sizes used by the
//! Table IV inflation experiment, and synthesizes graphs with those
//! characteristics at simulation scale (see DESIGN.md, substitutions).

use crate::csr::CsrGraph;
use crate::features::{FeatureTable, FEATURE_SCALAR_BYTES};
use crate::generate::{power_law, PowerLawConfig};

/// The five evaluation workloads of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Social-network graph; very high degree, high-dimensional features.
    Reddit,
    /// E-commerce co-purchase graph; the paper calls its average degree
    /// and feature length "representative in common large-scale GNNs" and
    /// uses it for all single-workload experiments.
    Amazon,
    /// Recommendation bipartite graph; short features.
    Movielens,
    /// Citation graph (OGBN); low average degree (28), the Table IV
    /// inflation outlier.
    Ogbn,
    /// Protein-protein interaction graph; high-dimensional features.
    Ppi,
}

impl Dataset {
    /// All five workloads in the paper's presentation order.
    pub const ALL: [Dataset; 5] = [
        Dataset::Reddit,
        Dataset::Amazon,
        Dataset::Movielens,
        Dataset::Ogbn,
        Dataset::Ppi,
    ];

    /// Lowercase display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Reddit => "reddit",
            Dataset::Amazon => "amazon",
            Dataset::Movielens => "movielens",
            Dataset::Ogbn => "OGBN",
            Dataset::Ppi => "PPI",
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters describing a workload; drives graph synthesis and the
/// analytic Table IV inflation model.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which preset this spec was derived from.
    pub dataset: Dataset,
    /// Number of nodes to synthesize at simulation scale.
    pub num_nodes: usize,
    /// Target average degree (paper-scale characteristic).
    pub avg_degree: f64,
    /// Node feature dimensionality (Table III).
    pub feature_dim: usize,
    /// Power-law exponent of the degree distribution.
    pub degree_exponent: f64,
    /// Paper-reported raw dataset size in GB (Table IV, for reporting).
    pub paper_raw_gb: f64,
}

impl DatasetSpec {
    /// The preset for `dataset` at the default simulation scale
    /// (100k nodes).
    ///
    /// Average degrees and feature dimensions follow the characteristics
    /// the paper states or implies: OGBN's degree of 28 is given in
    /// §VII-F; reddit/PPI are called out as high-feature-dimension and
    /// movielens/OGBN as short-feature workloads in §VII-B; raw sizes are
    /// Table IV's.
    pub fn preset(dataset: Dataset) -> Self {
        let (avg_degree, feature_dim, exponent, paper_raw_gb) = match dataset {
            Dataset::Reddit => (492.0, 602, 2.1, 242.6),
            Dataset::Amazon => (168.0, 200, 2.2, 397.2),
            Dataset::Movielens => (96.0, 32, 2.3, 221.8),
            Dataset::Ogbn => (28.0, 32, 2.4, 30.02),
            Dataset::Ppi => (28.3, 500, 2.4, 37.1),
        };
        DatasetSpec {
            dataset,
            num_nodes: 100_000,
            avg_degree,
            feature_dim,
            degree_exponent: exponent,
            paper_raw_gb,
        }
    }

    /// Returns the spec scaled to `num_nodes` nodes (degree and feature
    /// shape unchanged).
    pub fn at_scale(mut self, num_nodes: usize) -> Self {
        self.num_nodes = num_nodes;
        self
    }

    /// Synthesizes the graph for this spec.
    pub fn build_graph(&self, seed: u64) -> CsrGraph {
        let mut cfg = PowerLawConfig::new(self.num_nodes, self.avg_degree);
        cfg.exponent = self.degree_exponent;
        power_law(&cfg, seed ^ fnv(self.dataset.name()))
    }

    /// Synthesizes the feature table for this spec.
    pub fn build_features(&self, seed: u64) -> FeatureTable {
        FeatureTable::synthetic(self.num_nodes, self.feature_dim, seed ^ 0xFEA7)
    }

    /// Bytes of one feature vector at FP-16 width.
    pub fn feature_bytes(&self) -> usize {
        self.feature_dim * FEATURE_SCALAR_BYTES
    }

    /// Raw (un-inflated) storage of a graph with these characteristics:
    /// neighbor lists at 4 B per edge endpoint plus the feature table.
    /// Used as the denominator of the Table IV inflation ratio.
    pub fn raw_bytes(&self, num_nodes: usize) -> u64 {
        let edges = (num_nodes as f64 * self.avg_degree) as u64;
        edges * 4 + (num_nodes * self.feature_bytes()) as u64
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        for d in Dataset::ALL {
            let spec = DatasetSpec::preset(d).at_scale(5_000);
            let g = spec.build_graph(1);
            assert_eq!(g.num_nodes(), 5_000, "{d}");
            let rel_err = (g.avg_degree() - spec.avg_degree).abs() / spec.avg_degree;
            assert!(rel_err < 0.15, "{d}: avg degree off by {rel_err}");
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["reddit", "amazon", "movielens", "OGBN", "PPI"]);
    }

    #[test]
    fn ogbn_is_the_low_degree_outlier() {
        let degrees: Vec<f64> = Dataset::ALL
            .iter()
            .map(|&d| DatasetSpec::preset(d).avg_degree)
            .collect();
        let ogbn = DatasetSpec::preset(Dataset::Ogbn).avg_degree;
        assert!(degrees.iter().all(|&d| d >= ogbn));
    }

    #[test]
    fn feature_bytes_fp16() {
        let spec = DatasetSpec::preset(Dataset::Reddit);
        assert_eq!(spec.feature_bytes(), 1204);
    }

    #[test]
    fn raw_bytes_scales_linearly() {
        let spec = DatasetSpec::preset(Dataset::Amazon);
        let r1 = spec.raw_bytes(1_000);
        let r2 = spec.raw_bytes(2_000);
        assert!(r2 > r1 && r2 < r1 * 21 / 10, "expected ~2x growth");
    }

    #[test]
    fn distinct_datasets_get_distinct_graphs() {
        let a = DatasetSpec::preset(Dataset::Ogbn)
            .at_scale(1_000)
            .build_graph(1);
        let b = DatasetSpec::preset(Dataset::Ppi)
            .at_scale(1_000)
            .build_graph(1);
        assert_ne!(a, b);
    }

    #[test]
    fn features_match_dims() {
        let spec = DatasetSpec::preset(Dataset::Movielens).at_scale(100);
        let t = spec.build_features(7);
        assert_eq!(t.dim(), 32);
        assert_eq!(t.num_nodes(), 100);
    }
}
