//! Node feature tables.
//!
//! The paper stores features as FP-16 vectors whose dimensionality is set
//! by the dataset (Table III) and uses 128-dimensional FP-16 embeddings
//! for all intermediate layers. We keep feature values in `f32` for
//! functional computation but account for storage and transfer sizes at
//! the FP-16 width the paper uses.

use simkit::{par, SplitMix64};

use crate::csr::NodeId;

/// Feature rows per parallel work item; fixed so chunk boundaries (and
/// output) are identical at any thread count.
const ROWS_PER_CHUNK: usize = 256;

/// Stream salt separating feature draws from every graph-generator
/// stream family.
const SALT_FEATURES: u64 = 0x5EED_00F1;

/// Bytes per stored feature scalar (FP-16 per the paper).
pub const FEATURE_SCALAR_BYTES: usize = 2;

/// A dense node-feature table of fixed dimension.
///
/// Contents are synthesized deterministically from a seed; functional GNN
/// tests only need *stable, well-distributed* values, not trained ones.
///
/// # Examples
///
/// ```
/// use beacon_graph::{FeatureTable, NodeId};
///
/// let t = FeatureTable::synthetic(100, 64, 9);
/// assert_eq!(t.dim(), 64);
/// assert_eq!(t.feature(NodeId::new(3)).len(), 64);
/// assert_eq!(t.vector_bytes(), 128); // 64 scalars x FP-16
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureTable {
    dim: usize,
    data: Vec<f32>,
}

impl FeatureTable {
    /// Creates a table of `num_nodes × dim` deterministic pseudo-random
    /// features in `[-1, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn synthetic(num_nodes: usize, dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        // One stream per row: each node's vector is a pure function of
        // (seed, node), so rows synthesize independently on any number
        // of build threads with byte-identical output.
        let mut data = vec![0f32; num_nodes * dim];
        par::for_each_chunk_mut(&mut data, ROWS_PER_CHUNK * dim, |start, chunk| {
            let first_row = start / dim;
            for (k, row) in chunk.chunks_mut(dim).enumerate() {
                let mut rng = SplitMix64::for_stream(seed, SALT_FEATURES, (first_row + k) as u64);
                for v in row {
                    *v = (rng.next_f64() * 2.0 - 1.0) as f32;
                }
            }
        });
        FeatureTable { dim, data }
    }

    /// Creates a table from row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `data.len()` is not a multiple of `dim`.
    pub fn from_rows(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "data length must be a multiple of dim"
        );
        FeatureTable { dim, data }
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.data.len() / self.dim
    }

    /// The feature vector of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn feature(&self, v: NodeId) -> &[f32] {
        let i = v.index();
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole table, row-major (used by workload serialization).
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.data
    }

    /// Storage footprint of one vector at FP-16 width, in bytes.
    #[inline]
    pub fn vector_bytes(&self) -> usize {
        self.dim * FEATURE_SCALAR_BYTES
    }

    /// Storage footprint of the whole table at FP-16 width, in bytes.
    #[inline]
    pub fn table_bytes(&self) -> usize {
        self.num_nodes() * self.vector_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let a = FeatureTable::synthetic(50, 16, 1);
        let b = FeatureTable::synthetic(50, 16, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = FeatureTable::synthetic(50, 16, 1);
        let b = FeatureTable::synthetic(50, 16, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn shapes_and_bytes() {
        let t = FeatureTable::synthetic(10, 602, 3); // reddit-like dim
        assert_eq!(t.num_nodes(), 10);
        assert_eq!(t.dim(), 602);
        assert_eq!(t.vector_bytes(), 1204);
        assert_eq!(t.table_bytes(), 12_040);
    }

    #[test]
    fn values_bounded() {
        let t = FeatureTable::synthetic(100, 8, 7);
        for v in 0..100 {
            for &x in t.feature(NodeId::new(v)) {
                assert!((-1.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn from_rows_roundtrip() {
        let t = FeatureTable::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.feature(NodeId::new(1)), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_rows_panic() {
        FeatureTable::from_rows(3, vec![1.0, 2.0]);
    }

    #[test]
    fn synthetic_is_thread_count_invariant() {
        par::set_build_threads(1);
        let reference = FeatureTable::synthetic(1_000, 48, 21);
        for threads in [2, 8] {
            par::set_build_threads(threads);
            assert_eq!(
                FeatureTable::synthetic(1_000, 48, 21),
                reference,
                "threads={threads}"
            );
        }
        par::set_build_threads(1);
    }
}
