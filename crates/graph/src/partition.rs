//! Graph partitioning for computational storage arrays (paper §VIII).
//!
//! When BeaconGNN scales out, the graph partitions across SSDs and
//! every cross-partition sampled edge becomes P2P traffic. The quality
//! of the partition therefore directly sets the fabric load. Three
//! strategies are provided:
//!
//! * [`Partition::hash`] — node-id modulo; zero metadata, worst cut.
//! * [`Partition::range`] — contiguous id ranges; preserves whatever
//!   locality the node numbering has.
//! * [`Partition::bfs_grow`] — greedy BFS region growing (a light
//!   locality-aware heuristic in the METIS spirit): grows each part
//!   from a seed along edges until it reaches its share of nodes.

use std::collections::VecDeque;

use crate::csr::{CsrGraph, NodeId};

/// An assignment of every node to one of `k` parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    parts: u32,
    assignment: Vec<u32>,
}

impl Partition {
    /// Hash (modulo) partitioning into `k` parts.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn hash(graph: &CsrGraph, k: u32) -> Self {
        assert!(k > 0, "need at least one part");
        Partition {
            parts: k,
            assignment: (0..graph.num_nodes() as u32).map(|v| v % k).collect(),
        }
    }

    /// Contiguous-range partitioning into `k` parts of (nearly) equal
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn range(graph: &CsrGraph, k: u32) -> Self {
        assert!(k > 0, "need at least one part");
        let n = graph.num_nodes();
        let per = n.div_ceil(k as usize).max(1);
        Partition {
            parts: k,
            assignment: (0..n).map(|v| ((v / per) as u32).min(k - 1)).collect(),
        }
    }

    /// Greedy BFS region growing into `k` parts: part `i` grows from
    /// seed `i × n/k` along adjacency until it holds `n/k` nodes;
    /// leftover nodes join the least-loaded part.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn bfs_grow(graph: &CsrGraph, k: u32) -> Self {
        assert!(k > 0, "need at least one part");
        let n = graph.num_nodes();
        let target = n.div_ceil(k as usize).max(1);
        let mut assignment = vec![u32::MAX; n];
        let mut sizes = vec![0usize; k as usize];
        for part in 0..k {
            let seed = (part as usize * n / k as usize).min(n.saturating_sub(1));
            // Find an unassigned seed near the nominal position.
            let seed = (seed..n)
                .chain(0..seed)
                .find(|&v| assignment[v] == u32::MAX);
            let Some(seed) = seed else { break };
            let mut queue = VecDeque::from([seed]);
            while let Some(v) = queue.pop_front() {
                if sizes[part as usize] >= target {
                    break;
                }
                if assignment[v] != u32::MAX {
                    continue;
                }
                assignment[v] = part;
                sizes[part as usize] += 1;
                for &nb in graph.neighbors(NodeId::new(v as u32)) {
                    if assignment[nb.index()] == u32::MAX {
                        queue.push_back(nb.index());
                    }
                }
            }
        }
        // Anything unreached joins the least-loaded part.
        for slot in assignment.iter_mut() {
            if *slot == u32::MAX {
                let part = (0..k as usize).min_by_key(|&p| sizes[p]).expect("k > 0") as u32;
                *slot = part;
                sizes[part as usize] += 1;
            }
        }
        Partition {
            parts: k,
            assignment,
        }
    }

    /// Number of parts.
    pub fn parts(&self) -> u32 {
        self.parts
    }

    /// The part holding `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn part_of(&self, node: NodeId) -> u32 {
        self.assignment[node.index()]
    }

    /// Nodes per part.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts as usize];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Fraction of directed edges whose endpoints land in different
    /// parts (the §VIII P2P traffic fraction).
    pub fn cut_fraction(&self, graph: &CsrGraph) -> f64 {
        if graph.num_edges() == 0 {
            return 0.0;
        }
        let mut cut = 0u64;
        for v in graph.nodes() {
            let pv = self.part_of(v);
            for &nb in graph.neighbors(v) {
                if self.part_of(nb) != pv {
                    cut += 1;
                }
            }
        }
        cut as f64 / graph.num_edges() as f64
    }

    /// Directed edge counts between every ordered pair of parts, as a
    /// row-major `k × k` matrix: entry `[from × k + to]` counts edges
    /// whose source lives in `from` and destination in `to`. The
    /// diagonal holds intra-part edges; the off-diagonal sum is exactly
    /// the cut, so `cross / total` reproduces [`cut_fraction`]. The
    /// array router uses the per-pair counts to price fabric links.
    ///
    /// [`cut_fraction`]: Partition::cut_fraction
    pub fn cross_edges(&self, graph: &CsrGraph) -> Vec<u64> {
        let k = self.parts as usize;
        let mut matrix = vec![0u64; k * k];
        for v in graph.nodes() {
            let pv = self.part_of(v) as usize;
            for &nb in graph.neighbors(v) {
                matrix[pv * k + self.part_of(nb) as usize] += 1;
            }
        }
        matrix
    }

    /// Load imbalance: `max part size / ideal size` (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let sizes = self.sizes();
        let max = *sizes.iter().max().expect("k > 0") as f64;
        let ideal = self.assignment.len() as f64 / self.parts as f64;
        if ideal == 0.0 {
            return 1.0;
        }
        max / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraphBuilder;
    use crate::generate;

    /// A graph of `k` dense clusters with sparse inter-cluster links.
    fn clustered(clusters: usize, per: usize) -> CsrGraph {
        let n = clusters * per;
        let mut b = CsrGraphBuilder::new(n);
        let mut rng = simkit::SplitMix64::new(9);
        for c in 0..clusters {
            let base = c * per;
            for i in 0..per {
                for _ in 0..6 {
                    let j = rng.next_bounded(per as u64) as usize;
                    if i != j {
                        b.add_edge(
                            NodeId::new((base + i) as u32),
                            NodeId::new((base + j) as u32),
                        );
                    }
                }
            }
            // One sparse bridge to the next cluster.
            let next = (c + 1) % clusters;
            b.add_undirected_edge(NodeId::new(base as u32), NodeId::new((next * per) as u32));
        }
        b.build()
    }

    #[test]
    fn all_strategies_cover_all_nodes() {
        let g = generate::uniform(200, 5, 1);
        for p in [
            Partition::hash(&g, 4),
            Partition::range(&g, 4),
            Partition::bfs_grow(&g, 4),
        ] {
            assert_eq!(p.parts(), 4);
            assert_eq!(p.sizes().iter().sum::<usize>(), 200);
            for v in g.nodes() {
                assert!(p.part_of(v) < 4);
            }
        }
    }

    #[test]
    fn balance_is_reasonable() {
        let g = generate::uniform(1_000, 6, 2);
        assert!(Partition::hash(&g, 8).imbalance() < 1.05);
        assert!(Partition::range(&g, 8).imbalance() < 1.05);
        assert!(Partition::bfs_grow(&g, 8).imbalance() < 1.20);
    }

    #[test]
    fn bfs_grow_cuts_fewer_edges_on_clustered_graphs() {
        let g = clustered(4, 200);
        let hash_cut = Partition::hash(&g, 4).cut_fraction(&g);
        let bfs_cut = Partition::bfs_grow(&g, 4).cut_fraction(&g);
        // Hash destroys clustering (~75% cut for 4 parts); BFS growing
        // should recover most cluster locality.
        assert!(hash_cut > 0.7, "hash cut {hash_cut}");
        assert!(bfs_cut < hash_cut / 2.0, "bfs {bfs_cut} vs hash {hash_cut}");
    }

    #[test]
    fn range_partition_respects_contiguity() {
        let g = generate::uniform(100, 3, 3);
        let p = Partition::range(&g, 4);
        assert_eq!(p.part_of(NodeId::new(0)), 0);
        assert_eq!(p.part_of(NodeId::new(99)), 3);
        // Monotone assignment.
        for v in 1..100u32 {
            assert!(p.part_of(NodeId::new(v)) >= p.part_of(NodeId::new(v - 1)));
        }
    }

    #[test]
    fn single_part_has_zero_cut() {
        let g = generate::uniform(50, 4, 4);
        let p = Partition::hash(&g, 1);
        assert_eq!(p.cut_fraction(&g), 0.0);
        assert!((p.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_rejected() {
        Partition::hash(&generate::uniform(10, 2, 1), 0);
    }

    #[test]
    fn cross_edges_matrix_accounts_for_every_edge() {
        let g = clustered(4, 100);
        for p in [
            Partition::hash(&g, 4),
            Partition::range(&g, 4),
            Partition::bfs_grow(&g, 4),
        ] {
            let m = p.cross_edges(&g);
            assert_eq!(m.len(), 16);
            assert_eq!(m.iter().sum::<u64>(), g.num_edges() as u64);
            let cross: u64 = (0..4)
                .flat_map(|a| (0..4).map(move |b| (a, b)))
                .filter(|&(a, b)| a != b)
                .map(|(a, b)| m[a * 4 + b])
                .sum();
            let expect = p.cut_fraction(&g) * g.num_edges() as f64;
            assert!((cross as f64 - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_edges_single_part_is_all_diagonal() {
        let g = generate::uniform(60, 4, 7);
        let m = Partition::hash(&g, 1).cross_edges(&g);
        assert_eq!(m, vec![g.num_edges() as u64]);
    }

    #[test]
    fn sizes_sum_and_imbalance_are_pinned() {
        // 10 nodes over 3 parts: hash gives [4, 3, 3]; ideal is 10/3,
        // so imbalance is exactly 4 / (10/3) = 1.2.
        let g = generate::uniform(10, 2, 1);
        let p = Partition::hash(&g, 3);
        assert_eq!(p.sizes(), vec![4, 3, 3]);
        assert_eq!(p.sizes().iter().sum::<usize>(), 10);
        assert!((p.imbalance() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn bfs_grow_seeding_is_deterministic() {
        // Region growing has no random input: seeds derive only from
        // the node numbering, so repeated runs must agree bit-for-bit,
        // and the first seed (node 0) always lands in part 0.
        let g = clustered(4, 150);
        let a = Partition::bfs_grow(&g, 4);
        let b = Partition::bfs_grow(&g, 4);
        assert_eq!(a, b);
        // The first seed (node 0) always lands in part 0, every part
        // gets seeded, and every node is assigned.
        assert_eq!(a.part_of(NodeId::new(0)), 0);
        assert!(a.sizes().iter().all(|&s| s > 0));
        assert_eq!(a.sizes().iter().sum::<usize>(), g.num_nodes());
        // Region growing respects the clustering far better than
        // hashing does.
        assert!(a.cut_fraction(&g) < Partition::hash(&g, 4).cut_fraction(&g) / 2.0);
    }
}
