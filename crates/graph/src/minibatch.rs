//! Mini-batch target-node streams (§II-A).
//!
//! GraphSage-style training selects a small batch of target nodes per
//! step; the host hands the SSD a batch of targets (and, with
//! DirectGraph, their primary-section addresses) at the start of each
//! mini-batch. [`MinibatchStream`] produces those target batches
//! deterministically.

use simkit::SplitMix64;

use crate::csr::NodeId;

/// A deterministic stream of fixed-size mini-batches of target nodes.
///
/// # Examples
///
/// ```
/// use beacon_graph::MinibatchStream;
///
/// let mut s = MinibatchStream::new(1_000, 64, 42);
/// let batch = s.next_batch();
/// assert_eq!(batch.len(), 64);
/// assert!(batch.iter().all(|v| v.index() < 1_000));
/// ```
#[derive(Debug, Clone)]
pub struct MinibatchStream {
    num_nodes: usize,
    batch_size: usize,
    rng: SplitMix64,
    produced: u64,
}

impl MinibatchStream {
    /// Creates a stream drawing targets uniformly from `[0, num_nodes)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` or `batch_size` is zero.
    pub fn new(num_nodes: usize, batch_size: usize, seed: u64) -> Self {
        assert!(num_nodes > 0, "need at least one node");
        assert!(batch_size > 0, "batch size must be positive");
        MinibatchStream {
            num_nodes,
            batch_size,
            rng: SplitMix64::new(seed),
            produced: 0,
        }
    }

    /// Produces the next mini-batch of target nodes.
    pub fn next_batch(&mut self) -> Vec<NodeId> {
        self.produced += 1;
        (0..self.batch_size)
            .map(|_| NodeId::new(self.rng.next_bounded(self.num_nodes as u64) as u32))
            .collect()
    }

    /// Number of batches produced so far.
    pub fn batches_produced(&self) -> u64 {
        self.produced
    }

    /// Configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

impl Iterator for MinibatchStream {
    type Item = Vec<NodeId>;

    /// The stream is infinite; `next` always yields a batch.
    fn next(&mut self) -> Option<Vec<NodeId>> {
        Some(self.next_batch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_requested_size() {
        let mut s = MinibatchStream::new(100, 32, 1);
        assert_eq!(s.next_batch().len(), 32);
        assert_eq!(s.batch_size(), 32);
        assert_eq!(s.batches_produced(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<_> = MinibatchStream::new(100, 8, 5).take(3).collect();
        let b: Vec<_> = MinibatchStream::new(100, 8, 5).take(3).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = MinibatchStream::new(1_000, 64, 1).next_batch();
        let b = MinibatchStream::new(1_000, 64, 2).next_batch();
        assert_ne!(a, b);
    }

    #[test]
    fn targets_in_range() {
        let mut s = MinibatchStream::new(17, 100, 3);
        for v in s.next_batch() {
            assert!(v.index() < 17);
        }
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        MinibatchStream::new(10, 0, 0);
    }
}
