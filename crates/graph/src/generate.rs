//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on scaled-up versions of real datasets that reach
//! hundreds of gigabytes. This reproduction substitutes synthetic graphs
//! whose *average degree* and *degree skew* match the dataset presets
//! (see DESIGN.md) at a simulation-tractable node count. Two wiring models
//! are provided:
//!
//! * [`uniform`] — every node draws the same number of neighbors,
//!   uniformly at random (Erdős–Rényi-like in expectation).
//! * [`power_law`] — Chung-Lu style: nodes draw degrees from a truncated
//!   power law, matching the heavy-tailed neighborhoods of social and
//!   e-commerce graphs (and the Densification-law argument of §VII-F).

use simkit::SplitMix64;

use crate::csr::{CsrGraph, CsrGraphBuilder, NodeId};

/// Generates a graph where every node has exactly `degree` out-neighbors
/// drawn uniformly (self-loops excluded, duplicates allowed — like
/// sampled multigraph adjacency).
///
/// # Panics
///
/// Panics if `num_nodes < 2` while `degree > 0`.
///
/// # Examples
///
/// ```
/// use beacon_graph::generate::uniform;
/// let g = uniform(100, 8, 7);
/// assert_eq!(g.num_nodes(), 100);
/// assert_eq!(g.num_edges(), 800);
/// ```
pub fn uniform(num_nodes: usize, degree: usize, seed: u64) -> CsrGraph {
    if degree > 0 {
        assert!(num_nodes >= 2, "need at least two nodes to draw neighbors");
    }
    let mut rng = SplitMix64::new(seed);
    let mut b = CsrGraphBuilder::new(num_nodes);
    for u in 0..num_nodes as u32 {
        for _ in 0..degree {
            let v = draw_other(&mut rng, num_nodes as u64, u);
            b.add_edge(NodeId::new(u), NodeId::new(v as u32));
        }
    }
    b.build()
}

/// Parameters for the Chung-Lu power-law generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawConfig {
    /// Target number of nodes.
    pub num_nodes: usize,
    /// Target *average* out-degree.
    pub avg_degree: f64,
    /// Power-law exponent of the degree distribution (typically 2.0–3.0;
    /// smaller = heavier tail).
    pub exponent: f64,
    /// Cap on any single node's degree (keeps simulation-scale graphs from
    /// concentrating all edges on one hub).
    pub max_degree: usize,
}

impl PowerLawConfig {
    /// A reasonable default: exponent 2.3, max degree `16 × avg`.
    pub fn new(num_nodes: usize, avg_degree: f64) -> Self {
        PowerLawConfig {
            num_nodes,
            avg_degree,
            exponent: 2.3,
            max_degree: ((avg_degree * 16.0) as usize).max(4),
        }
    }
}

/// Generates a power-law graph per [`PowerLawConfig`].
///
/// Degrees are drawn from a truncated zeta-like distribution via inverse
/// transform sampling, then rescaled so the realized average matches
/// `avg_degree` within a few percent; wiring is Chung-Lu (endpoints chosen
/// proportional to degree weight).
///
/// # Panics
///
/// Panics if `num_nodes < 2` or `avg_degree <= 0`.
///
/// # Examples
///
/// ```
/// use beacon_graph::generate::{power_law, PowerLawConfig};
/// let g = power_law(&PowerLawConfig::new(5_000, 20.0), 11);
/// let avg = g.avg_degree();
/// assert!((avg - 20.0).abs() / 20.0 < 0.1, "avg degree {avg}");
/// ```
pub fn power_law(cfg: &PowerLawConfig, seed: u64) -> CsrGraph {
    assert!(cfg.num_nodes >= 2, "need at least two nodes");
    assert!(cfg.avg_degree > 0.0, "average degree must be positive");
    let mut rng = SplitMix64::new(seed);
    let n = cfg.num_nodes;

    // Draw raw degrees d_i ∝ pareto(exponent), truncated to [1, max_degree].
    let alpha = cfg.exponent - 1.0; // pareto shape for the CCDF
    let mut degrees: Vec<f64> = (0..n)
        .map(|_| {
            let u = rng.next_f64().max(1e-12);
            let d = u.powf(-1.0 / alpha); // pareto with x_min = 1
            d.min(cfg.max_degree as f64)
        })
        .collect();

    // Rescale so the mean matches avg_degree. Clamping to
    // [1, max_degree] shifts the mean, so iterate rescale-and-clamp to a
    // fixed point (converges in a handful of rounds).
    for _ in 0..12 {
        let mean: f64 = degrees.iter().sum::<f64>() / n as f64;
        let rel_err = (mean - cfg.avg_degree).abs() / cfg.avg_degree;
        if rel_err < 0.005 {
            break;
        }
        let scale = cfg.avg_degree / mean;
        for d in &mut degrees {
            *d = (*d * scale).clamp(1.0, cfg.max_degree as f64);
        }
    }

    // Integer degrees via stochastic rounding to preserve the mean.
    let int_degrees: Vec<usize> = degrees
        .iter()
        .map(|&d| {
            let floor = d.floor();
            let frac = d - floor;
            let up = rng.next_f64() < frac;
            (floor as usize + usize::from(up)).min(cfg.max_degree)
        })
        .collect();

    // Chung-Lu target sampling: alias-free cumulative-weight binary search.
    let mut cumulative: Vec<f64> = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &d in &degrees {
        acc += d;
        cumulative.push(acc);
    }
    let total = acc;

    let mut b = CsrGraphBuilder::new(n);
    for (u, &deg) in int_degrees.iter().enumerate() {
        for _ in 0..deg {
            let mut v;
            loop {
                let x = rng.next_f64() * total;
                v = match cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
                    Ok(i) | Err(i) => i.min(n - 1),
                };
                if v != u {
                    break;
                }
            }
            b.add_edge(NodeId::new(u as u32), NodeId::new(v as u32));
        }
    }
    b.build()
}

fn draw_other(rng: &mut SplitMix64, n: u64, exclude: u32) -> u64 {
    loop {
        let v = rng.next_bounded(n);
        if v != exclude as u64 {
            return v;
        }
    }
}

/// Parameters of the recursive-matrix (R-MAT) generator.
///
/// R-MAT recursively partitions the adjacency matrix into quadrants
/// with probabilities `(a, b, c, d)`; the classic Graph500 skew is
/// `(0.57, 0.19, 0.19, 0.05)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the node count (the graph has `2^scale` nodes).
    pub scale: u32,
    /// Target edges per node.
    pub edge_factor: usize,
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatConfig {
    /// Graph500-style parameters at the given scale.
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates an R-MAT graph (self-loops redrawn once, then dropped).
///
/// # Panics
///
/// Panics if `scale` is 0 or ≥ 31, or quadrant probabilities don't
/// leave a positive `d`.
///
/// # Examples
///
/// ```
/// use beacon_graph::generate::{rmat, RmatConfig};
/// let g = rmat(&RmatConfig::graph500(10, 8), 3);
/// assert_eq!(g.num_nodes(), 1024);
/// ```
pub fn rmat(cfg: &RmatConfig, seed: u64) -> CsrGraph {
    assert!(cfg.scale >= 1 && cfg.scale < 31, "scale out of range");
    let d = 1.0 - cfg.a - cfg.b - cfg.c;
    assert!(d > 0.0, "quadrant probabilities must sum below 1");
    let n = 1usize << cfg.scale;
    let mut rng = SplitMix64::new(seed);
    let mut b = CsrGraphBuilder::new(n);
    let edges = n * cfg.edge_factor;
    for _ in 0..edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..cfg.scale {
            let r = rng.next_f64();
            let (du, dv) = if r < cfg.a {
                (0, 0)
            } else if r < cfg.a + cfg.b {
                (0, 1)
            } else if r < cfg.a + cfg.b + cfg.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            v = draw_other(&mut rng, n as u64, u as u32) as usize;
        }
        b.add_edge(NodeId::new(u as u32), NodeId::new(v as u32));
    }
    b.build()
}

/// Generates a bipartite interaction graph (users × items, stored as
/// one node space with users first), movielens-style: each user rates
/// `ratings_per_user` items drawn with popularity skew, and edges are
/// stored in both directions.
///
/// # Panics
///
/// Panics if either side is empty while ratings are requested.
///
/// # Examples
///
/// ```
/// use beacon_graph::generate::bipartite;
/// let g = bipartite(100, 20, 5, 7);
/// assert_eq!(g.num_nodes(), 120);
/// assert_eq!(g.num_edges(), 2 * 100 * 5);
/// ```
pub fn bipartite(users: usize, items: usize, ratings_per_user: usize, seed: u64) -> CsrGraph {
    if ratings_per_user > 0 {
        assert!(users > 0 && items > 0, "both sides must be non-empty");
    }
    let mut rng = SplitMix64::new(seed);
    let mut b = CsrGraphBuilder::new(users + items);
    for u in 0..users {
        for _ in 0..ratings_per_user {
            // Popularity skew: square the uniform draw so low item
            // indices are hit far more often (hit-movie effect).
            let x = rng.next_f64();
            let item = ((x * x) * items as f64) as usize;
            let item = item.min(items - 1);
            b.add_undirected_edge(NodeId::new(u as u32), NodeId::new((users + item) as u32));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic() {
        let a = uniform(500, 4, 3);
        let b = uniform(500, 4, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_has_exact_degrees_no_self_loops() {
        let g = uniform(200, 5, 9);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
            assert!(!g.neighbors(v).contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn uniform_zero_degree() {
        let g = uniform(10, 0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn power_law_matches_target_mean() {
        let cfg = PowerLawConfig::new(20_000, 28.0);
        let g = power_law(&cfg, 5);
        let avg = g.avg_degree();
        assert!((avg - 28.0).abs() / 28.0 < 0.1, "avg={avg}");
    }

    #[test]
    fn power_law_is_skewed() {
        let cfg = PowerLawConfig::new(10_000, 10.0);
        let g = power_law(&cfg, 7);
        // A power-law graph's max degree should comfortably exceed the mean.
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
        // ...but respect the configured cap.
        assert!(g.max_degree() <= cfg.max_degree);
    }

    #[test]
    fn power_law_is_deterministic() {
        let cfg = PowerLawConfig::new(3_000, 12.0);
        assert_eq!(power_law(&cfg, 42), power_law(&cfg, 42));
    }

    #[test]
    fn power_law_every_node_has_a_neighbor() {
        let cfg = PowerLawConfig::new(2_000, 8.0);
        let g = power_law(&cfg, 13);
        for v in g.nodes() {
            assert!(g.degree(v) >= 1, "{v} has no neighbors");
        }
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(&RmatConfig::graph500(9, 8), 3);
        assert_eq!(g.num_nodes(), 512);
        assert_eq!(g.num_edges(), 512 * 8);
        // R-MAT with Graph500 skew is heavy-tailed: the max degree far
        // exceeds the mean.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
        for v in g.nodes() {
            assert!(!g.neighbors(v).contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn rmat_deterministic() {
        let cfg = RmatConfig::graph500(8, 4);
        assert_eq!(rmat(&cfg, 5), rmat(&cfg, 5));
        assert_ne!(rmat(&cfg, 5), rmat(&cfg, 6));
    }

    #[test]
    #[should_panic(expected = "scale out of range")]
    fn rmat_zero_scale_rejected() {
        rmat(&RmatConfig::graph500(0, 4), 1);
    }

    #[test]
    fn bipartite_edges_respect_sides() {
        let users = 50;
        let items = 10;
        let g = bipartite(users, items, 4, 9);
        for u in 0..users as u32 {
            for &nb in g.neighbors(NodeId::new(u)) {
                assert!(nb.index() >= users, "user {u} linked to a user");
            }
        }
        for i in users as u32..(users + items) as u32 {
            for &nb in g.neighbors(NodeId::new(i)) {
                assert!(nb.index() < users, "item {i} linked to an item");
            }
        }
    }

    #[test]
    fn bipartite_popularity_is_skewed() {
        let users = 2_000;
        let items = 100;
        let g = bipartite(users, items, 10, 4);
        let first_item = g.degree(NodeId::new(users as u32));
        let last_item = g.degree(NodeId::new((users + items - 1) as u32));
        assert!(
            first_item > 3 * last_item.max(1),
            "{first_item} vs {last_item}"
        );
    }

    #[test]
    fn power_law_no_self_loops() {
        let cfg = PowerLawConfig::new(1_000, 6.0);
        let g = power_law(&cfg, 17);
        for v in g.nodes() {
            assert!(!g.neighbors(v).contains(&v));
        }
    }
}
