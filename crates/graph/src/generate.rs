//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on scaled-up versions of real datasets that reach
//! hundreds of gigabytes. This reproduction substitutes synthetic graphs
//! whose *average degree* and *degree skew* match the dataset presets
//! (see DESIGN.md) at a simulation-tractable node count. Two wiring models
//! are provided:
//!
//! * [`uniform`] — every node draws the same number of neighbors,
//!   uniformly at random (Erdős–Rényi-like in expectation).
//! * [`power_law`] — Chung-Lu style: nodes draw degrees from a truncated
//!   power law, matching the heavy-tailed neighborhoods of social and
//!   e-commerce graphs (and the Densification-law argument of §VII-F).
//!
//! Every generator derives one RNG stream per node (or per edge) via
//! [`SplitMix64::for_stream`] instead of walking a single sequential
//! generator. That makes each node's draws a pure function of
//! `(seed, node)`, so node ranges can be generated on any number of
//! [`simkit::par`] worker threads — with fixed chunk boundaries — and
//! still produce byte-identical CSR output at every thread count.

use simkit::{par, SplitMix64};

use crate::csr::{CsrGraph, CsrGraphBuilder, NodeId};

/// Nodes per parallel work item. Fixed (never derived from the thread
/// count) so chunk boundaries — and therefore output — are identical at
/// any parallelism level.
const NODE_CHUNK: usize = 1024;

/// Edges per parallel work item for edge-stream generators (R-MAT).
const EDGE_CHUNK: usize = 8192;

// Distinct stream salts per generator stage: two stages must never read
// the same (seed, index) stream.
const SALT_UNIFORM: u64 = 0x5EED_0001;
const SALT_PL_DEGREE: u64 = 0x5EED_0002;
const SALT_PL_ROUND: u64 = 0x5EED_0003;
const SALT_PL_WIRE: u64 = 0x5EED_0004;
const SALT_RMAT: u64 = 0x5EED_0005;
const SALT_BIPARTITE: u64 = 0x5EED_0006;

/// Generates a graph where every node has exactly `degree` out-neighbors
/// drawn uniformly (self-loops excluded, duplicates allowed — like
/// sampled multigraph adjacency).
///
/// # Panics
///
/// Panics if `num_nodes < 2` while `degree > 0`.
///
/// # Examples
///
/// ```
/// use beacon_graph::generate::uniform;
/// let g = uniform(100, 8, 7);
/// assert_eq!(g.num_nodes(), 100);
/// assert_eq!(g.num_edges(), 800);
/// ```
pub fn uniform(num_nodes: usize, degree: usize, seed: u64) -> CsrGraph {
    if degree == 0 {
        return CsrGraphBuilder::new(num_nodes).build();
    }
    assert!(num_nodes >= 2, "need at least two nodes to draw neighbors");
    let mut adjacency = vec![NodeId::default(); num_nodes * degree];
    par::for_each_chunk_mut(&mut adjacency, NODE_CHUNK * degree, |start, chunk| {
        let first_node = start / degree;
        for (k, row) in chunk.chunks_mut(degree).enumerate() {
            let u = (first_node + k) as u32;
            let mut rng = SplitMix64::for_stream(seed, SALT_UNIFORM, u as u64);
            for slot in row {
                *slot = NodeId::new(draw_other(&mut rng, num_nodes as u64, u) as u32);
            }
        }
    });
    let offsets = (0..=num_nodes).map(|i| (i * degree) as u64).collect();
    CsrGraph::from_raw_parts(offsets, adjacency)
}

/// Parameters for the Chung-Lu power-law generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawConfig {
    /// Target number of nodes.
    pub num_nodes: usize,
    /// Target *average* out-degree.
    pub avg_degree: f64,
    /// Power-law exponent of the degree distribution (typically 2.0–3.0;
    /// smaller = heavier tail).
    pub exponent: f64,
    /// Cap on any single node's degree (keeps simulation-scale graphs from
    /// concentrating all edges on one hub).
    pub max_degree: usize,
}

impl PowerLawConfig {
    /// A reasonable default: exponent 2.3, max degree `16 × avg`.
    pub fn new(num_nodes: usize, avg_degree: f64) -> Self {
        PowerLawConfig {
            num_nodes,
            avg_degree,
            exponent: 2.3,
            max_degree: ((avg_degree * 16.0) as usize).max(4),
        }
    }
}

/// Generates a power-law graph per [`PowerLawConfig`].
///
/// Degrees are drawn from a truncated zeta-like distribution via inverse
/// transform sampling, then rescaled so the realized average matches
/// `avg_degree` within a few percent; wiring is Chung-Lu (endpoints chosen
/// proportional to degree weight).
///
/// # Panics
///
/// Panics if `num_nodes < 2` or `avg_degree <= 0`.
///
/// # Examples
///
/// ```
/// use beacon_graph::generate::{power_law, PowerLawConfig};
/// let g = power_law(&PowerLawConfig::new(5_000, 20.0), 11);
/// let avg = g.avg_degree();
/// assert!((avg - 20.0).abs() / 20.0 < 0.1, "avg degree {avg}");
/// ```
pub fn power_law(cfg: &PowerLawConfig, seed: u64) -> CsrGraph {
    assert!(cfg.num_nodes >= 2, "need at least two nodes");
    assert!(cfg.avg_degree > 0.0, "average degree must be positive");
    let n = cfg.num_nodes;
    let max_degree = cfg.max_degree as f64;

    // Draw raw degrees d_i ∝ pareto(exponent), one stream per node. The
    // draws are invariant across calibration — only the scale factor
    // moves — so they happen exactly once.
    let alpha = cfg.exponent - 1.0; // pareto shape for the CCDF
    let mut raw = vec![0f64; n];
    par::for_each_chunk_mut(&mut raw, NODE_CHUNK, |start, chunk| {
        for (k, d) in chunk.iter_mut().enumerate() {
            let mut rng = SplitMix64::for_stream(seed, SALT_PL_DEGREE, (start + k) as u64);
            let u = rng.next_f64().max(1e-12);
            *d = u.powf(-1.0 / alpha).min(max_degree); // pareto with x_min = 1
        }
    });

    // Calibrate a single scale factor so the clamped mean matches
    // avg_degree. Clamping to [1, max_degree] shifts the mean, so
    // iterate to a fixed point (a handful of rounds); the raw draws are
    // read-only and the reduction order is fixed, so the result is
    // schedule-independent.
    let mut scale = 1.0f64;
    for _ in 0..12 {
        let mean = raw
            .iter()
            .map(|&d| (d * scale).clamp(1.0, max_degree))
            .sum::<f64>()
            / n as f64;
        let rel_err = (mean - cfg.avg_degree).abs() / cfg.avg_degree;
        if rel_err < 0.005 {
            break;
        }
        scale *= cfg.avg_degree / mean;
    }

    // Integer degrees via stochastic rounding (per-node streams) to
    // preserve the mean; keep the real-valued degrees as Chung-Lu
    // weights.
    let mut degrees = vec![0f64; n];
    let mut int_degrees = vec![0usize; n];
    {
        let raw = &raw;
        let jobs: Vec<_> = degrees
            .chunks_mut(NODE_CHUNK)
            .zip(int_degrees.chunks_mut(NODE_CHUNK))
            .enumerate()
            .map(|(c, (dchunk, ichunk))| {
                move || {
                    let start = c * NODE_CHUNK;
                    for (k, (d, di)) in dchunk.iter_mut().zip(ichunk.iter_mut()).enumerate() {
                        let i = start + k;
                        *d = (raw[i] * scale).clamp(1.0, max_degree);
                        let floor = d.floor();
                        let frac = *d - floor;
                        let mut rng = SplitMix64::for_stream(seed, SALT_PL_ROUND, i as u64);
                        let up = rng.next_f64() < frac;
                        *di = (floor as usize + usize::from(up)).min(cfg.max_degree);
                    }
                }
            })
            .collect();
        par::run_jobs(jobs);
    }
    drop(raw);

    // Chung-Lu target sampling: alias-free cumulative-weight binary
    // search. Prefix sums are sequential (order-fixed f64 accumulation).
    let mut cumulative: Vec<f64> = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &d in &degrees {
        acc += d;
        cumulative.push(acc);
    }
    let total = acc;

    let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
    offsets.push(0);
    for &d in &int_degrees {
        offsets.push(offsets.last().unwrap() + d as u64);
    }

    // Wire edges: one stream per source node, adjacency carved into
    // per-chunk slices at offset boundaries so workers write disjoint
    // regions of the final array.
    let mut adjacency = vec![NodeId::default(); *offsets.last().unwrap() as usize];
    {
        let offsets = &offsets;
        let int_degrees = &int_degrees;
        let cumulative = &cumulative;
        let mut rest = adjacency.as_mut_slice();
        let mut jobs = Vec::with_capacity(n.div_ceil(NODE_CHUNK));
        for start in (0..n).step_by(NODE_CHUNK) {
            let end = (start + NODE_CHUNK).min(n);
            let len = (offsets[end] - offsets[start]) as usize;
            let (slice, tail) = rest.split_at_mut(len);
            rest = tail;
            jobs.push(move || {
                let mut pos = 0usize;
                for (u, &node_degree) in int_degrees.iter().enumerate().take(end).skip(start) {
                    let mut rng = SplitMix64::for_stream(seed, SALT_PL_WIRE, u as u64);
                    for _ in 0..node_degree {
                        let mut v;
                        loop {
                            let x = rng.next_f64() * total;
                            v = match cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
                                Ok(i) | Err(i) => i.min(n - 1),
                            };
                            if v != u {
                                break;
                            }
                        }
                        slice[pos] = NodeId::new(v as u32);
                        pos += 1;
                    }
                }
            });
        }
        par::run_jobs(jobs);
    }
    CsrGraph::from_raw_parts(offsets, adjacency)
}

fn draw_other(rng: &mut SplitMix64, n: u64, exclude: u32) -> u64 {
    loop {
        let v = rng.next_bounded(n);
        if v != exclude as u64 {
            return v;
        }
    }
}

/// Stable counting sort of directed edge pairs into CSR form: adjacency
/// entries of each source keep their pair-array order, matching what a
/// sequential append-per-node builder would produce.
fn csr_from_pairs(num_nodes: usize, pairs: &[(u32, u32)]) -> CsrGraph {
    let mut counts = vec![0u64; num_nodes + 1];
    for &(u, _) in pairs {
        counts[u as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut adjacency = vec![NodeId::default(); pairs.len()];
    for &(u, v) in pairs {
        let at = &mut cursor[u as usize];
        adjacency[*at as usize] = NodeId::new(v);
        *at += 1;
    }
    CsrGraph::from_raw_parts(offsets, adjacency)
}

/// Parameters of the recursive-matrix (R-MAT) generator.
///
/// R-MAT recursively partitions the adjacency matrix into quadrants
/// with probabilities `(a, b, c, d)`; the classic Graph500 skew is
/// `(0.57, 0.19, 0.19, 0.05)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the node count (the graph has `2^scale` nodes).
    pub scale: u32,
    /// Target edges per node.
    pub edge_factor: usize,
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatConfig {
    /// Graph500-style parameters at the given scale.
    pub fn graph500(scale: u32, edge_factor: usize) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates an R-MAT graph (self-loops redrawn once, then dropped).
///
/// # Panics
///
/// Panics if `scale` is 0 or ≥ 31, or quadrant probabilities don't
/// leave a positive `d`.
///
/// # Examples
///
/// ```
/// use beacon_graph::generate::{rmat, RmatConfig};
/// let g = rmat(&RmatConfig::graph500(10, 8), 3);
/// assert_eq!(g.num_nodes(), 1024);
/// ```
pub fn rmat(cfg: &RmatConfig, seed: u64) -> CsrGraph {
    assert!(cfg.scale >= 1 && cfg.scale < 31, "scale out of range");
    let d = 1.0 - cfg.a - cfg.b - cfg.c;
    assert!(d > 0.0, "quadrant probabilities must sum below 1");
    let n = 1usize << cfg.scale;
    let edges = n * cfg.edge_factor;
    let mut pairs = vec![(0u32, 0u32); edges];
    par::for_each_chunk_mut(&mut pairs, EDGE_CHUNK, |start, chunk| {
        for (k, pair) in chunk.iter_mut().enumerate() {
            let mut rng = SplitMix64::for_stream(seed, SALT_RMAT, (start + k) as u64);
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..cfg.scale {
                let r = rng.next_f64();
                let (du, dv) = if r < cfg.a {
                    (0, 0)
                } else if r < cfg.a + cfg.b {
                    (0, 1)
                } else if r < cfg.a + cfg.b + cfg.c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            if u == v {
                v = draw_other(&mut rng, n as u64, u as u32) as usize;
            }
            *pair = (u as u32, v as u32);
        }
    });
    csr_from_pairs(n, &pairs)
}

/// Generates a bipartite interaction graph (users × items, stored as
/// one node space with users first), movielens-style: each user rates
/// `ratings_per_user` items drawn with popularity skew, and edges are
/// stored in both directions.
///
/// # Panics
///
/// Panics if either side is empty while ratings are requested.
///
/// # Examples
///
/// ```
/// use beacon_graph::generate::bipartite;
/// let g = bipartite(100, 20, 5, 7);
/// assert_eq!(g.num_nodes(), 120);
/// assert_eq!(g.num_edges(), 2 * 100 * 5);
/// ```
pub fn bipartite(users: usize, items: usize, ratings_per_user: usize, seed: u64) -> CsrGraph {
    if ratings_per_user == 0 {
        return CsrGraphBuilder::new(users + items).build();
    }
    assert!(users > 0 && items > 0, "both sides must be non-empty");
    let mut pairs = vec![(0u32, 0u32); 2 * users * ratings_per_user];
    par::for_each_chunk_mut(
        &mut pairs,
        NODE_CHUNK * 2 * ratings_per_user,
        |start, chunk| {
            let first_user = start / (2 * ratings_per_user);
            for (k, user_pairs) in chunk.chunks_mut(2 * ratings_per_user).enumerate() {
                let u = (first_user + k) as u32;
                let mut rng = SplitMix64::for_stream(seed, SALT_BIPARTITE, u as u64);
                for both in user_pairs.chunks_mut(2) {
                    // Popularity skew: square the uniform draw so low item
                    // indices are hit far more often (hit-movie effect).
                    let x = rng.next_f64();
                    let item = ((x * x) * items as f64) as usize;
                    let item = (users + item.min(items - 1)) as u32;
                    both[0] = (u, item);
                    both[1] = (item, u);
                }
            }
        },
    );
    csr_from_pairs(users + items, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic() {
        let a = uniform(500, 4, 3);
        let b = uniform(500, 4, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_has_exact_degrees_no_self_loops() {
        let g = uniform(200, 5, 9);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
            assert!(!g.neighbors(v).contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn uniform_zero_degree() {
        let g = uniform(10, 0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn power_law_matches_target_mean() {
        let cfg = PowerLawConfig::new(20_000, 28.0);
        let g = power_law(&cfg, 5);
        let avg = g.avg_degree();
        assert!((avg - 28.0).abs() / 28.0 < 0.1, "avg={avg}");
    }

    #[test]
    fn power_law_is_skewed() {
        let cfg = PowerLawConfig::new(10_000, 10.0);
        let g = power_law(&cfg, 7);
        // A power-law graph's max degree should comfortably exceed the mean.
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
        // ...but respect the configured cap.
        assert!(g.max_degree() <= cfg.max_degree);
    }

    #[test]
    fn power_law_is_deterministic() {
        let cfg = PowerLawConfig::new(3_000, 12.0);
        assert_eq!(power_law(&cfg, 42), power_law(&cfg, 42));
    }

    #[test]
    fn power_law_every_node_has_a_neighbor() {
        let cfg = PowerLawConfig::new(2_000, 8.0);
        let g = power_law(&cfg, 13);
        for v in g.nodes() {
            assert!(g.degree(v) >= 1, "{v} has no neighbors");
        }
    }

    /// Regression pin for the calibrate-once degree pipeline: the exact
    /// degree sequence for a fixed (config, seed) pair, summarized as an
    /// FNV-1a hash plus spot values. Any change to the draw streams, the
    /// scalar calibration, or the stochastic rounding shows up here.
    #[test]
    fn power_law_degree_sequence_pinned() {
        let cfg = PowerLawConfig::new(4_000, 16.0);
        let g = power_law(&cfg, 99);
        let mut h = 0xcbf29ce484222325u64;
        for v in g.nodes() {
            for b in (g.degree(v) as u32).to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        let spot: Vec<usize> = [0usize, 1, 777, 1999, 3999]
            .iter()
            .map(|&i| g.degree(NodeId::new(i as u32)))
            .collect();
        assert_eq!(
            (h, spot),
            (8526064610743682520, vec![10, 21, 5, 62, 11]),
            "degree sequence drifted for fixed seed"
        );
    }

    #[test]
    fn generators_are_thread_count_invariant() {
        let reference = {
            par::set_build_threads(1);
            (
                uniform(2_000, 6, 11),
                power_law(&PowerLawConfig::new(3_000, 14.0), 11),
                rmat(&RmatConfig::graph500(10, 6), 11),
                bipartite(800, 60, 7, 11),
            )
        };
        for threads in [2, 8] {
            par::set_build_threads(threads);
            assert_eq!(uniform(2_000, 6, 11), reference.0, "uniform@{threads}");
            assert_eq!(
                power_law(&PowerLawConfig::new(3_000, 14.0), 11),
                reference.1,
                "power_law@{threads}"
            );
            assert_eq!(
                rmat(&RmatConfig::graph500(10, 6), 11),
                reference.2,
                "rmat@{threads}"
            );
            assert_eq!(
                bipartite(800, 60, 7, 11),
                reference.3,
                "bipartite@{threads}"
            );
        }
        par::set_build_threads(1);
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(&RmatConfig::graph500(9, 8), 3);
        assert_eq!(g.num_nodes(), 512);
        assert_eq!(g.num_edges(), 512 * 8);
        // R-MAT with Graph500 skew is heavy-tailed: the max degree far
        // exceeds the mean.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
        for v in g.nodes() {
            assert!(!g.neighbors(v).contains(&v), "self loop at {v}");
        }
    }

    #[test]
    fn rmat_deterministic() {
        let cfg = RmatConfig::graph500(8, 4);
        assert_eq!(rmat(&cfg, 5), rmat(&cfg, 5));
        assert_ne!(rmat(&cfg, 5), rmat(&cfg, 6));
    }

    #[test]
    #[should_panic(expected = "scale out of range")]
    fn rmat_zero_scale_rejected() {
        rmat(&RmatConfig::graph500(0, 4), 1);
    }

    #[test]
    fn bipartite_edges_respect_sides() {
        let users = 50;
        let items = 10;
        let g = bipartite(users, items, 4, 9);
        for u in 0..users as u32 {
            for &nb in g.neighbors(NodeId::new(u)) {
                assert!(nb.index() >= users, "user {u} linked to a user");
            }
        }
        for i in users as u32..(users + items) as u32 {
            for &nb in g.neighbors(NodeId::new(i)) {
                assert!(nb.index() < users, "item {i} linked to an item");
            }
        }
    }

    #[test]
    fn bipartite_popularity_is_skewed() {
        let users = 2_000;
        let items = 100;
        let g = bipartite(users, items, 10, 4);
        let first_item = g.degree(NodeId::new(users as u32));
        let last_item = g.degree(NodeId::new((users + items - 1) as u32));
        assert!(
            first_item > 3 * last_item.max(1),
            "{first_item} vs {last_item}"
        );
    }

    #[test]
    fn power_law_no_self_loops() {
        let cfg = PowerLawConfig::new(1_000, 6.0);
        let g = power_law(&cfg, 17);
        for v in g.nodes() {
            assert!(!g.neighbors(v).contains(&v));
        }
    }
}
