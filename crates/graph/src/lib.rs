//! # beacon-graph — graph substrate for the BeaconGNN reproduction
//!
//! Provides everything the paper's data-preparation stage consumes:
//!
//! * [`CsrGraph`] — compressed-sparse-row adjacency, the canonical
//!   in-memory graph representation (§II-A of the paper).
//! * [`generate`] — deterministic synthetic graph generators (uniform and
//!   Chung-Lu power-law), used to stand in for the paper's scaled-up
//!   PyTorch-Geometric datasets (see DESIGN.md, substitutions).
//! * [`DatasetSpec`] — presets for the five evaluation workloads of the
//!   paper's Table III (reddit, amazon, movielens, OGBN, PPI) carrying
//!   average degree, feature dimensionality and the paper-reported raw
//!   sizes used in the Table IV inflation experiment.
//! * [`FeatureTable`] — fixed-dimension FP16-sized node feature vectors
//!   with deterministic synthetic content.
//! * [`minibatch`] — mini-batch target-node streams.
//!
//! ## Example
//!
//! ```
//! use beacon_graph::{Dataset, DatasetSpec};
//!
//! let spec = DatasetSpec::preset(Dataset::Amazon).at_scale(10_000);
//! let graph = spec.build_graph(42);
//! assert_eq!(graph.num_nodes(), 10_000);
//! assert!(graph.avg_degree() > 1.0);
//! ```

pub mod csr;
pub mod datasets;
pub mod features;
pub mod generate;
pub mod io;
pub mod minibatch;
pub mod partition;

pub use csr::{CsrGraph, CsrGraphBuilder, NodeId};
pub use datasets::{Dataset, DatasetSpec};
pub use features::FeatureTable;
pub use minibatch::MinibatchStream;
pub use partition::Partition;
