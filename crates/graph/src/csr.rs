//! Compressed-sparse-row graph representation.

use std::fmt;

/// Identifier of a graph node.
///
/// The paper represents node indices as INT-32 scalars; we mirror that
/// with a `u32` newtype so node ids cannot be confused with page or
/// section indices elsewhere in the workspace.
///
/// # Examples
///
/// ```
/// use beacon_graph::NodeId;
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its integer index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw integer index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An immutable directed graph in compressed-sparse-row form.
///
/// Neighbor lists are the unit of GNN sampling (§II-A): `neighbors(v)`
/// returns `N(v)` in index order. Undirected graphs are stored with both
/// edge directions.
///
/// # Examples
///
/// ```
/// use beacon_graph::{CsrGraphBuilder, NodeId};
///
/// let mut b = CsrGraphBuilder::new(3);
/// b.add_edge(NodeId::new(0), NodeId::new(1));
/// b.add_edge(NodeId::new(0), NodeId::new(2));
/// let g = b.build();
/// assert_eq!(g.degree(NodeId::new(0)), 2);
/// assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(1), NodeId::new(2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    adjacency: Vec<NodeId>,
}

impl CsrGraph {
    /// Assembles a graph directly from CSR arrays, validating the
    /// invariants [`CsrGraphBuilder::build`] guarantees. This is the
    /// fast path for generators and deserializers that compute offsets
    /// up front and fill adjacency ranges independently (possibly in
    /// parallel) instead of growing per-node vectors.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty, does not start at 0, is not
    /// monotone, or does not end at `adjacency.len()`, or if any
    /// adjacency entry is out of node range.
    pub fn from_raw_parts(offsets: Vec<u64>, adjacency: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            *offsets.last().unwrap(),
            adjacency.len() as u64,
            "offsets must end at adjacency length"
        );
        let n = offsets.len() - 1;
        assert!(
            adjacency.iter().all(|v| v.index() < n),
            "adjacency entry out of node range"
        );
        CsrGraph { offsets, adjacency }
    }

    /// The CSR offset array (`num_nodes + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The flat adjacency array, concatenated in node order.
    #[inline]
    pub fn adjacency(&self) -> &[NodeId] {
        &self.adjacency
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (adjacency entries).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjacency.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The neighbor list `N(v)`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.adjacency[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The `k`-th neighbor of `v`, or `None` when out of range.
    #[inline]
    pub fn neighbor(&self, v: NodeId, k: usize) -> Option<NodeId> {
        self.neighbors(v).get(k).copied()
    }

    /// Mean out-degree over all nodes.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / self.num_nodes() as f64
    }

    /// Maximum out-degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|i| self.degree(NodeId::new(i as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId::new)
    }

    /// Returns `true` if `v` is a valid node id of this graph.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.num_nodes()
    }

    /// Returns `true` if edge `(u, v)` exists (linear scan of `N(u)`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).contains(&v)
    }
}

/// Incremental builder for [`CsrGraph`].
#[derive(Debug, Clone, Default)]
pub struct CsrGraphBuilder {
    adj: Vec<Vec<NodeId>>,
}

impl CsrGraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> Self {
        CsrGraphBuilder {
            adj: vec![Vec::new(); num_nodes],
        }
    }

    /// Adds the directed edge `(from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        assert!(to.index() < self.adj.len(), "edge target out of range");
        self.adj[from.index()].push(to);
        self
    }

    /// Adds both directions of an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_undirected_edge(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        self.add_edge(a, b);
        self.add_edge(b, a);
        self
    }

    /// Number of nodes the builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Finalizes into an immutable CSR graph.
    pub fn build(&self) -> CsrGraph {
        let mut offsets = Vec::with_capacity(self.adj.len() + 1);
        let mut adjacency = Vec::with_capacity(self.adj.iter().map(Vec::len).sum());
        offsets.push(0u64);
        for list in &self.adj {
            adjacency.extend_from_slice(list);
            offsets.push(adjacency.len() as u64);
        }
        CsrGraph { offsets, adjacency }
    }
}

impl FromIterator<(NodeId, NodeId)> for CsrGraphBuilder {
    /// Builds a builder sized to the largest endpoint seen.
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId)>>(iter: I) -> Self {
        let edges: Vec<(NodeId, NodeId)> = iter.into_iter().collect();
        let n = edges
            .iter()
            .map(|&(a, b)| a.index().max(b.index()) + 1)
            .max()
            .unwrap_or(0);
        let mut b = CsrGraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> {1,2}, 1 -> {3}, 2 -> {3}, 3 -> {}
        let mut b = CsrGraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1))
            .add_edge(NodeId::new(0), NodeId::new(2))
            .add_edge(NodeId::new(1), NodeId::new(3))
            .add_edge(NodeId::new(2), NodeId::new(3));
        b.build()
    }

    #[test]
    fn builds_expected_csr() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(3)), 0);
        assert_eq!(g.neighbors(NodeId::new(1)), &[NodeId::new(3)]);
        assert_eq!(g.neighbor(NodeId::new(0), 1), Some(NodeId::new(2)));
        assert_eq!(g.neighbor(NodeId::new(0), 2), None);
    }

    #[test]
    fn degree_statistics() {
        let g = diamond();
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn membership_and_edges() {
        let g = diamond();
        assert!(g.contains(NodeId::new(3)));
        assert!(!g.contains(NodeId::new(4)));
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g.has_edge(NodeId::new(2), NodeId::new(0)));
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = CsrGraphBuilder::new(2);
        b.add_undirected_edge(NodeId::new(0), NodeId::new(1));
        let g = b.build();
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn from_iterator_sizes_to_max_endpoint() {
        let b: CsrGraphBuilder = [(NodeId::new(0), NodeId::new(5))].into_iter().collect();
        let g = b.build();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CsrGraphBuilder::new(1).add_edge(NodeId::new(0), NodeId::new(9));
    }

    #[test]
    fn raw_parts_roundtrip_matches_builder() {
        let g = diamond();
        let rebuilt = CsrGraph::from_raw_parts(g.offsets().to_vec(), g.adjacency().to_vec());
        assert_eq!(rebuilt, g);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn raw_parts_rejects_decreasing_offsets() {
        CsrGraph::from_raw_parts(vec![0, 2, 1], vec![NodeId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "adjacency entry out of node range")]
    fn raw_parts_rejects_out_of_range_target() {
        CsrGraph::from_raw_parts(vec![0, 1], vec![NodeId::new(5)]);
    }
}
