//! The in-memory DirectGraph page store and the section parser.
//!
//! [`PageStore`] stands in for the region of the flash array that the
//! firmware reserves for DirectGraph (§VI-A): a map from page index to
//! page bytes. The [`PageStore::parse_section`] walk reproduces the
//! die-level sampler's *section iterator* (§V-A): starting at byte 0, it
//! reads each section header and skips `length` bytes until it reaches
//! the requested slot; a zero kind byte means the slot does not exist.

use std::fmt;

use beacon_graph::NodeId;

use crate::addr::{AddrLayout, PageIndex, PhysAddr};
use crate::layout::{SectionKind, HEADER_BYTES, PRIMARY_FIXED_BYTES, SECONDARY_FIXED_BYTES};

/// A parsed DirectGraph section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Section {
    /// A node's primary section.
    Primary(PrimarySection),
    /// An overflow neighbor-list section.
    Secondary(SecondarySection),
}

impl Section {
    /// The owning node.
    pub fn node(&self) -> NodeId {
        match self {
            Section::Primary(p) => p.node,
            Section::Secondary(s) => s.node,
        }
    }

    /// The section kind.
    pub fn kind(&self) -> SectionKind {
        match self {
            Section::Primary(_) => SectionKind::Primary,
            Section::Secondary(_) => SectionKind::Secondary,
        }
    }

    /// Returns the primary view, or `None` for a secondary section.
    pub fn as_primary(&self) -> Option<&PrimarySection> {
        match self {
            Section::Primary(p) => Some(p),
            Section::Secondary(_) => None,
        }
    }

    /// Returns the secondary view, or `None` for a primary section.
    pub fn as_secondary(&self) -> Option<&SecondarySection> {
        match self {
            Section::Secondary(s) => Some(s),
            Section::Primary(_) => None,
        }
    }
}

/// A parsed primary section (metadata, feature, inline neighbors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimarySection {
    /// The owning node.
    pub node: NodeId,
    /// The node's total neighbor count across inline + secondary storage.
    pub total_neighbors: u32,
    /// Addresses of the node's secondary sections, in neighbor order.
    pub secondary_addrs: Vec<PhysAddr>,
    /// The node's feature vector bytes (FP-16 encoded).
    pub feature: Vec<u8>,
    /// Primary-section addresses of neighbors `[0, inline_count)`.
    pub inline_neighbors: Vec<PhysAddr>,
}

impl PrimarySection {
    /// Number of neighbors stored inline in this section.
    pub fn inline_count(&self) -> usize {
        self.inline_neighbors.len()
    }

    /// Number of neighbors stored in secondary sections.
    pub fn overflow_count(&self) -> usize {
        self.total_neighbors as usize - self.inline_count()
    }
}

/// A parsed secondary section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecondarySection {
    /// The owning node.
    pub node: NodeId,
    /// Index (into the owner's neighbor list) of this section's first
    /// neighbor.
    pub owner_start: u32,
    /// Primary-section addresses of the neighbors in this section.
    pub neighbors: Vec<PhysAddr>,
}

/// A zero-copy view of a parsed section: fixed fields are decoded, the
/// variable-length arrays stay as borrowed in-page byte ranges with
/// on-demand indexed decoding. This is the sampler hot path's parse —
/// [`PageStore::parse_section`] materializes the same data into owned
/// vectors (three allocations plus a feature copy per call), which the
/// per-command sampling loop cannot afford.
#[derive(Debug, Clone, Copy)]
pub enum SectionView<'a> {
    /// A node's primary section.
    Primary(PrimaryView<'a>),
    /// An overflow neighbor-list section.
    Secondary(SecondaryView<'a>),
}

/// Borrowed view of a primary section (see [`SectionView`]).
#[derive(Debug, Clone, Copy)]
pub struct PrimaryView<'a> {
    /// The owning node.
    pub node: NodeId,
    /// The node's total neighbor count across inline + secondary storage.
    pub total_neighbors: u32,
    /// Length of the feature vector in bytes.
    pub feature_bytes: usize,
    secondary: &'a [u8],
    inline: &'a [u8],
}

impl PrimaryView<'_> {
    /// Number of secondary sections.
    pub fn num_secondary(&self) -> usize {
        self.secondary.len() / 4
    }

    /// Address of secondary section `j`, in neighbor order.
    pub fn secondary_addr(&self, j: usize) -> PhysAddr {
        addr_at(self.secondary, j)
    }

    /// Number of neighbors stored inline in this section.
    pub fn inline_count(&self) -> usize {
        self.inline.len() / 4
    }

    /// Primary-section address of inline neighbor `i`.
    pub fn inline_neighbor(&self, i: usize) -> PhysAddr {
        addr_at(self.inline, i)
    }
}

/// Borrowed view of a secondary section (see [`SectionView`]).
#[derive(Debug, Clone, Copy)]
pub struct SecondaryView<'a> {
    /// The owning node.
    pub node: NodeId,
    /// Index (into the owner's neighbor list) of this section's first
    /// neighbor.
    pub owner_start: u32,
    neighbors: &'a [u8],
}

impl SecondaryView<'_> {
    /// Number of neighbors in this section.
    pub fn num_neighbors(&self) -> usize {
        self.neighbors.len() / 4
    }

    /// Primary-section address of neighbor `i`.
    pub fn neighbor(&self, i: usize) -> PhysAddr {
        addr_at(self.neighbors, i)
    }
}

#[inline]
fn addr_at(bytes: &[u8], i: usize) -> PhysAddr {
    let o = i * 4;
    PhysAddr::from_raw(u32::from_le_bytes([
        bytes[o],
        bytes[o + 1],
        bytes[o + 2],
        bytes[o + 3],
    ]))
}

/// Why a section failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionParseError {
    /// The addressed page was never written.
    PageMissing(PageIndex),
    /// The page has fewer sections than the requested slot.
    SlotNotFound { page: PageIndex, slot: usize },
    /// A section header carries an unknown kind byte.
    BadKind {
        page: PageIndex,
        offset: usize,
        kind: u8,
    },
    /// A section's declared length runs past the page end.
    Truncated { page: PageIndex, offset: usize },
}

impl fmt::Display for SectionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionParseError::PageMissing(p) => write!(f, "page {p} was never written"),
            SectionParseError::SlotNotFound { page, slot } => {
                write!(f, "page {page} has no section slot {slot}")
            }
            SectionParseError::BadKind { page, offset, kind } => {
                write!(
                    f,
                    "page {page} offset {offset}: unknown section kind {kind}"
                )
            }
            SectionParseError::Truncated { page, offset } => {
                write!(f, "page {page} offset {offset}: section overruns page")
            }
        }
    }
}

impl std::error::Error for SectionParseError {}

/// An in-memory store of DirectGraph flash pages.
///
/// # Examples
///
/// ```
/// use directgraph::{AddrLayout, PageStore, PageIndex};
/// use directgraph::layout::PageEncoder;
///
/// let layout = AddrLayout::for_page_size(4096).unwrap();
/// let mut store = PageStore::new(layout);
/// let mut enc = PageEncoder::new(4096);
/// enc.push_secondary(3, 0, &[]);
/// store.write_page(PageIndex::new(0), enc.finish());
/// let addr = layout.pack(PageIndex::new(0), 0);
/// let s = store.parse_section(addr).unwrap();
/// assert_eq!(s.node().index(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PageStore {
    layout: AddrLayout,
    pages: Vec<Option<Box<[u8]>>>,
    written: usize,
}

impl PageStore {
    /// Creates an empty store for pages of `layout.page_size()` bytes.
    pub fn new(layout: AddrLayout) -> Self {
        PageStore {
            layout,
            pages: Vec::new(),
            written: 0,
        }
    }

    /// The address layout the store interprets addresses with.
    pub fn layout(&self) -> AddrLayout {
        self.layout
    }

    /// Writes (or overwrites) a page.
    ///
    /// # Panics
    ///
    /// Panics if `page.len()` differs from the layout's page size.
    pub fn write_page(&mut self, index: PageIndex, page: Box<[u8]>) {
        assert_eq!(page.len(), self.layout.page_size(), "page size mismatch");
        let i = index.as_usize();
        if self.pages.len() <= i {
            self.pages.resize(i + 1, None);
        }
        if self.pages[i].is_none() {
            self.written += 1;
        }
        self.pages[i] = Some(page);
    }

    /// Reads a page's bytes, or `None` if never written.
    pub fn read_page(&self, index: PageIndex) -> Option<&[u8]> {
        self.pages.get(index.as_usize()).and_then(|p| p.as_deref())
    }

    /// Number of pages written.
    pub fn pages_written(&self) -> usize {
        self.written
    }

    /// Total stored bytes (pages × page size).
    pub fn stored_bytes(&self) -> u64 {
        self.written as u64 * self.layout.page_size() as u64
    }

    /// Returns `true` if `index` holds a written page.
    pub fn contains_page(&self, index: PageIndex) -> bool {
        self.read_page(index).is_some()
    }

    /// Iterates over `(index, bytes)` of written pages.
    pub fn iter_pages(&self) -> impl Iterator<Item = (PageIndex, &[u8])> + '_ {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_deref().map(|b| (PageIndex::new(i as u64), b)))
    }

    /// Parses the section at `addr`, walking the page's section sequence
    /// exactly as the die-level section iterator does.
    ///
    /// # Errors
    ///
    /// Returns a [`SectionParseError`] if the page is missing, the slot
    /// does not exist, or the page bytes are malformed.
    pub fn parse_section(&self, addr: PhysAddr) -> Result<Section, SectionParseError> {
        let (page, offset, len, kind, page_idx) = self.locate(addr)?;
        parse_at(page, offset, len, kind, page_idx)
    }

    /// Like [`parse_section`](PageStore::parse_section), but returns a
    /// zero-copy [`SectionView`] borrowing the page bytes instead of
    /// materializing owned vectors — the allocation-free parse the
    /// per-command sampler loop runs on. Bounds checks and error cases
    /// are identical to the owned parse.
    ///
    /// # Errors
    ///
    /// Same conditions as [`parse_section`](PageStore::parse_section).
    pub fn parse_section_view(&self, addr: PhysAddr) -> Result<SectionView<'_>, SectionParseError> {
        let (page, offset, len, kind, page_idx) = self.locate(addr)?;
        view_at(page, offset, len, kind, page_idx)
    }

    /// The shared slot walk: resolves `addr` to its section's page
    /// bytes, byte offset, declared length and kind.
    fn locate(
        &self,
        addr: PhysAddr,
    ) -> Result<(&[u8], usize, usize, SectionKind, PageIndex), SectionParseError> {
        let (page_idx, slot) = self.layout.unpack(addr);
        let page = self
            .read_page(page_idx)
            .ok_or(SectionParseError::PageMissing(page_idx))?;
        let mut offset = 0usize;
        for cur_slot in 0.. {
            if offset + HEADER_BYTES > page.len() || page[offset] == 0 {
                return Err(SectionParseError::SlotNotFound {
                    page: page_idx,
                    slot,
                });
            }
            let kind = SectionKind::from_byte(page[offset]).ok_or(SectionParseError::BadKind {
                page: page_idx,
                offset,
                kind: page[offset],
            })?;
            let len = u16::from_le_bytes([page[offset + 2], page[offset + 3]]) as usize;
            if len < HEADER_BYTES || offset + len > page.len() {
                return Err(SectionParseError::Truncated {
                    page: page_idx,
                    offset,
                });
            }
            if cur_slot == slot {
                return Ok((page, offset, len, kind, page_idx));
            }
            offset += len;
        }
        unreachable!("loop exits via return")
    }

    /// Parses *all* sections of a page, in slot order. Used by firmware
    /// scrubbing and by tests.
    ///
    /// # Errors
    ///
    /// Returns the first parse error encountered.
    pub fn parse_all_sections(
        &self,
        page_idx: PageIndex,
    ) -> Result<Vec<Section>, SectionParseError> {
        let page = self
            .read_page(page_idx)
            .ok_or(SectionParseError::PageMissing(page_idx))?;
        let mut out = Vec::new();
        let mut offset = 0usize;
        while offset + HEADER_BYTES <= page.len() && page[offset] != 0 {
            let kind = SectionKind::from_byte(page[offset]).ok_or(SectionParseError::BadKind {
                page: page_idx,
                offset,
                kind: page[offset],
            })?;
            let len = u16::from_le_bytes([page[offset + 2], page[offset + 3]]) as usize;
            if len < HEADER_BYTES || offset + len > page.len() {
                return Err(SectionParseError::Truncated {
                    page: page_idx,
                    offset,
                });
            }
            out.push(parse_at(page, offset, len, kind, page_idx)?);
            offset += len;
        }
        Ok(out)
    }
}

fn parse_at(
    page: &[u8],
    offset: usize,
    len: usize,
    kind: SectionKind,
    page_idx: PageIndex,
) -> Result<Section, SectionParseError> {
    let sec = &page[offset..offset + len];
    let node = NodeId::new(u32::from_le_bytes([sec[4], sec[5], sec[6], sec[7]]));
    let neighbor_count = u32::from_le_bytes([sec[8], sec[9], sec[10], sec[11]]);
    match kind {
        SectionKind::Primary => {
            let feature_bytes = u16::from_le_bytes([sec[12], sec[13]]) as usize;
            let num_secondary = u16::from_le_bytes([sec[14], sec[15]]) as usize;
            let mut pos = HEADER_BYTES + PRIMARY_FIXED_BYTES;
            let need = pos + num_secondary * 4 + feature_bytes;
            if need > len {
                return Err(SectionParseError::Truncated {
                    page: page_idx,
                    offset,
                });
            }
            let secondary_addrs = read_addrs(sec, pos, num_secondary);
            pos += num_secondary * 4;
            let feature = sec[pos..pos + feature_bytes].to_vec();
            pos += feature_bytes;
            let n_inline = (len - pos) / 4;
            let inline_neighbors = read_addrs(sec, pos, n_inline);
            Ok(Section::Primary(PrimarySection {
                node,
                total_neighbors: neighbor_count,
                secondary_addrs,
                feature,
                inline_neighbors,
            }))
        }
        SectionKind::Secondary => {
            let pos = HEADER_BYTES;
            if pos + SECONDARY_FIXED_BYTES + neighbor_count as usize * 4 > len {
                return Err(SectionParseError::Truncated {
                    page: page_idx,
                    offset,
                });
            }
            let owner_start =
                u32::from_le_bytes([sec[pos], sec[pos + 1], sec[pos + 2], sec[pos + 3]]);
            let neighbors = read_addrs(sec, pos + SECONDARY_FIXED_BYTES, neighbor_count as usize);
            Ok(Section::Secondary(SecondarySection {
                node,
                owner_start,
                neighbors,
            }))
        }
    }
}

fn view_at(
    page: &[u8],
    offset: usize,
    len: usize,
    kind: SectionKind,
    page_idx: PageIndex,
) -> Result<SectionView<'_>, SectionParseError> {
    let sec = &page[offset..offset + len];
    let node = NodeId::new(u32::from_le_bytes([sec[4], sec[5], sec[6], sec[7]]));
    let neighbor_count = u32::from_le_bytes([sec[8], sec[9], sec[10], sec[11]]);
    match kind {
        SectionKind::Primary => {
            let feature_bytes = u16::from_le_bytes([sec[12], sec[13]]) as usize;
            let num_secondary = u16::from_le_bytes([sec[14], sec[15]]) as usize;
            let mut pos = HEADER_BYTES + PRIMARY_FIXED_BYTES;
            let need = pos + num_secondary * 4 + feature_bytes;
            if need > len {
                return Err(SectionParseError::Truncated {
                    page: page_idx,
                    offset,
                });
            }
            let secondary = &sec[pos..pos + num_secondary * 4];
            pos += num_secondary * 4 + feature_bytes;
            let n_inline = (len - pos) / 4;
            let inline = &sec[pos..pos + n_inline * 4];
            Ok(SectionView::Primary(PrimaryView {
                node,
                total_neighbors: neighbor_count,
                feature_bytes,
                secondary,
                inline,
            }))
        }
        SectionKind::Secondary => {
            let pos = HEADER_BYTES;
            if pos + SECONDARY_FIXED_BYTES + neighbor_count as usize * 4 > len {
                return Err(SectionParseError::Truncated {
                    page: page_idx,
                    offset,
                });
            }
            let owner_start =
                u32::from_le_bytes([sec[pos], sec[pos + 1], sec[pos + 2], sec[pos + 3]]);
            let start = pos + SECONDARY_FIXED_BYTES;
            let neighbors = &sec[start..start + neighbor_count as usize * 4];
            Ok(SectionView::Secondary(SecondaryView {
                node,
                owner_start,
                neighbors,
            }))
        }
    }
}

fn read_addrs(sec: &[u8], pos: usize, n: usize) -> Vec<PhysAddr> {
    (0..n)
        .map(|i| {
            let o = pos + i * 4;
            PhysAddr::from_raw(u32::from_le_bytes([
                sec[o],
                sec[o + 1],
                sec[o + 2],
                sec[o + 3],
            ]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::PageEncoder;

    fn store_with_page(f: impl FnOnce(&mut PageEncoder)) -> (PageStore, AddrLayout) {
        let layout = AddrLayout::for_page_size(4096).unwrap();
        let mut store = PageStore::new(layout);
        let mut enc = PageEncoder::new(4096);
        f(&mut enc);
        store.write_page(PageIndex::new(0), enc.finish());
        (store, layout)
    }

    #[test]
    fn roundtrip_primary() {
        let (store, layout) = store_with_page(|enc| {
            enc.push_primary(
                42,
                100,
                &[PhysAddr::from_raw(0xDEAD)],
                &[1, 2, 3, 4],
                &[PhysAddr::from_raw(0xBEEF), PhysAddr::from_raw(0xCAFE)],
            );
        });
        let s = store
            .parse_section(layout.pack(PageIndex::new(0), 0))
            .unwrap();
        let p = s.as_primary().expect("primary");
        assert_eq!(p.node, NodeId::new(42));
        assert_eq!(p.total_neighbors, 100);
        assert_eq!(p.secondary_addrs, vec![PhysAddr::from_raw(0xDEAD)]);
        assert_eq!(p.feature, vec![1, 2, 3, 4]);
        assert_eq!(p.inline_neighbors.len(), 2);
        assert_eq!(p.inline_count(), 2);
        assert_eq!(p.overflow_count(), 98);
        assert_eq!(s.kind(), SectionKind::Primary);
        assert!(s.as_secondary().is_none());
    }

    #[test]
    fn roundtrip_secondary_and_multi_slot() {
        let (store, layout) = store_with_page(|enc| {
            enc.push_secondary(7, 10, &[PhysAddr::from_raw(0x11)]);
            enc.push_primary(8, 0, &[], &[], &[]);
            enc.push_secondary(9, 20, &[PhysAddr::from_raw(0x22), PhysAddr::from_raw(0x33)]);
        });
        let s0 = store
            .parse_section(layout.pack(PageIndex::new(0), 0))
            .unwrap();
        let s1 = store
            .parse_section(layout.pack(PageIndex::new(0), 1))
            .unwrap();
        let s2 = store
            .parse_section(layout.pack(PageIndex::new(0), 2))
            .unwrap();
        assert_eq!(s0.as_secondary().unwrap().owner_start, 10);
        assert_eq!(s1.node(), NodeId::new(8));
        let sec2 = s2.as_secondary().unwrap();
        assert_eq!(sec2.node, NodeId::new(9));
        assert_eq!(sec2.neighbors.len(), 2);
    }

    #[test]
    fn missing_page_and_slot_errors() {
        let (store, layout) = store_with_page(|enc| {
            enc.push_primary(1, 0, &[], &[], &[]);
        });
        assert_eq!(
            store.parse_section(layout.pack(PageIndex::new(5), 0)),
            Err(SectionParseError::PageMissing(PageIndex::new(5)))
        );
        assert_eq!(
            store.parse_section(layout.pack(PageIndex::new(0), 3)),
            Err(SectionParseError::SlotNotFound {
                page: PageIndex::new(0),
                slot: 3
            })
        );
    }

    #[test]
    fn corrupt_kind_detected() {
        let layout = AddrLayout::for_page_size(4096).unwrap();
        let mut store = PageStore::new(layout);
        let mut page = vec![0u8; 4096];
        page[0] = 9; // bogus kind
        page[2] = 16;
        store.write_page(PageIndex::new(0), page.into_boxed_slice());
        let err = store
            .parse_section(layout.pack(PageIndex::new(0), 0))
            .unwrap_err();
        assert!(matches!(err, SectionParseError::BadKind { kind: 9, .. }));
        assert!(err.to_string().contains("unknown section kind"));
    }

    #[test]
    fn truncated_length_detected() {
        let layout = AddrLayout::for_page_size(4096).unwrap();
        let mut store = PageStore::new(layout);
        let mut page = vec![0u8; 4096];
        page[0] = 1;
        page[2..4].copy_from_slice(&10_000u16.to_le_bytes()); // runs past page
        store.write_page(PageIndex::new(0), page.into_boxed_slice());
        let err = store
            .parse_section(layout.pack(PageIndex::new(0), 0))
            .unwrap_err();
        assert!(matches!(err, SectionParseError::Truncated { .. }));
    }

    #[test]
    fn parse_all_sections() {
        let (store, _) = store_with_page(|enc| {
            enc.push_primary(1, 0, &[], &[], &[]);
            enc.push_secondary(2, 0, &[]);
        });
        let all = store.parse_all_sections(PageIndex::new(0)).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].node(), NodeId::new(1));
        assert_eq!(all[1].node(), NodeId::new(2));
    }

    #[test]
    fn store_accounting() {
        let layout = AddrLayout::for_page_size(4096).unwrap();
        let mut store = PageStore::new(layout);
        assert_eq!(store.pages_written(), 0);
        store.write_page(PageIndex::new(3), vec![0u8; 4096].into_boxed_slice());
        store.write_page(PageIndex::new(3), vec![0u8; 4096].into_boxed_slice()); // overwrite
        assert_eq!(store.pages_written(), 1);
        assert_eq!(store.stored_bytes(), 4096);
        assert!(store.contains_page(PageIndex::new(3)));
        assert!(!store.contains_page(PageIndex::new(0)));
        assert_eq!(store.iter_pages().count(), 1);
    }
}
