//! Byte-exact section layout (paper Fig 8).
//!
//! Every DirectGraph page is a sequence of variable-length sections, each
//! beginning with a fixed 12-byte header; a zero `kind` byte terminates
//! the sequence (pages are zero-filled). All integers are little-endian.
//!
//! ```text
//! header (both kinds), 12 bytes:
//!   +0  kind            u8   1 = primary, 2 = secondary
//!   +1  flags           u8   reserved, 0
//!   +2  length          u16  total section length in bytes (incl. header)
//!   +4  node            u32  owning node index
//!   +8  neighbor_count  u32  primary: the node's TOTAL neighbor count
//!                            secondary: neighbors in THIS section
//!
//! primary body:
//!   +12 feature_bytes   u16
//!   +14 num_secondary   u16
//!   +16 secondary addrs u32 × num_secondary   (PhysAddr)
//!   +.. feature vector  u8  × feature_bytes
//!   +.. inline neighbor addrs u32 × n_inline  (PhysAddr of the
//!        neighbor's primary section, neighbors [0, n_inline))
//!
//! secondary body:
//!   +12 owner_start     u32  index of this section's first neighbor in
//!                            the owner's neighbor list
//!   +16 neighbor addrs  u32 × neighbor_count
//! ```

use crate::addr::PhysAddr;

/// Section kind discriminants as stored in the first header byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SectionKind {
    /// A node's primary section (metadata + feature + inline neighbors).
    Primary = 1,
    /// An overflow neighbor-list section.
    Secondary = 2,
}

impl SectionKind {
    /// Decodes a header kind byte; `None` for the end-of-page marker (0)
    /// or any unknown value.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(SectionKind::Primary),
            2 => Some(SectionKind::Secondary),
            _ => None,
        }
    }
}

/// Size of the common section header, in bytes.
pub const HEADER_BYTES: usize = 12;
/// Size of the primary-section fixed body fields, in bytes.
pub const PRIMARY_FIXED_BYTES: usize = 4;
/// Size of the secondary-section fixed body fields, in bytes.
pub const SECONDARY_FIXED_BYTES: usize = 4;
/// Bytes per neighbor or secondary-section address entry.
pub const ADDR_BYTES: usize = 4;

/// Total size of a primary section with the given shape.
pub const fn primary_section_size(
    feature_bytes: usize,
    n_inline: usize,
    n_secondary: usize,
) -> usize {
    HEADER_BYTES
        + PRIMARY_FIXED_BYTES
        + ADDR_BYTES * n_secondary
        + feature_bytes
        + ADDR_BYTES * n_inline
}

/// Total size of a secondary section holding `n` neighbor addresses.
pub const fn secondary_section_size(n: usize) -> usize {
    HEADER_BYTES + SECONDARY_FIXED_BYTES + ADDR_BYTES * n
}

/// Maximum neighbors a single secondary section can hold in a page of
/// `page_size` bytes.
pub const fn secondary_capacity(page_size: usize) -> usize {
    (page_size - HEADER_BYTES - SECONDARY_FIXED_BYTES) / ADDR_BYTES
}

/// Serializer for one flash page's sections.
///
/// Sections are appended in slot order; [`PageEncoder::finish`] pads with
/// zeros to the page size (the zero kind byte doubles as the end-of-page
/// marker for the section iterator).
#[derive(Debug)]
pub struct PageEncoder {
    page_size: usize,
    buf: Vec<u8>,
    sections: usize,
}

impl PageEncoder {
    /// Creates an encoder for a page of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        PageEncoder {
            page_size,
            buf: Vec::with_capacity(page_size),
            sections: 0,
        }
    }

    /// Bytes used so far.
    pub fn used(&self) -> usize {
        self.buf.len()
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.page_size - self.buf.len()
    }

    /// Number of sections appended so far (the next section's slot index).
    pub fn sections(&self) -> usize {
        self.sections
    }

    /// Appends a primary section; returns its slot index.
    ///
    /// # Panics
    ///
    /// Panics if the section does not fit in the remaining page space, or
    /// if a field exceeds its encoded width.
    #[allow(clippy::too_many_arguments)]
    pub fn push_primary(
        &mut self,
        node: u32,
        total_neighbors: u32,
        secondary_addrs: &[PhysAddr],
        feature: &[u8],
        inline_neighbors: &[PhysAddr],
    ) -> usize {
        let size =
            primary_section_size(feature.len(), inline_neighbors.len(), secondary_addrs.len());
        assert!(size <= self.remaining(), "primary section does not fit");
        assert!(
            size <= u16::MAX as usize,
            "section too large for length field"
        );
        assert!(feature.len() <= u16::MAX as usize, "feature too large");
        assert!(
            secondary_addrs.len() <= u16::MAX as usize,
            "too many secondary sections"
        );
        let slot = self.sections;
        self.buf.push(SectionKind::Primary as u8);
        self.buf.push(0);
        self.buf.extend_from_slice(&(size as u16).to_le_bytes());
        self.buf.extend_from_slice(&node.to_le_bytes());
        self.buf.extend_from_slice(&total_neighbors.to_le_bytes());
        self.buf
            .extend_from_slice(&(feature.len() as u16).to_le_bytes());
        self.buf
            .extend_from_slice(&(secondary_addrs.len() as u16).to_le_bytes());
        for a in secondary_addrs {
            self.buf.extend_from_slice(&a.to_raw().to_le_bytes());
        }
        self.buf.extend_from_slice(feature);
        for a in inline_neighbors {
            self.buf.extend_from_slice(&a.to_raw().to_le_bytes());
        }
        self.sections += 1;
        slot
    }

    /// Appends a secondary section; returns its slot index.
    ///
    /// # Panics
    ///
    /// Panics if the section does not fit in the remaining page space.
    pub fn push_secondary(&mut self, node: u32, owner_start: u32, neighbors: &[PhysAddr]) -> usize {
        let size = secondary_section_size(neighbors.len());
        assert!(size <= self.remaining(), "secondary section does not fit");
        assert!(
            size <= u16::MAX as usize,
            "section too large for length field"
        );
        let slot = self.sections;
        self.buf.push(SectionKind::Secondary as u8);
        self.buf.push(0);
        self.buf.extend_from_slice(&(size as u16).to_le_bytes());
        self.buf.extend_from_slice(&node.to_le_bytes());
        self.buf
            .extend_from_slice(&(neighbors.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&owner_start.to_le_bytes());
        for a in neighbors {
            self.buf.extend_from_slice(&a.to_raw().to_le_bytes());
        }
        self.sections += 1;
        slot
    }

    /// Finalizes the page, zero-padding to the page size.
    pub fn finish(mut self) -> Box<[u8]> {
        self.buf.resize(self.page_size, 0);
        self.buf.into_boxed_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_formulas() {
        assert_eq!(primary_section_size(0, 0, 0), 16);
        assert_eq!(primary_section_size(100, 10, 2), 16 + 8 + 100 + 40);
        assert_eq!(secondary_section_size(5), 36);
        // 4 KB secondary page holds (4096-16)/4 = 1020 neighbors.
        assert_eq!(secondary_capacity(4096), 1020);
    }

    #[test]
    fn encoder_tracks_usage() {
        let mut e = PageEncoder::new(4096);
        assert_eq!(e.remaining(), 4096);
        let slot = e.push_secondary(7, 0, &[PhysAddr::from_raw(1), PhysAddr::from_raw(2)]);
        assert_eq!(slot, 0);
        assert_eq!(e.used(), secondary_section_size(2));
        assert_eq!(e.sections(), 1);
        let page = e.finish();
        assert_eq!(page.len(), 4096);
        assert_eq!(page[0], SectionKind::Secondary as u8);
        // Zero padding terminates the section walk.
        assert_eq!(page[secondary_section_size(2)], 0);
    }

    #[test]
    fn primary_bytes_layout() {
        let mut e = PageEncoder::new(4096);
        e.push_primary(
            0x01020304,
            9,
            &[PhysAddr::from_raw(0xAABBCCDD)],
            &[0x11, 0x22],
            &[PhysAddr::from_raw(0x55667788)],
        );
        let page = e.finish();
        assert_eq!(page[0], 1); // kind
        let len = u16::from_le_bytes([page[2], page[3]]) as usize;
        assert_eq!(len, primary_section_size(2, 1, 1));
        assert_eq!(
            u32::from_le_bytes([page[4], page[5], page[6], page[7]]),
            0x01020304
        );
        assert_eq!(
            u32::from_le_bytes([page[8], page[9], page[10], page[11]]),
            9
        );
        assert_eq!(u16::from_le_bytes([page[12], page[13]]), 2); // feature bytes
        assert_eq!(u16::from_le_bytes([page[14], page[15]]), 1); // num secondary
        assert_eq!(
            u32::from_le_bytes([page[16], page[17], page[18], page[19]]),
            0xAABBCCDD
        );
        assert_eq!(&page[20..22], &[0x11, 0x22]);
        assert_eq!(
            u32::from_le_bytes([page[22], page[23], page[24], page[25]]),
            0x55667788
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_panics() {
        let mut e = PageEncoder::new(64);
        e.push_secondary(0, 0, &vec![PhysAddr::from_raw(0); 100]);
    }

    #[test]
    fn kind_decoding() {
        assert_eq!(SectionKind::from_byte(1), Some(SectionKind::Primary));
        assert_eq!(SectionKind::from_byte(2), Some(SectionKind::Secondary));
        assert_eq!(SectionKind::from_byte(0), None);
        assert_eq!(SectionKind::from_byte(7), None);
    }
}
