//! DirectGraph image serialization.
//!
//! Converting a large dataset to DirectGraph is the expensive,
//! once-per-dataset step (§VI-B); this module persists the converted
//! image — page store, node directory, and build statistics — in a
//! compact binary container so it can be prepared once and reloaded
//! across runs, exactly as a deployment would flash it once and reuse
//! the reserved blocks.
//!
//! Container layout (little-endian):
//!
//! ```text
//! magic   "DGR1"                      4 B
//! page_size                           u32
//! num_nodes                           u64
//! directory: raw PhysAddr per node    num_nodes × u32
//! stats: primary_pages, secondary_pages, secondary_sections,
//!        used_bytes, edges            5 × u64
//! num_pages                           u64
//! per page: index u64 + page bytes    num_pages × (8 + page_size)
//! ```

use std::fmt;
use std::io::{self, Read, Write};

use crate::addr::{AddrLayout, PageIndex, PhysAddr};
use crate::build::{BuildStats, DirectGraph};
use crate::image::PageStore;

const MAGIC: &[u8; 4] = b"DGR1";

/// Deserialization failures.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the DirectGraph magic.
    BadMagic([u8; 4]),
    /// The stored page size has no valid address layout.
    BadPageSize(u32),
    /// A page record exceeds the layout's index range.
    PageIndexOutOfRange(u64),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o: {e}"),
            LoadError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            LoadError::BadPageSize(s) => write!(f, "unsupported page size {s}"),
            LoadError::PageIndexOutOfRange(i) => write!(f, "page index {i} out of range"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl DirectGraph {
    /// Serializes the image into `writer`.
    ///
    /// A `&mut` reference can be passed as the writer.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(MAGIC)?;
        writer.write_all(&(self.layout().page_size() as u32).to_le_bytes())?;
        let n = self.directory().len() as u64;
        writer.write_all(&n.to_le_bytes())?;
        for i in 0..self.directory().len() {
            let addr = self
                .directory()
                .primary_addr(beacon_graph::NodeId::new(i as u32))
                .expect("index in range");
            writer.write_all(&addr.to_raw().to_le_bytes())?;
        }
        let s = self.stats();
        for v in [
            s.primary_pages,
            s.secondary_pages,
            s.secondary_sections,
            s.used_bytes,
            s.edges,
        ] {
            writer.write_all(&v.to_le_bytes())?;
        }
        writer.write_all(&(self.image().pages_written() as u64).to_le_bytes())?;
        for (idx, bytes) in self.image().iter_pages() {
            writer.write_all(&idx.as_u64().to_le_bytes())?;
            writer.write_all(bytes)?;
        }
        Ok(())
    }

    /// Deserializes an image from `reader`.
    ///
    /// A `&mut` reference can be passed as the reader.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on malformed input.
    pub fn load<R: Read>(mut reader: R) -> Result<DirectGraph, LoadError> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(LoadError::BadMagic(magic));
        }
        let page_size = read_u32(&mut reader)?;
        let layout = AddrLayout::for_page_size(page_size as usize)
            .ok_or(LoadError::BadPageSize(page_size))?;
        let n = read_u64(&mut reader)? as usize;
        let mut primary = Vec::with_capacity(n);
        for _ in 0..n {
            primary.push(PhysAddr::from_raw(read_u32(&mut reader)?));
        }
        let directory = DirectGraph::directory_from_raw(primary);
        let stats = BuildStats {
            primary_pages: read_u64(&mut reader)?,
            secondary_pages: read_u64(&mut reader)?,
            secondary_sections: read_u64(&mut reader)?,
            used_bytes: read_u64(&mut reader)?,
            edges: read_u64(&mut reader)?,
        };
        let num_pages = read_u64(&mut reader)?;
        let mut store = PageStore::new(layout);
        for _ in 0..num_pages {
            let idx = read_u64(&mut reader)?;
            if idx > layout.max_page_index() {
                return Err(LoadError::PageIndexOutOfRange(idx));
            }
            let mut page = vec![0u8; page_size as usize];
            reader.read_exact(&mut page)?;
            store.write_page(PageIndex::new(idx), page.into_boxed_slice());
        }
        Ok(DirectGraph::from_parts(layout, store, directory, stats))
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::DirectGraphBuilder;
    use beacon_graph::{generate, FeatureTable, NodeId};

    fn build_dg(n: usize) -> DirectGraph {
        let graph = generate::uniform(n, 6, 3);
        let feats = FeatureTable::synthetic(n, 24, 3);
        DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &feats)
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dg = build_dg(300);
        let mut buf = Vec::new();
        dg.save(&mut buf).unwrap();
        let loaded = DirectGraph::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.stats(), dg.stats());
        assert_eq!(loaded.directory(), dg.directory());
        assert_eq!(loaded.layout(), dg.layout());
        assert_eq!(loaded.image().pages_written(), dg.image().pages_written());
        // Spot-check sections parse identically.
        for i in (0..300).step_by(37) {
            let v = NodeId::new(i);
            let addr = dg.directory().primary_addr(v).unwrap();
            assert_eq!(
                loaded.image().parse_section(addr).unwrap(),
                dg.image().parse_section(addr).unwrap()
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = DirectGraph::load(&b"NOPE-----"[..]).unwrap_err();
        assert!(matches!(err, LoadError::BadMagic(_)));
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn truncated_stream_rejected() {
        let dg = build_dg(50);
        let mut buf = Vec::new();
        dg.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = DirectGraph::load(buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }

    #[test]
    fn bad_page_size_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DGR1");
        buf.extend_from_slice(&777u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = DirectGraph::load(buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::BadPageSize(777)));
    }

    #[test]
    fn size_is_dominated_by_pages() {
        let dg = build_dg(200);
        let mut buf = Vec::new();
        dg.save(&mut buf).unwrap();
        let pages = dg.image().pages_written();
        assert!(buf.len() >= pages * 4096);
        assert!(buf.len() < pages * 4096 + 200 * 4 + 1024);
    }
}
