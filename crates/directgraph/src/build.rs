//! DirectGraph construction — the paper's Algorithm 1 (§VI-B).
//!
//! Construction runs in the two steps the paper describes:
//!
//! 1. **Mapping-based metadata collection** — for every node, compute the
//!    number and sizes of its primary and secondary sections from its
//!    neighbor-list length and feature length, and assign each section to
//!    a page with sufficient space (allocating fresh pages from the PPA
//!    list as needed).
//! 2. **Serialization** — encode each page in a host-side buffer, filling
//!    sections with neighbor *primary-section addresses* (resolved
//!    through the step-1 directory) and feature bytes, then flush the
//!    page to the store.
//!
//! Placement is first-fit over a bounded set of open pages per pool
//! (primary/secondary), honoring both the byte capacity and the
//! slot-index capacity (`2^slot_bits` sections per page) of the address
//! layout.

use std::fmt;

use beacon_graph::{CsrGraph, FeatureTable, NodeId};

use crate::addr::{AddrLayout, PageIndex, PhysAddr};
use crate::image::PageStore;
use crate::inflation::InflationReport;
use crate::layout::{
    primary_section_size, secondary_capacity, secondary_section_size, PageEncoder, ADDR_BYTES,
    HEADER_BYTES, PRIMARY_FIXED_BYTES,
};

/// Pages per parallel serialization work item (step 2). Fixed — never
/// derived from the thread count — so the encoded image is identical at
/// any parallelism level.
const PAGE_CHUNK: usize = 64;

/// Errors from DirectGraph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A node's feature vector alone exceeds a flash page, so no primary
    /// section can hold it.
    FeatureTooLarge {
        node: NodeId,
        feature_bytes: usize,
        page_size: usize,
    },
    /// The graph needs more pages than the address layout can index.
    AddressSpaceExhausted { needed_pages: u64, max_pages: u64 },
    /// Graph and feature table disagree on node count.
    NodeCountMismatch {
        graph_nodes: usize,
        feature_rows: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::FeatureTooLarge {
                node,
                feature_bytes,
                page_size,
            } => write!(
                f,
                "feature of {node} ({feature_bytes} B) cannot fit a {page_size} B page"
            ),
            BuildError::AddressSpaceExhausted {
                needed_pages,
                max_pages,
            } => {
                write!(
                    f,
                    "graph needs {needed_pages} pages, layout indexes {max_pages}"
                )
            }
            BuildError::NodeCountMismatch {
                graph_nodes,
                feature_rows,
            } => {
                write!(
                    f,
                    "graph has {graph_nodes} nodes but feature table {feature_rows} rows"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Maps node ids to the physical addresses of their primary sections.
///
/// The host keeps this directory (it is the only per-node metadata the
/// host needs) and ships target addresses to the SSD at each mini-batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDirectory {
    primary: Vec<PhysAddr>,
}

impl NodeDirectory {
    /// The primary-section address of `node`, or `None` if out of range.
    pub fn primary_addr(&self, node: NodeId) -> Option<PhysAddr> {
        self.primary.get(node.index()).copied()
    }

    /// Number of nodes in the directory.
    pub fn len(&self) -> usize {
        self.primary.len()
    }

    /// Returns `true` if the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }
}

/// Aggregate construction statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildStats {
    /// Pages holding primary sections.
    pub primary_pages: u64,
    /// Pages holding secondary sections.
    pub secondary_pages: u64,
    /// Total secondary sections emitted.
    pub secondary_sections: u64,
    /// Section payload bytes actually used (excluding padding).
    pub used_bytes: u64,
    /// Graph edges serialized.
    pub edges: u64,
}

impl BuildStats {
    /// Total pages allocated.
    pub fn total_pages(&self) -> u64 {
        self.primary_pages + self.secondary_pages
    }
}

/// A fully constructed DirectGraph: page image + node directory + stats.
#[derive(Debug, Clone)]
pub struct DirectGraph {
    layout: AddrLayout,
    store: PageStore,
    directory: NodeDirectory,
    stats: BuildStats,
}

impl DirectGraph {
    /// Reassembles a DirectGraph from its parts (deserialization path).
    pub(crate) fn from_parts(
        layout: AddrLayout,
        store: PageStore,
        directory: NodeDirectory,
        stats: BuildStats,
    ) -> Self {
        DirectGraph {
            layout,
            store,
            directory,
            stats,
        }
    }

    /// Builds a directory from raw addresses (deserialization path).
    pub(crate) fn directory_from_raw(primary: Vec<PhysAddr>) -> NodeDirectory {
        NodeDirectory { primary }
    }

    /// The address layout the image was built with.
    pub fn layout(&self) -> AddrLayout {
        self.layout
    }

    /// The flash page image.
    pub fn image(&self) -> &PageStore {
        &self.store
    }

    /// Mutable access to the flash page image (used by error-injection
    /// tests and the scrubbing model).
    pub fn image_mut(&mut self) -> &mut PageStore {
        &mut self.store
    }

    /// The node → primary-section-address directory.
    pub fn directory(&self) -> &NodeDirectory {
        &self.directory
    }

    /// Construction statistics.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// A 64-bit FNV-1a digest over the layout, every stored page (index
    /// and bytes), the directory, and the build statistics — the "golden
    /// image hash" used to assert byte-identical construction across
    /// build-thread counts and cache round-trips.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.layout.page_size() as u64).to_le_bytes());
        for (idx, bytes) in self.store.iter_pages() {
            eat(&idx.as_u64().to_le_bytes());
            eat(bytes);
        }
        for addr in &self.directory.primary {
            eat(&addr.to_raw().to_le_bytes());
        }
        let s = self.stats;
        for v in [
            s.primary_pages,
            s.secondary_pages,
            s.secondary_sections,
            s.used_bytes,
            s.edges,
        ] {
            eat(&v.to_le_bytes());
        }
        h
    }

    /// Computes the Table IV storage-inflation report against the raw
    /// representation (4 B per edge + FP-16 feature table).
    pub fn inflation(&self, features: &FeatureTable) -> InflationReport {
        let raw = self.stats.edges * ADDR_BYTES as u64 + features.table_bytes() as u64;
        InflationReport::new(raw, self.store.stored_bytes(), self.stats.used_bytes)
    }

    /// Migrates the whole image to new physical pages (the §VI-F
    /// wear-leveling reclamation): every page moves to `map(old_index)`
    /// and **every embedded physical address** — directory entries,
    /// inline neighbors, secondary pointers — is rewritten to the new
    /// location.
    ///
    /// # Errors
    ///
    /// Returns an error string if a page fails to parse (a corrupt image
    /// must be scrubbed before reclamation) or if `map` sends two pages
    /// to the same destination.
    pub fn relocate_pages(&mut self, map: impl Fn(PageIndex) -> PageIndex) -> Result<(), String> {
        let layout = self.layout;
        let remap_addr = |addr: PhysAddr| {
            let (page, slot) = layout.unpack(addr);
            layout.pack(map(page), slot)
        };

        let mut new_store = PageStore::new(layout);
        let mut dest_seen = std::collections::HashSet::new();
        let old_pages: Vec<PageIndex> = self.store.iter_pages().map(|(i, _)| i).collect();
        for old_idx in old_pages {
            let new_idx = map(old_idx);
            if !dest_seen.insert(new_idx) {
                return Err(format!("relocation maps two pages onto {new_idx}"));
            }
            let sections = self
                .store
                .parse_all_sections(old_idx)
                .map_err(|e| e.to_string())?;
            let mut enc = PageEncoder::new(layout.page_size());
            for section in sections {
                match section {
                    crate::image::Section::Primary(p) => {
                        let secondary: Vec<PhysAddr> =
                            p.secondary_addrs.iter().copied().map(remap_addr).collect();
                        let inline: Vec<PhysAddr> =
                            p.inline_neighbors.iter().copied().map(remap_addr).collect();
                        enc.push_primary(
                            p.node.as_u32(),
                            p.total_neighbors,
                            &secondary,
                            &p.feature,
                            &inline,
                        );
                    }
                    crate::image::Section::Secondary(s) => {
                        let neighbors: Vec<PhysAddr> =
                            s.neighbors.iter().copied().map(remap_addr).collect();
                        enc.push_secondary(s.node.as_u32(), s.owner_start, &neighbors);
                    }
                }
            }
            new_store.write_page(new_idx, enc.finish());
        }
        for addr in &mut self.directory.primary {
            *addr = remap_addr(*addr);
        }
        self.store = new_store;
        Ok(())
    }
}

/// Shape of one node's sections, computed in step 1 of Algorithm 1.
#[derive(Debug, Clone)]
struct NodePlan {
    n_inline: usize,
    /// `(owner_start, count)` per secondary section.
    sec_ranges: Vec<(u32, u32)>,
    primary_addr: PhysAddr,
    secondary_addrs: Vec<PhysAddr>,
}

/// What a page will contain, in slot order.
#[derive(Debug, Clone, Copy)]
enum SectionPlan {
    Primary { node: u32 },
    Secondary { node: u32, sec_idx: u32 },
}

/// An open page being filled by the first-fit placer.
#[derive(Debug)]
struct OpenPage {
    index: PageIndex,
    used: usize,
    slots: usize,
}

/// Builder implementing Algorithm 1.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct DirectGraphBuilder {
    layout: AddrLayout,
    max_open_pages: usize,
}

impl DirectGraphBuilder {
    /// Creates a builder for the given address layout.
    pub fn new(layout: AddrLayout) -> Self {
        DirectGraphBuilder {
            layout,
            max_open_pages: 64,
        }
    }

    /// Bounds the first-fit placer's open-page window (trade packing
    /// quality for construction speed). Default 64.
    pub fn max_open_pages(mut self, n: usize) -> Self {
        self.max_open_pages = n.max(1);
        self
    }

    /// Runs Algorithm 1 over `graph` and `features`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if a feature vector cannot fit a page, the
    /// node counts disagree, or the address space is exhausted.
    pub fn build(
        &self,
        graph: &CsrGraph,
        features: &FeatureTable,
    ) -> Result<DirectGraph, BuildError> {
        if graph.num_nodes() != features.num_nodes() {
            return Err(BuildError::NodeCountMismatch {
                graph_nodes: graph.num_nodes(),
                feature_rows: features.num_nodes(),
            });
        }
        let page_size = self.layout.page_size();
        let feat_bytes = features.vector_bytes();
        let sec_cap = secondary_capacity(page_size);

        // ---- Step 1: metadata collection & placement. ----
        // Placement is inherently sequential (first-fit over a shared
        // open-page window), but cheap; it produces the per-page plan
        // that step 2 parallelizes over.
        let plan_phase = simkit::profile::phase("directgraph/plan");
        let mut placer = Placer::new(self.layout, self.max_open_pages);
        let mut plans: Vec<NodePlan> = Vec::with_capacity(graph.num_nodes());
        let mut stats = BuildStats::default();

        for v in graph.nodes() {
            let deg = graph.degree(v);
            stats.edges += deg as u64;
            let shape = plan_shape(deg, feat_bytes, page_size, sec_cap).ok_or(
                BuildError::FeatureTooLarge {
                    node: v,
                    feature_bytes: feat_bytes,
                    page_size,
                },
            )?;

            let prim_size =
                primary_section_size(feat_bytes, shape.n_inline, shape.sec_ranges.len());
            let primary_addr = placer.place(
                Pool::Primary,
                prim_size,
                SectionPlan::Primary { node: v.as_u32() },
            )?;
            stats.used_bytes += prim_size as u64;

            let mut secondary_addrs = Vec::with_capacity(shape.sec_ranges.len());
            for (i, &(_, count)) in shape.sec_ranges.iter().enumerate() {
                let size = secondary_section_size(count as usize);
                let addr = placer.place(
                    Pool::Secondary,
                    size,
                    SectionPlan::Secondary {
                        node: v.as_u32(),
                        sec_idx: i as u32,
                    },
                )?;
                secondary_addrs.push(addr);
                stats.used_bytes += size as u64;
                stats.secondary_sections += 1;
            }

            plans.push(NodePlan {
                n_inline: shape.n_inline,
                sec_ranges: shape.sec_ranges,
                primary_addr,
                secondary_addrs,
            });
        }
        let (pages, primary_pages, secondary_pages) = placer.finish();
        stats.primary_pages = primary_pages;
        stats.secondary_pages = secondary_pages;

        let directory = NodeDirectory {
            primary: plans.iter().map(|p| p.primary_addr).collect(),
        };
        // End the plan phase before encode starts (`drop()` would lint
        // as drop_non_drop when the guard compiles to a no-op ZST).
        let _ = plan_phase;

        // ---- Step 2: serialization. ----
        // Every page's content is fully determined by the step-1 plan,
        // so pages encode independently on build threads, in fixed
        // chunks; results land in index order regardless of schedule.
        let _encode_phase = simkit::profile::phase("directgraph/encode");
        let mut encoded: Vec<Option<Box<[u8]>>> = Vec::with_capacity(pages.len());
        encoded.resize_with(pages.len(), || None);
        {
            let plans = &plans;
            let pages = &pages;
            let directory = &directory;
            simkit::par::for_each_chunk_mut(&mut encoded, PAGE_CHUNK, |start, chunk| {
                // One feature-encode buffer per worker chunk, reused
                // across every node on these pages.
                let mut feature = Vec::new();
                let mut inline: Vec<PhysAddr> = Vec::new();
                let mut addrs: Vec<PhysAddr> = Vec::new();
                for (k, out) in chunk.iter_mut().enumerate() {
                    let mut enc = PageEncoder::new(page_size);
                    for plan in &pages[start + k] {
                        match *plan {
                            SectionPlan::Primary { node } => {
                                let v = NodeId::new(node);
                                let np = &plans[v.index()];
                                inline.clear();
                                inline.extend(graph.neighbors(v)[..np.n_inline].iter().map(|&n| {
                                    directory.primary_addr(n).expect("neighbor in directory")
                                }));
                                encode_fp16_into(features.feature(v), &mut feature);
                                enc.push_primary(
                                    node,
                                    graph.degree(v) as u32,
                                    &np.secondary_addrs,
                                    &feature,
                                    &inline,
                                );
                            }
                            SectionPlan::Secondary { node, sec_idx } => {
                                let v = NodeId::new(node);
                                let np = &plans[v.index()];
                                let (start, count) = np.sec_ranges[sec_idx as usize];
                                addrs.clear();
                                addrs.extend(
                                    graph.neighbors(v)[start as usize..(start + count) as usize]
                                        .iter()
                                        .map(|&n| {
                                            directory
                                                .primary_addr(n)
                                                .expect("neighbor in directory")
                                        }),
                                );
                                enc.push_secondary(node, start, &addrs);
                            }
                        }
                    }
                    *out = Some(enc.finish());
                }
            });
        }
        let mut store = PageStore::new(self.layout);
        for (page_idx, bytes) in encoded.into_iter().enumerate() {
            store.write_page(
                PageIndex::new(page_idx as u64),
                bytes.expect("every planned page encoded"),
            );
        }

        Ok(DirectGraph {
            layout: self.layout,
            store,
            directory,
            stats,
        })
    }
}

/// Which page pool a section belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pool {
    Primary,
    Secondary,
}

struct Placer {
    layout: AddrLayout,
    max_open: usize,
    open_primary: Vec<OpenPage>,
    open_secondary: Vec<OpenPage>,
    pages: Vec<Vec<SectionPlan>>,
    primary_pages: u64,
    secondary_pages: u64,
}

impl Placer {
    fn new(layout: AddrLayout, max_open: usize) -> Self {
        Placer {
            layout,
            max_open,
            open_primary: Vec::new(),
            open_secondary: Vec::new(),
            pages: Vec::new(),
            primary_pages: 0,
            secondary_pages: 0,
        }
    }

    fn place(
        &mut self,
        pool: Pool,
        size: usize,
        plan: SectionPlan,
    ) -> Result<PhysAddr, BuildError> {
        let max_slots = self.layout.max_sections_per_page();
        let page_size = self.layout.page_size();
        let open = match pool {
            Pool::Primary => &mut self.open_primary,
            Pool::Secondary => &mut self.open_secondary,
        };
        // First-fit over the open window.
        let found = open
            .iter_mut()
            .position(|p| page_size - p.used >= size && p.slots < max_slots);
        let (index, slot) = if let Some(i) = found {
            let p = &mut open[i];
            let slot = p.slots;
            p.used += size;
            p.slots += 1;
            let idx = p.index;
            // Close pages that can no longer take the smallest section.
            if p.slots == max_slots || page_size - p.used < HEADER_BYTES + PRIMARY_FIXED_BYTES {
                open.swap_remove(i);
            }
            (idx, slot)
        } else {
            // Allocate a fresh page from the PPA list.
            let idx = PageIndex::new(self.pages.len() as u64);
            if idx.as_u64() > self.layout.max_page_index() {
                return Err(BuildError::AddressSpaceExhausted {
                    needed_pages: idx.as_u64() + 1,
                    max_pages: self.layout.max_page_index() + 1,
                });
            }
            self.pages.push(Vec::new());
            match pool {
                Pool::Primary => self.primary_pages += 1,
                Pool::Secondary => self.secondary_pages += 1,
            }
            if open.len() >= self.max_open {
                // Drop the stalest open page to bound the window.
                open.remove(0);
            }
            open.push(OpenPage {
                index: idx,
                used: size,
                slots: 1,
            });
            (idx, 0)
        };
        self.pages[index.as_usize()].push(plan);
        Ok(self.layout.pack(index, slot))
    }

    fn finish(self) -> (Vec<Vec<SectionPlan>>, u64, u64) {
        (self.pages, self.primary_pages, self.secondary_pages)
    }
}

struct Shape {
    n_inline: usize,
    sec_ranges: Vec<(u32, u32)>,
}

/// Computes a node's section shape: how many neighbors stay inline and
/// how the overflow splits into secondary sections.
fn plan_shape(deg: usize, feat_bytes: usize, page_size: usize, sec_cap: usize) -> Option<Shape> {
    let all_inline = primary_section_size(feat_bytes, deg, 0);
    if all_inline <= page_size {
        return Some(Shape {
            n_inline: deg,
            sec_ranges: Vec::new(),
        });
    }
    // Overflow: iterate num_secondary to a fixed point, since each
    // secondary address consumes inline space.
    let fixed = HEADER_BYTES + PRIMARY_FIXED_BYTES + feat_bytes;
    if fixed > page_size {
        return None;
    }
    let mut n_sec = 1usize;
    loop {
        let addr_space = page_size - fixed;
        let n_inline = (addr_space / ADDR_BYTES).saturating_sub(n_sec);
        let remaining = deg - n_inline.min(deg);
        let needed = remaining.div_ceil(sec_cap);
        if needed <= n_sec {
            let n_inline = n_inline.min(deg);
            let mut sec_ranges = Vec::with_capacity(needed);
            let mut start = n_inline;
            while start < deg {
                let count = sec_cap.min(deg - start);
                sec_ranges.push((start as u32, count as u32));
                start += count;
            }
            return Some(Shape {
                n_inline,
                sec_ranges,
            });
        }
        n_sec = needed;
    }
}

/// Truncates f32 features to IEEE-754 half-precision bytes (the paper
/// stores features as FP-16).
#[allow(dead_code)]
fn encode_fp16(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_fp16_into(values, &mut out);
    out
}

/// [`encode_fp16`] into a caller-owned buffer (cleared first), so the
/// per-node build loop reuses one allocation instead of a fresh `Vec`
/// per node.
fn encode_fp16_into(values: &[f32], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(values.len() * 2);
    for &v in values {
        out.extend_from_slice(&f32_to_f16_bits(v).to_le_bytes());
    }
}

/// Round-to-nearest-even f32 → f16 bit conversion.
pub(crate) fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x7F_FFFF;
    if exp == 0xFF {
        // Inf/NaN.
        return sign | 0x7C00 | if frac != 0 { 0x200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal half.
        let half_exp = (unbiased + 15) as u32;
        let mut half = (half_exp << 10) | (frac >> 13);
        // Round to nearest even.
        let round_bits = frac & 0x1FFF;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (half & 1) == 1) {
            half += 1;
        }
        return sign | half as u16;
    }
    if unbiased >= -24 {
        // Subnormal half.
        let shift = (-14 - unbiased) as u32;
        let mantissa = (frac | 0x80_0000) >> (13 + shift);
        return sign | mantissa as u16;
    }
    sign // underflow -> zero
}

/// Decodes FP-16 bytes back to f32 values (used by the functional GNN
/// path and tests).
pub fn decode_fp16(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(2)
        .map(|c| f16_bits_to_f32(u16::from_le_bytes([c[0], c[1]])))
        .collect()
}

pub(crate) fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let frac = (h & 0x3FF) as u32;
    let bits = if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut e = -1i32;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            let f = (f & 0x3FF) << 13;
            let e = (127 - 15 + e + 1) as u32;
            sign | (e << 23) | f
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (frac << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_graph::{generate, Dataset, DatasetSpec};

    fn layout() -> AddrLayout {
        AddrLayout::for_page_size(4096).unwrap()
    }

    fn build_small(
        avg_degree: f64,
        feat_dim: usize,
        n: usize,
    ) -> (DirectGraph, CsrGraph, FeatureTable) {
        let cfg = generate::PowerLawConfig::new(n, avg_degree);
        let graph = generate::power_law(&cfg, 3);
        let features = FeatureTable::synthetic(n, feat_dim, 3);
        let dg = DirectGraphBuilder::new(layout())
            .build(&graph, &features)
            .unwrap();
        (dg, graph, features)
    }

    #[test]
    fn every_node_resolvable() {
        let (dg, graph, _) = build_small(20.0, 64, 800);
        for v in graph.nodes() {
            let addr = dg.directory().primary_addr(v).unwrap();
            let sec = dg.image().parse_section(addr).unwrap();
            let p = sec.as_primary().expect("primary section");
            assert_eq!(p.node, v);
            assert_eq!(p.total_neighbors as usize, graph.degree(v));
        }
    }

    #[test]
    fn inline_neighbors_point_to_real_neighbors() {
        let (dg, graph, _) = build_small(20.0, 64, 500);
        for v in graph.nodes() {
            let addr = dg.directory().primary_addr(v).unwrap();
            let p = dg.image().parse_section(addr).unwrap();
            let p = p.as_primary().unwrap();
            for (i, &naddr) in p.inline_neighbors.iter().enumerate() {
                let nsec = dg.image().parse_section(naddr).unwrap();
                assert_eq!(
                    nsec.node(),
                    graph.neighbors(v)[i],
                    "inline neighbor {i} of {v}"
                );
                assert!(nsec.as_primary().is_some());
            }
        }
    }

    #[test]
    fn secondary_sections_partition_overflow() {
        // High degree + big features force secondary sections.
        let (dg, graph, _) = build_small(400.0, 600, 300);
        let mut saw_secondary = false;
        for v in graph.nodes() {
            let addr = dg.directory().primary_addr(v).unwrap();
            let p = dg.image().parse_section(addr).unwrap();
            let p = p.as_primary().unwrap().clone();
            let mut covered = p.inline_count();
            for (i, &saddr) in p.secondary_addrs.iter().enumerate() {
                saw_secondary = true;
                let s = dg.image().parse_section(saddr).unwrap();
                let s = s.as_secondary().expect("secondary kind");
                assert_eq!(s.node, v, "secondary {i} owner");
                assert_eq!(s.owner_start as usize, covered, "contiguous coverage");
                // Each address resolves to the right neighbor's primary.
                for (j, &naddr) in s.neighbors.iter().enumerate() {
                    let n = graph.neighbors(v)[s.owner_start as usize + j];
                    assert_eq!(dg.image().parse_section(naddr).unwrap().node(), n);
                }
                covered += s.neighbors.len();
            }
            assert_eq!(covered, graph.degree(v), "full neighbor coverage for {v}");
        }
        assert!(saw_secondary, "test should exercise the overflow path");
    }

    #[test]
    fn features_roundtrip_at_fp16_precision() {
        let (dg, graph, features) = build_small(10.0, 32, 200);
        for v in graph.nodes().take(50) {
            let addr = dg.directory().primary_addr(v).unwrap();
            let p = dg.image().parse_section(addr).unwrap();
            let decoded = decode_fp16(&p.as_primary().unwrap().feature);
            let orig = features.feature(v);
            assert_eq!(decoded.len(), orig.len());
            for (d, o) in decoded.iter().zip(orig) {
                assert!((d - o).abs() < 1e-3, "fp16 roundtrip: {d} vs {o}");
            }
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let (a, _, _) = build_small(15.0, 16, 300);
        let (b, _, _) = build_small(15.0, 16, 300);
        assert_eq!(a.directory(), b.directory());
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn serialization_is_thread_count_invariant() {
        simkit::par::set_build_threads(1);
        let (reference, graph, features) = build_small(30.0, 48, 2_000);
        for threads in [2, 8] {
            simkit::par::set_build_threads(threads);
            let dg = DirectGraphBuilder::new(layout())
                .build(&graph, &features)
                .unwrap();
            assert_eq!(dg.digest(), reference.digest(), "threads={threads}");
            assert_eq!(dg.directory(), reference.directory());
            assert_eq!(dg.stats(), reference.stats());
        }
        simkit::par::set_build_threads(1);
    }

    #[test]
    fn slot_cap_respected() {
        // Tiny sections: many per page, but never more than 16 on 4 KB.
        let (dg, _, _) = build_small(2.0, 4, 2_000);
        for (idx, _) in dg.image().iter_pages() {
            let sections = dg.image().parse_all_sections(idx).unwrap();
            assert!(
                sections.len() <= 16,
                "page {idx} has {} sections",
                sections.len()
            );
        }
    }

    #[test]
    fn node_count_mismatch_rejected() {
        let graph = generate::uniform(10, 2, 1);
        let features = FeatureTable::synthetic(9, 8, 1);
        let err = DirectGraphBuilder::new(layout())
            .build(&graph, &features)
            .unwrap_err();
        assert!(matches!(err, BuildError::NodeCountMismatch { .. }));
        assert!(err.to_string().contains("feature table"));
    }

    #[test]
    fn oversized_feature_rejected() {
        let graph = generate::uniform(4, 1, 1);
        let features = FeatureTable::synthetic(4, 3_000, 1); // 6 KB > 4 KB page
        let err = DirectGraphBuilder::new(layout())
            .build(&graph, &features)
            .unwrap_err();
        assert!(matches!(err, BuildError::FeatureTooLarge { .. }));
    }

    #[test]
    fn stats_are_consistent() {
        let (dg, graph, _) = build_small(50.0, 128, 400);
        let stats = dg.stats();
        assert_eq!(stats.edges as usize, graph.num_edges());
        assert_eq!(stats.total_pages() as usize, dg.image().pages_written());
        assert!(stats.used_bytes <= dg.image().stored_bytes());
        assert!(stats.primary_pages > 0);
    }

    #[test]
    fn paper_presets_build_end_to_end() {
        for d in [Dataset::Ogbn, Dataset::Movielens] {
            let spec = DatasetSpec::preset(d).at_scale(500);
            let graph = spec.build_graph(1);
            let features = spec.build_features(1);
            let dg = DirectGraphBuilder::new(layout())
                .build(&graph, &features)
                .unwrap();
            assert_eq!(dg.directory().len(), 500, "{d}");
        }
    }

    #[test]
    fn fp16_conversion_edge_cases() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 65504.0, 1e-8, f32::INFINITY] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            if v.abs() < 6e-8 {
                assert_eq!(back, 0.0_f32.copysign(v));
            } else if v.is_infinite() {
                assert!(back.is_infinite());
            } else {
                assert!((back - v).abs() / v.abs().max(1.0) < 1e-3, "{v} -> {back}");
            }
        }
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Overflow saturates to infinity.
        assert!(f16_bits_to_f32(f32_to_f16_bits(1e9)).is_infinite());
    }

    #[test]
    fn relocation_preserves_resolvability() {
        let (mut dg, graph, _) = build_small(25.0, 32, 400);
        let offset = 10_000u64;
        dg.relocate_pages(|p| PageIndex::new(p.as_u64() + offset))
            .unwrap();
        // Every node still resolves through the (rewritten) directory...
        for v in graph.nodes() {
            let addr = dg.directory().primary_addr(v).unwrap();
            let p = dg.image().parse_section(addr).unwrap();
            assert_eq!(p.node(), v);
            // ...and inline neighbor addresses still point at the right
            // nodes in the new location.
            for (i, &naddr) in p.as_primary().unwrap().inline_neighbors.iter().enumerate() {
                assert_eq!(
                    dg.image().parse_section(naddr).unwrap().node(),
                    graph.neighbors(v)[i]
                );
            }
        }
        // Old locations are gone.
        assert!(!dg.image().contains_page(PageIndex::new(0)));
    }

    #[test]
    fn relocation_rejects_colliding_map() {
        let (mut dg, _, _) = build_small(25.0, 32, 200);
        let err = dg.relocate_pages(|_| PageIndex::new(7)).unwrap_err();
        assert!(err.contains("two pages"), "{err}");
    }

    #[test]
    fn plan_shape_fixed_point() {
        // Degenerate: everything inline.
        let s = plan_shape(10, 64, 4096, secondary_capacity(4096)).unwrap();
        assert_eq!(s.n_inline, 10);
        assert!(s.sec_ranges.is_empty());
        // Forced overflow.
        let s = plan_shape(5_000, 1_000, 4096, secondary_capacity(4096)).unwrap();
        assert!(s.n_inline < 5_000);
        let covered: u32 = s.sec_ranges.iter().map(|&(_, c)| c).sum();
        assert_eq!(s.n_inline + covered as usize, 5_000);
        // Ranges contiguous.
        let mut expect = s.n_inline as u32;
        for &(start, count) in &s.sec_ranges {
            assert_eq!(start, expect);
            expect += count;
        }
    }
}
