//! Security validation of DirectGraph images (paper §VI-E).
//!
//! DirectGraph bypasses the host filesystem and the FTL, so the firmware
//! must keep customized commands from touching regular storage. The
//! paper's defense is three-layered, and [`Validator`] implements the
//! first two (the third — runtime header checks — lives in the modeled
//! die sampler, which refuses sections that fail to parse):
//!
//! 1. **At flush time**: every write destination and every section
//!    address embedded in page contents must fall inside the blocks
//!    allocated to this DirectGraph.
//! 2. **At mini-batch start**: the primary-section addresses of received
//!    target nodes must point into allocated blocks and at primary
//!    sections.

use std::fmt;

use beacon_graph::NodeId;

use crate::addr::{PageIndex, PhysAddr};
use crate::build::DirectGraph;
use crate::image::Section;

/// A §VI-E validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An embedded address points outside the DirectGraph allocation.
    AddressOutOfBounds {
        source_page: PageIndex,
        addr: PhysAddr,
    },
    /// A target address supplied by the host does not parse as a section.
    TargetUnparsable { node: NodeId, addr: PhysAddr },
    /// A target address parses, but not to a primary section of the
    /// claimed node.
    TargetMismatch { node: NodeId, addr: PhysAddr },
    /// A page failed to parse during flush-time verification.
    PageCorrupt { page: PageIndex, detail: String },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::AddressOutOfBounds { source_page, addr } => {
                write!(f, "page {source_page} embeds out-of-bounds address {addr}")
            }
            ValidationError::TargetUnparsable { node, addr } => {
                write!(f, "target {node} address {addr} does not parse")
            }
            ValidationError::TargetMismatch { node, addr } => {
                write!(
                    f,
                    "target {node} address {addr} resolves to a different section"
                )
            }
            ValidationError::PageCorrupt { page, detail } => {
                write!(f, "page {page} corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Firmware-side validator for a DirectGraph image.
///
/// # Examples
///
/// ```
/// use beacon_graph::{DatasetSpec, Dataset, NodeId};
/// use directgraph::{build::DirectGraphBuilder, AddrLayout, Validator};
///
/// let spec = DatasetSpec::preset(Dataset::Ogbn).at_scale(200);
/// let (g, x) = (spec.build_graph(1), spec.build_features(1));
/// let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
///     .build(&g, &x).unwrap();
/// let validator = Validator::new(&dg);
/// assert!(validator.verify_image().is_ok());
/// let t = NodeId::new(0);
/// let addr = dg.directory().primary_addr(t).unwrap();
/// assert!(validator.verify_target(t, addr).is_ok());
/// ```
#[derive(Debug)]
pub struct Validator<'a> {
    dg: &'a DirectGraph,
}

impl<'a> Validator<'a> {
    /// Creates a validator over a DirectGraph image.
    pub fn new(dg: &'a DirectGraph) -> Self {
        Validator { dg }
    }

    /// Flush-time check: walks every written page and verifies that all
    /// embedded section addresses (inline neighbors, secondary pointers)
    /// stay within the allocated page set.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify_image(&self) -> Result<(), ValidationError> {
        let layout = self.dg.layout();
        for (page_idx, _) in self.dg.image().iter_pages() {
            let sections = self.dg.image().parse_all_sections(page_idx).map_err(|e| {
                ValidationError::PageCorrupt {
                    page: page_idx,
                    detail: e.to_string(),
                }
            })?;
            for section in sections {
                let embedded: Vec<PhysAddr> = match &section {
                    Section::Primary(p) => p
                        .secondary_addrs
                        .iter()
                        .chain(p.inline_neighbors.iter())
                        .copied()
                        .collect(),
                    Section::Secondary(s) => s.neighbors.clone(),
                };
                for addr in embedded {
                    let (page, _) = layout.unpack(addr);
                    if !self.dg.image().contains_page(page) {
                        return Err(ValidationError::AddressOutOfBounds {
                            source_page: page_idx,
                            addr,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Mini-batch check: verifies a host-supplied target address points
    /// at the primary section of the claimed node.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidationError`] describing the violation.
    pub fn verify_target(&self, node: NodeId, addr: PhysAddr) -> Result<(), ValidationError> {
        let section = self
            .dg
            .image()
            .parse_section(addr)
            .map_err(|_| ValidationError::TargetUnparsable { node, addr })?;
        match section {
            Section::Primary(p) if p.node == node => Ok(()),
            _ => Err(ValidationError::TargetMismatch { node, addr }),
        }
    }

    /// Verifies a whole mini-batch of `(node, address)` targets.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify_batch(
        &self,
        targets: impl IntoIterator<Item = (NodeId, PhysAddr)>,
    ) -> Result<(), ValidationError> {
        for (node, addr) in targets {
            self.verify_target(node, addr)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrLayout;
    use crate::build::DirectGraphBuilder;
    use beacon_graph::{generate, FeatureTable};

    fn small_dg() -> DirectGraph {
        let graph = generate::uniform(100, 8, 5);
        let features = FeatureTable::synthetic(100, 16, 5);
        DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap()
    }

    #[test]
    fn well_formed_image_passes() {
        let dg = small_dg();
        assert!(Validator::new(&dg).verify_image().is_ok());
    }

    #[test]
    fn valid_batch_passes() {
        let dg = small_dg();
        let validator = Validator::new(&dg);
        let batch: Vec<_> = (0..10)
            .map(|i| {
                let v = NodeId::new(i);
                (v, dg.directory().primary_addr(v).unwrap())
            })
            .collect();
        assert!(validator.verify_batch(batch).is_ok());
    }

    #[test]
    fn bogus_target_address_rejected() {
        let dg = small_dg();
        let validator = Validator::new(&dg);
        let bogus = dg.layout().pack(PageIndex::new(999_999), 0);
        let err = validator.verify_target(NodeId::new(0), bogus).unwrap_err();
        assert!(matches!(err, ValidationError::TargetUnparsable { .. }));
    }

    #[test]
    fn mismatched_target_node_rejected() {
        let dg = small_dg();
        let validator = Validator::new(&dg);
        // Claim node 0 but hand node 1's address.
        let addr1 = dg.directory().primary_addr(NodeId::new(1)).unwrap();
        let err = validator.verify_target(NodeId::new(0), addr1).unwrap_err();
        assert!(matches!(err, ValidationError::TargetMismatch { .. }));
        assert!(err.to_string().contains("different section"));
    }

    #[test]
    fn tampered_page_detected() {
        let mut dg = small_dg();
        // Corrupt an inline-neighbor address in page 0 to point far away.
        let layout = dg.layout();
        let (page_idx, _) = layout.unpack(dg.directory().primary_addr(NodeId::new(0)).unwrap());
        let mut page = dg.image().read_page(page_idx).unwrap().to_vec();
        // The first primary section's last 4 bytes are an inline addr;
        // find section length and stomp the tail.
        let len = u16::from_le_bytes([page[2], page[3]]) as usize;
        let evil = layout.pack(PageIndex::new(1 << 20), 0);
        page[len - 4..len].copy_from_slice(&evil.to_raw().to_le_bytes());
        dg.image_mut().write_page(page_idx, page.into_boxed_slice());
        let err = Validator::new(&dg).verify_image().unwrap_err();
        assert!(matches!(err, ValidationError::AddressOutOfBounds { .. }));
    }
}
