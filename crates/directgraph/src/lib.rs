//! # directgraph — the DirectGraph GNN storage format (paper §IV-A, §VI)
//!
//! DirectGraph is BeaconGNN's key software contribution: a graph layout in
//! which every neighbor reference is a **flash physical address**, so that
//! once the host supplies the primary-section addresses of a mini-batch's
//! target nodes, all further addressing happens inside the SSD with no
//! filesystem, NVMe-stack, or FTL translation — which is what unlocks
//! out-of-order, streaming neighbor sampling.
//!
//! The format (Fig 8 of the paper):
//!
//! * The graph is serialized into **primary** and **secondary pages**,
//!   aligned to physical flash pages.
//! * Each page holds one or more variable-length **sections**. A node's
//!   primary section carries its metadata, feature vector, the addresses
//!   of its secondary sections, and as many neighbor addresses as fit;
//!   overflow neighbors live in secondary sections.
//! * A neighbor reference is a 4-byte [`PhysAddr`]: 28 bits of flash page
//!   index + 4 bits of in-page section index for a 1 TB SSD with 4 KB
//!   pages (larger pages shift bits from page to slot index — see
//!   [`AddrLayout`]).
//! * Low-degree nodes' primary sections are compacted, several to a page
//!   (the paper's "linked array" compaction).
//!
//! This crate provides the byte-exact layout ([`layout`]), Algorithm 1
//! construction ([`build`]), an in-memory page store standing in for the
//! flash array ([`PageStore`]), the section parser used by the modeled
//! die-level sampler ([`image`]), the firmware security validation of
//! §VI-E ([`verify`]), and the Table IV storage-inflation accounting
//! ([`inflation`]).
//!
//! ## Example
//!
//! ```
//! use beacon_graph::{Dataset, DatasetSpec};
//! use directgraph::{build::DirectGraphBuilder, AddrLayout};
//!
//! let spec = DatasetSpec::preset(Dataset::Ogbn).at_scale(500);
//! let graph = spec.build_graph(7);
//! let feats = spec.build_features(7);
//! let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
//!     .build(&graph, &feats)
//!     .unwrap();
//! // Every node is reachable through its primary-section address.
//! let target = beacon_graph::NodeId::new(0);
//! let addr = dg.directory().primary_addr(target).unwrap();
//! let section = dg.image().parse_section(addr).unwrap();
//! assert_eq!(section.node(), target);
//! ```

pub mod addr;
pub mod build;
pub mod image;
pub mod inflation;
pub mod layout;
pub mod serial;
pub mod verify;

pub use addr::{AddrLayout, PageIndex, PhysAddr};
pub use build::{BuildError, DirectGraph, DirectGraphBuilder, NodeDirectory};
pub use image::{PageStore, PrimaryView, SecondaryView, Section, SectionParseError, SectionView};
pub use inflation::InflationReport;
pub use serial::LoadError;
pub use verify::{ValidationError, Validator};
