//! Flash physical addressing for DirectGraph.
//!
//! A DirectGraph neighbor reference is a 4-byte physical address. In the
//! paper's baseline configuration (1 TB SSD, 4 KB pages) it splits into
//! 28 bits of flash-page index and 4 bits of in-page section index;
//! doubling the page size frees one page bit for the slot index
//! ("using larger pages means more bits can be used for section
//! indexing").

use std::fmt;

/// The bit split of a 4-byte DirectGraph physical address.
///
/// # Examples
///
/// ```
/// use directgraph::AddrLayout;
/// let l = AddrLayout::for_page_size(4096).unwrap();
/// assert_eq!(l.page_bits(), 28);
/// assert_eq!(l.slot_bits(), 4);
/// assert_eq!(l.max_sections_per_page(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrLayout {
    page_bits: u32,
    slot_bits: u32,
    page_size: usize,
}

impl AddrLayout {
    /// Total address width in bits (a 4-byte address).
    pub const ADDR_BITS: u32 = 32;

    /// Layout for a given flash page size, per the paper's rule: 4 KB
    /// pages get 4 slot bits / 28 page bits; each doubling of the page
    /// size moves one bit from page index to slot index.
    ///
    /// Returns `None` if `page_size` is not a power-of-two multiple of
    /// 2 KB in `[2 KB, 64 KB]` (the paper sweeps 2–16 KB).
    pub fn for_page_size(page_size: usize) -> Option<Self> {
        if !(2048..=65536).contains(&page_size) || !page_size.is_power_of_two() {
            return None;
        }
        // 4 KB -> 4 slot bits; 2 KB -> 3; 8 KB -> 5; ...
        let shift = (page_size / 2048).trailing_zeros(); // 2KB->0, 4KB->1, ...
        let slot_bits = 3 + shift;
        Some(AddrLayout {
            page_bits: Self::ADDR_BITS - slot_bits,
            slot_bits,
            page_size,
        })
    }

    /// Number of page-index bits.
    pub const fn page_bits(self) -> u32 {
        self.page_bits
    }

    /// Number of in-page slot-index bits.
    pub const fn slot_bits(self) -> u32 {
        self.slot_bits
    }

    /// The flash page size this layout was derived for, in bytes.
    pub const fn page_size(self) -> usize {
        self.page_size
    }

    /// Maximum number of addressable sections in one page (`2^slot_bits`).
    pub const fn max_sections_per_page(self) -> usize {
        1 << self.slot_bits
    }

    /// Largest addressable page index.
    pub const fn max_page_index(self) -> u64 {
        (1u64 << self.page_bits) - 1
    }

    /// Addressable capacity in bytes (`2^page_bits × page_size`).
    pub fn addressable_bytes(self) -> u128 {
        (1u128 << self.page_bits) * self.page_size as u128
    }

    /// Packs a page index and slot into a [`PhysAddr`].
    ///
    /// # Panics
    ///
    /// Panics if `page` or `slot` exceed the layout's field widths.
    pub fn pack(self, page: PageIndex, slot: usize) -> PhysAddr {
        assert!(
            page.as_u64() <= self.max_page_index(),
            "page index overflows layout"
        );
        assert!(
            slot < self.max_sections_per_page(),
            "slot index overflows layout"
        );
        PhysAddr(((page.as_u64() as u32) << self.slot_bits) | slot as u32)
    }

    /// Unpacks a [`PhysAddr`] into `(page, slot)`.
    pub fn unpack(self, addr: PhysAddr) -> (PageIndex, usize) {
        let slot_mask = (1u32 << self.slot_bits) - 1;
        (
            PageIndex::new((addr.0 >> self.slot_bits) as u64),
            (addr.0 & slot_mask) as usize,
        )
    }
}

/// Index of a physical flash page within the DirectGraph address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageIndex(u64);

impl PageIndex {
    /// Creates a page index.
    pub const fn new(v: u64) -> Self {
        PageIndex(v)
    }

    /// The raw index value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The raw index as `usize`.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A packed 4-byte DirectGraph physical address (page index + in-page
/// section slot).
///
/// Interpretation requires the [`AddrLayout`] it was packed with; the
/// newtype deliberately has no accessors of its own so an address can
/// never be unpacked with the wrong layout silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub(crate) u32);

impl PhysAddr {
    /// Raw 32-bit representation (as serialized into page bytes).
    pub const fn to_raw(self) -> u32 {
        self.0
    }

    /// Reconstructs an address from its raw 32-bit representation.
    pub const fn from_raw(v: u32) -> Self {
        PhysAddr(v)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#010x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_layout() {
        let l = AddrLayout::for_page_size(4096).unwrap();
        assert_eq!(l.page_bits(), 28);
        assert_eq!(l.slot_bits(), 4);
        assert_eq!(l.max_sections_per_page(), 16);
        // 2^28 pages x 4KB = 1 TB, exactly the paper's example.
        assert_eq!(l.addressable_bytes(), 1u128 << 40);
    }

    #[test]
    fn larger_pages_shift_bits_to_slots() {
        let l2 = AddrLayout::for_page_size(2048).unwrap();
        let l8 = AddrLayout::for_page_size(8192).unwrap();
        let l16 = AddrLayout::for_page_size(16384).unwrap();
        assert_eq!((l2.page_bits(), l2.slot_bits()), (29, 3));
        assert_eq!((l8.page_bits(), l8.slot_bits()), (27, 5));
        assert_eq!((l16.page_bits(), l16.slot_bits()), (26, 6));
        // Addressable capacity stays 1 TB across the sweep.
        assert_eq!(l2.addressable_bytes(), 1u128 << 40);
        assert_eq!(l16.addressable_bytes(), 1u128 << 40);
    }

    #[test]
    fn invalid_page_sizes_rejected() {
        assert!(AddrLayout::for_page_size(1024).is_none());
        assert!(AddrLayout::for_page_size(3000).is_none());
        assert!(AddrLayout::for_page_size(131072).is_none());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let l = AddrLayout::for_page_size(4096).unwrap();
        let addr = l.pack(PageIndex::new(123_456), 9);
        let (p, s) = l.unpack(addr);
        assert_eq!(p, PageIndex::new(123_456));
        assert_eq!(s, 9);
    }

    #[test]
    fn raw_roundtrip() {
        let l = AddrLayout::for_page_size(4096).unwrap();
        let addr = l.pack(PageIndex::new(42), 3);
        assert_eq!(PhysAddr::from_raw(addr.to_raw()), addr);
    }

    #[test]
    #[should_panic(expected = "slot index overflows")]
    fn oversized_slot_panics() {
        let l = AddrLayout::for_page_size(4096).unwrap();
        l.pack(PageIndex::new(0), 16);
    }

    #[test]
    #[should_panic(expected = "page index overflows")]
    fn oversized_page_panics() {
        let l = AddrLayout::for_page_size(4096).unwrap();
        l.pack(PageIndex::new(1 << 28), 0);
    }

    #[test]
    fn display_formats() {
        let l = AddrLayout::for_page_size(4096).unwrap();
        let addr = l.pack(PageIndex::new(1), 2);
        assert_eq!(addr.to_string(), "@0x00000012");
        assert_eq!(PageIndex::new(5).to_string(), "p5");
    }
}
