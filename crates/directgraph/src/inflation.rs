//! Storage-inflation accounting (paper Table IV, §VII-F).
//!
//! Converting a raw dataset (CSR neighbor lists + feature table) into
//! DirectGraph inflates storage because pages are the allocation unit:
//! fragmentation, section headers, and — for graphs with short sections —
//! the in-page slot-index capacity leave page bytes unused. The paper
//! reports 2.8–4.1% inflation for four workloads and 32.3% for OGBN,
//! whose low average degree (28) yields mostly short sections.

use std::fmt;

/// The inflation report for one converted dataset.
///
/// # Examples
///
/// ```
/// use directgraph::InflationReport;
/// let r = InflationReport::new(1_000, 1_100, 1_050);
/// assert!((r.inflation_ratio() - 0.10).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InflationReport {
    raw_bytes: u64,
    stored_bytes: u64,
    used_bytes: u64,
}

impl InflationReport {
    /// Creates a report from raw dataset size, total flash bytes
    /// allocated (pages × page size), and section payload bytes used.
    pub fn new(raw_bytes: u64, stored_bytes: u64, used_bytes: u64) -> Self {
        InflationReport {
            raw_bytes,
            stored_bytes,
            used_bytes,
        }
    }

    /// Raw (pre-conversion) dataset bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Flash bytes allocated to the DirectGraph image.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Section payload bytes actually used within allocated pages.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// The Table IV "inflate ratio": extra storage relative to raw
    /// (`stored/raw - 1`).
    pub fn inflation_ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 0.0;
        }
        self.stored_bytes as f64 / self.raw_bytes as f64 - 1.0
    }

    /// Fraction of allocated page bytes holding section payload.
    pub fn page_utilization(&self) -> f64 {
        if self.stored_bytes == 0 {
            return 0.0;
        }
        self.used_bytes as f64 / self.stored_bytes as f64
    }
}

impl fmt::Display for InflationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "raw {} B -> stored {} B (inflation {:.1}%, page utilization {:.1}%)",
            self.raw_bytes,
            self.stored_bytes,
            self.inflation_ratio() * 100.0,
            self.page_utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrLayout;
    use crate::build::DirectGraphBuilder;
    use beacon_graph::{Dataset, DatasetSpec};

    fn inflation_for(d: Dataset, n: usize) -> f64 {
        let spec = DatasetSpec::preset(d).at_scale(n);
        let graph = spec.build_graph(11);
        let features = spec.build_features(11);
        let dg = DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap();
        dg.inflation(&features).inflation_ratio()
    }

    #[test]
    fn ratio_arithmetic() {
        let r = InflationReport::new(100, 125, 110);
        assert!((r.inflation_ratio() - 0.25).abs() < 1e-12);
        assert!((r.page_utilization() - 0.88).abs() < 1e-12);
        assert_eq!(r.raw_bytes(), 100);
        assert_eq!(r.stored_bytes(), 125);
        assert_eq!(r.used_bytes(), 110);
    }

    #[test]
    fn zero_raw_is_not_a_division_error() {
        let r = InflationReport::new(0, 0, 0);
        assert_eq!(r.inflation_ratio(), 0.0);
        assert_eq!(r.page_utilization(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let s = InflationReport::new(100, 125, 110).to_string();
        assert!(s.contains("25.0%"), "{s}");
    }

    #[test]
    fn ogbn_is_the_inflation_outlier() {
        // Table IV's shape: OGBN (short sections) inflates far more than
        // a long-section workload like amazon.
        let ogbn = inflation_for(Dataset::Ogbn, 2_000);
        let amazon = inflation_for(Dataset::Amazon, 2_000);
        assert!(
            ogbn > 2.0 * amazon,
            "OGBN inflation ({ogbn:.3}) should far exceed amazon ({amazon:.3})"
        );
        assert!(
            ogbn > 0.10,
            "OGBN inflation should be substantial, got {ogbn:.3}"
        );
        assert!(
            amazon < 0.15,
            "amazon inflation should be modest, got {amazon:.3}"
        );
    }
}
