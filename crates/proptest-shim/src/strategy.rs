//! Input-generation strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A source of generated values. The shim drops proptest's value-tree /
/// shrinking machinery: a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite values only: tests feed these into numeric pipelines.
        ((rng.unit_f64() - 0.5) * 2.0 * f32::MAX as f64 * 0.5) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 1e300
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (2.0f64..60.0).generate(&mut rng);
            assert!((2.0..60.0).contains(&f));
            let i = (-4i32..9).generate(&mut rng);
            assert!((-4..9).contains(&i));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(4);
        let (a, b, c) = (0u8..3, 10usize..20, any::<bool>()).generate(&mut rng);
        assert!(a < 3);
        assert!((10..20).contains(&b));
        let _: bool = c;
    }
}
