//! Test configuration and the deterministic RNG behind the shim.

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of input tuples drawn per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim runs simulator-heavy
        // bodies, so it trades volume for wall-clock while staying well
        // above smoke-test coverage.
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 generator: tiny, portable, and plenty for input synthesis.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from raw state.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seeds the stream from a test's name, so every test draws an
    /// independent, stable input sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input synthesis.
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
