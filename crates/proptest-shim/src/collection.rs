//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s with lengths drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s of `element` values with length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = vec(any::<u8>(), 1..30).generate(&mut rng);
            assert!((1..30).contains(&v.len()));
        }
    }

    #[test]
    fn vec_of_tuples() {
        let mut rng = TestRng::new(10);
        let v = vec((0u64..48, any::<bool>()), 1..300).generate(&mut rng);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&(x, _)| x < 48));
    }
}
