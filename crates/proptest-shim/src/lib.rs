//! # proptest (offline shim)
//!
//! A dependency-free, deterministic stand-in for the subset of the
//! [proptest](https://docs.rs/proptest) API this workspace uses, so the
//! property-test suites build and run in environments with no crates-io
//! access. The semantics differ from real proptest in two deliberate
//! ways:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   still derivable from the (test-name-seeded) RNG; there is no
//!   minimization pass.
//! * **Fully deterministic.** Each test's input stream is seeded from
//!   its own name, so failures reproduce bit-identically on every run
//!   and machine — the same replay guarantee the simulator itself makes.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(...)]`), `prop_assert!`, `prop_assert_eq!`,
//! [`Strategy`] for integer/float ranges and tuples, [`any`],
//! `collection::vec`, and [`test_runner::ProptestConfig`].

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Asserts a condition inside a `proptest!` body.
///
/// The shim panics immediately (no shrinking), carrying the formatted
/// message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` item
/// expands to a `#[test]` that draws `ProptestConfig::cases` input
/// tuples from a test-name-seeded deterministic RNG and runs the body
/// on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                let ($($pat,)+) =
                    ($($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+);
                $body
            }
        }
    )*};
}
