//! Regular-I/O vs acceleration mode arbitration (paper §VI-G).
//!
//! BeaconGNN runs in two modes. In **regular-I/O mode** the device
//! serves normal storage requests (and DirectGraph construction). In
//! **acceleration mode** it executes mini-batched GNN jobs; regular
//! requests arriving meanwhile are *deferred to the end of the current
//! mini-batch*, then served before the next batch begins.

use std::collections::VecDeque;

use simkit::SimTime;

/// The device's current operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceMode {
    /// Serving regular storage I/O (and DirectGraph construction).
    RegularIo,
    /// Executing a GNN mini-batch; regular requests defer.
    Acceleration,
}

/// A deferred regular storage request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferredRequest {
    /// The request's LPA.
    pub lpa: u64,
    /// Whether it is a write.
    pub is_write: bool,
    /// When it arrived.
    pub arrival: SimTime,
}

/// Tracks the device mode and the queue of deferred regular requests.
///
/// # Examples
///
/// ```
/// use beacon_ssd::{DeviceMode, ModeController};
/// use simkit::SimTime;
///
/// let mut mc = ModeController::new();
/// mc.enter_acceleration(SimTime::ZERO);
/// assert!(!mc.admit_regular(7, false, SimTime::from_ns(10)));
/// let drained = mc.end_minibatch(SimTime::from_ns(100));
/// assert_eq!(drained.len(), 1);
/// assert_eq!(mc.mode(), DeviceMode::RegularIo);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModeController {
    mode: Option<SimTime>,
    deferred: VecDeque<DeferredRequest>,
    served_immediately: u64,
    served_deferred: u64,
}

impl ModeController {
    /// Creates a controller in regular-I/O mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current mode.
    pub fn mode(&self) -> DeviceMode {
        if self.mode.is_some() {
            DeviceMode::Acceleration
        } else {
            DeviceMode::RegularIo
        }
    }

    /// Enters acceleration mode at `now` (start of a mini-batch).
    pub fn enter_acceleration(&mut self, now: SimTime) {
        self.mode = Some(now);
    }

    /// Offers a regular request. Returns `true` if it may be served
    /// immediately (regular-I/O mode); `false` if it was deferred.
    pub fn admit_regular(&mut self, lpa: u64, is_write: bool, now: SimTime) -> bool {
        match self.mode() {
            DeviceMode::RegularIo => {
                self.served_immediately += 1;
                true
            }
            DeviceMode::Acceleration => {
                self.deferred.push_back(DeferredRequest {
                    lpa,
                    is_write,
                    arrival: now,
                });
                false
            }
        }
    }

    /// Ends the current mini-batch at `now`, returning the deferred
    /// requests to serve (in arrival order) and switching back to
    /// regular-I/O mode.
    pub fn end_minibatch(&mut self, _now: SimTime) -> Vec<DeferredRequest> {
        self.mode = None;
        let drained: Vec<_> = self.deferred.drain(..).collect();
        self.served_deferred += drained.len() as u64;
        drained
    }

    /// Requests currently deferred.
    pub fn deferred_count(&self) -> usize {
        self.deferred.len()
    }

    /// Requests served without deferral so far.
    pub fn served_immediately(&self) -> u64 {
        self.served_immediately
    }

    /// Requests served after deferral so far.
    pub fn served_deferred(&self) -> u64 {
        self.served_deferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_regular_mode() {
        let mc = ModeController::new();
        assert_eq!(mc.mode(), DeviceMode::RegularIo);
        assert_eq!(mc.deferred_count(), 0);
    }

    #[test]
    fn regular_mode_serves_immediately() {
        let mut mc = ModeController::new();
        assert!(mc.admit_regular(1, true, SimTime::ZERO));
        assert_eq!(mc.served_immediately(), 1);
        assert_eq!(mc.deferred_count(), 0);
    }

    #[test]
    fn acceleration_defers_until_batch_end() {
        let mut mc = ModeController::new();
        mc.enter_acceleration(SimTime::ZERO);
        assert_eq!(mc.mode(), DeviceMode::Acceleration);
        assert!(!mc.admit_regular(1, false, SimTime::from_ns(5)));
        assert!(!mc.admit_regular(2, true, SimTime::from_ns(8)));
        assert_eq!(mc.deferred_count(), 2);
        let drained = mc.end_minibatch(SimTime::from_ns(100));
        assert_eq!(drained.len(), 2);
        // FIFO order preserved.
        assert_eq!(drained[0].lpa, 1);
        assert_eq!(drained[1].lpa, 2);
        assert_eq!(mc.mode(), DeviceMode::RegularIo);
        assert_eq!(mc.served_deferred(), 2);
    }

    #[test]
    fn alternating_batches() {
        let mut mc = ModeController::new();
        for batch in 0..3 {
            mc.enter_acceleration(SimTime::from_ns(batch * 100));
            assert!(!mc.admit_regular(batch, false, SimTime::from_ns(batch * 100 + 1)));
            let drained = mc.end_minibatch(SimTime::from_ns(batch * 100 + 50));
            assert_eq!(drained.len(), 1);
        }
        assert_eq!(mc.served_deferred(), 3);
    }
}
