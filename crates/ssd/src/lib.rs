//! # beacon-ssd — the SSD controller substrate (paper §II-B2, §V-B, §VI)
//!
//! Everything between the host interface and the flash dies:
//!
//! * [`config`] — the full device configuration (Table II defaults plus
//!   every Fig 18 sensitivity knob) and the firmware/host cost model.
//! * [`ftl`] — a page-mapped flash translation layer with greedy garbage
//!   collection, per-block P/E accounting, and the §VI-A reserved-block
//!   interface that pins DirectGraph blocks outside regular allocation
//!   and GC.
//! * [`router`] — the channel-level command router of §V-B: per-die
//!   dispatch queues, a round-robin command issuer, and the crossbar
//!   routing function that sends sampling commands to their destination
//!   channel/die without firmware involvement.
//! * [`reliability`] — the §VI-F firmware loops: periodic data scrubbing
//!   of DirectGraph blocks and wear-leveling reclamation that migrates
//!   DirectGraph to fresh blocks, rewriting every embedded physical
//!   address.
//! * [`modes`] — the §VI-G regular-I/O vs acceleration mode arbitration
//!   (regular requests defer to mini-batch boundaries).

pub mod bitmap;
pub mod config;
pub mod ftl;
pub mod gnn_engine;
pub mod host;
pub mod modes;
pub mod nvme;
pub mod reliability;
pub mod router;

pub use bitmap::BlockBitmap;
pub use config::{FabricConfig, FirmwareCosts, HostCosts, SsdConfig};
pub use ftl::{BlockId, Ftl, FtlError, FtlStats, Ppa};
pub use gnn_engine::{BatchState, GnnEngine};
pub use host::{HostAdapter, HostError};
pub use modes::{DeviceMode, ModeController};
pub use nvme::{NvmeCommand, QueuePair, TargetRecord};
pub use reliability::{ReclamationOutcome, ScrubReport, Scrubber};
pub use router::{CommandRouter, RouterStats};
