//! Block-level bitmap metadata (paper §VI-A).
//!
//! DirectGraph allocation happens at block granularity precisely "to
//! minimize metadata (block-level bitmap, length = N_block)". This is
//! that bitmap: one bit per physical block, serializable so the
//! firmware can persist it and rebuild the reserved set at boot.

use crate::ftl::BlockId;

/// A one-bit-per-block reservation map.
///
/// # Examples
///
/// ```
/// use beacon_ssd::bitmap::BlockBitmap;
/// use beacon_ssd::BlockId;
///
/// let mut bm = BlockBitmap::new(100);
/// bm.set(BlockId::new(42), true);
/// assert!(bm.get(BlockId::new(42)));
/// assert_eq!(bm.count_set(), 1);
/// let restored = BlockBitmap::from_bytes(100, &bm.to_bytes()).unwrap();
/// assert!(restored.get(BlockId::new(42)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockBitmap {
    blocks: usize,
    words: Vec<u64>,
}

impl BlockBitmap {
    /// Creates an all-clear bitmap over `blocks` blocks.
    pub fn new(blocks: usize) -> Self {
        BlockBitmap {
            blocks,
            words: vec![0; blocks.div_ceil(64)],
        }
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.blocks
    }

    /// Returns `true` if the bitmap covers zero blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks == 0
    }

    /// Sets or clears `block`'s bit.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn set(&mut self, block: BlockId, value: bool) {
        let i = block.index();
        assert!(i < self.blocks, "block {i} out of range {}", self.blocks);
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Reads `block`'s bit (out-of-range blocks read as clear).
    pub fn get(&self, block: BlockId) -> bool {
        let i = block.index();
        if i >= self.blocks {
            return false;
        }
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the set blocks in index order.
    pub fn iter_set(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks as u32)
            .map(BlockId::new)
            .filter(move |&b| self.get(b))
    }

    /// Serializes to the on-media byte layout (little-endian words).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Restores from the on-media byte layout.
    ///
    /// Returns `None` if `bytes` is shorter than the bitmap needs.
    pub fn from_bytes(blocks: usize, bytes: &[u8]) -> Option<Self> {
        let nwords = blocks.div_ceil(64);
        if bytes.len() < nwords * 8 {
            return None;
        }
        let words = bytes[..nwords * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        Some(BlockBitmap { blocks, words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bm = BlockBitmap::new(130); // crosses word boundaries
        for i in [0u32, 63, 64, 129] {
            bm.set(BlockId::new(i), true);
            assert!(bm.get(BlockId::new(i)));
        }
        assert_eq!(bm.count_set(), 4);
        bm.set(BlockId::new(64), false);
        assert!(!bm.get(BlockId::new(64)));
        assert_eq!(bm.count_set(), 3);
        assert_eq!(bm.len(), 130);
        assert!(!bm.is_empty());
    }

    #[test]
    fn iter_set_in_order() {
        let mut bm = BlockBitmap::new(200);
        for i in [5u32, 100, 199] {
            bm.set(BlockId::new(i), true);
        }
        let set: Vec<u32> = bm.iter_set().map(|b| b.index() as u32).collect();
        assert_eq!(set, vec![5, 100, 199]);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut bm = BlockBitmap::new(77);
        for i in (0..77).step_by(7) {
            bm.set(BlockId::new(i), true);
        }
        let bytes = bm.to_bytes();
        // Metadata is tiny: one bit per block, the §VI-A point.
        assert_eq!(bytes.len(), 16);
        assert_eq!(BlockBitmap::from_bytes(77, &bytes), Some(bm));
    }

    #[test]
    fn truncated_bytes_rejected() {
        assert_eq!(BlockBitmap::from_bytes(100, &[0u8; 7]), None);
    }

    #[test]
    fn out_of_range_reads_clear() {
        let bm = BlockBitmap::new(10);
        assert!(!bm.get(BlockId::new(99)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        BlockBitmap::new(10).set(BlockId::new(10), true);
    }
}
