//! Device configuration and cost model (paper Table II + §III costs).
//!
//! [`SsdConfig`] gathers every parameter the evaluation sweeps:
//! geometry (channels, dies, page size — Fig 18d/e/f), flash timing
//! (read latency for §VII-E, channel bandwidth for Fig 18b), embedded
//! core count (Fig 18c), and the DRAM/PCIe links whose bandwidths bound
//! BG-2 scaling (§VIII). [`FirmwareCosts`] and [`HostCosts`] price the
//! control-path work that distinguishes the platforms.

use beacon_flash::{FlashGeometry, FlashTiming};
use simkit::Duration;

/// Per-work-item firmware processing costs, derived from cycle counts at
/// the embedded cores' clock.
///
/// These are the costs that make firmware-scheduled flash I/O the
/// bottleneck of Challenge 3: request-queue management in DRAM,
/// DMA-configured transfers, and polling-based status checks all charge
/// embedded-core time per flash command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirmwareCosts {
    /// Handling one NVMe command at the I/O poller (acquire + complete).
    pub nvme_command: Duration,
    /// One LPA→PPA mapping lookup.
    pub ftl_lookup: Duration,
    /// Issuing one flash command (status poll + channel program).
    pub flash_issue: Duration,
    /// Handling one flash completion (queue bookkeeping).
    pub flash_complete: Duration,
    /// Configuring one DMA transfer descriptor.
    pub dma_config: Duration,
    /// Parsing one sampling result and extracting follow-up commands.
    pub parse_result: Duration,
    /// Fixed cost of a firmware-software sampling pass over one page.
    pub sample_fixed: Duration,
    /// Incremental cost per sampled neighbor in firmware sampling.
    pub sample_per_neighbor: Duration,
}

impl FirmwareCosts {
    /// Costs at a given embedded-core clock.
    ///
    /// Cycle budgets assume the lean, batched fast path of modern SSD
    /// firmware (queue entries processed in groups per poll cycle, so
    /// the *amortized* per-command cost is ~10² cycles); the NVMe path
    /// is the conventional per-request handler. These budgets are the
    /// calibration point that reproduces the paper's firmware-vs-
    /// hardware-router gap (§VII-B: BG-2 is 41% over BG-DGSP at 4
    /// cores and the gap narrows as cores are added).
    pub fn at_clock(hz: u64) -> Self {
        let cy = |c: u64| Duration::from_cycles(c, hz);
        FirmwareCosts {
            nvme_command: cy(2_000),
            ftl_lookup: cy(100),
            flash_issue: cy(100),
            flash_complete: cy(60),
            dma_config: cy(60),
            parse_result: cy(80),
            // Software sampling over a page in DRAM is the expensive
            // part: section parsing, RNG draws, bounds checks — the
            // cost die-level samplers eliminate (paper §VII-B's 5.47x
            // BG-SP step).
            sample_fixed: cy(1_200),
            sample_per_neighbor: cy(100),
        }
    }

    /// Total firmware time to shepherd one sampling command through a
    /// firmware-controlled backend (issue + completion + parse + DMA).
    pub fn per_command_overhead(&self) -> Duration {
        self.flash_issue + self.flash_complete + self.parse_result + self.dma_config
    }
}

/// Host-side costs for platforms that keep the host in the control path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostCosts {
    /// One NVMe submission/completion round trip (driver + doorbell +
    /// interrupt), excluding data transfer.
    pub nvme_roundtrip: Duration,
    /// Host-side metadata translation per node (node index → file
    /// section → LPA), the per-hop barrier work of Challenge 1.
    pub translate_per_node: Duration,
    /// Host software sampling cost per sampled neighbor (CPU-centric
    /// baseline).
    pub sample_per_neighbor: Duration,
    /// Storage-stack software overhead per I/O request (filesystem +
    /// block layer).
    pub storage_stack_per_io: Duration,
    /// Host CPU cores available to the data-preparation path.
    pub cores: usize,
}

impl HostCosts {
    /// Defaults for a contemporary Linux host with a tuned NVMe stack.
    pub fn default_host() -> Self {
        HostCosts {
            nvme_roundtrip: Duration::from_us(10),
            translate_per_node: Duration::from_ns(300),
            sample_per_neighbor: Duration::from_ns(120),
            storage_stack_per_io: Duration::from_us(2),
            cores: 8,
        }
    }
}

/// The complete simulated-device configuration.
///
/// # Examples
///
/// ```
/// use beacon_ssd::SsdConfig;
/// let cfg = SsdConfig::paper_default();
/// assert_eq!(cfg.geometry.channels, 16);
/// assert_eq!(cfg.geometry.total_dies(), 128);
/// assert_eq!(cfg.cores, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdConfig {
    /// Flash backend organization.
    pub geometry: FlashGeometry,
    /// Flash timing (ULL by default).
    pub timing: FlashTiming,
    /// Embedded processor cores running the firmware.
    pub cores: usize,
    /// Embedded core clock in Hz.
    pub core_hz: u64,
    /// Firmware work-item costs.
    pub firmware: FirmwareCosts,
    /// Host control-path costs.
    pub host: HostCosts,
    /// Internal DRAM bandwidth in bytes/second (the §VIII bottleneck).
    pub dram_bandwidth: u64,
    /// PCIe link bandwidth in bytes/second (Gen4 ×4 per §VII-B).
    pub pcie_bandwidth: u64,
    /// Hardware router latency per command hop (BG-2's parse + crossbar
    /// forward), replacing firmware costs on the sampling path.
    pub router_latency: Duration,
    /// Batching window of the router crossbar's inter-channel forwards:
    /// commands crossing channels are released at the next multiple of
    /// this window. Doubles as the conservative-lookahead epoch of the
    /// partitioned engine (see `beacon_platforms::PartitionedEngine`),
    /// which may only exchange cross-channel work at these boundaries.
    pub router_epoch: Duration,
    /// §VIII mitigation: direct I/O between flash and accelerator SRAM,
    /// bypassing the DRAM staging of retrieved feature vectors.
    pub dram_bypass: bool,
}

impl SsdConfig {
    /// The paper's Table II-style default platform: 16 channels × 8 ULL
    /// dies, 800 MB/s channels, 4 cores at 1 GHz, 12.8 GB/s DRAM, PCIe
    /// Gen4 ×4 (~8 GB/s).
    pub fn paper_default() -> Self {
        let core_hz = 1_000_000_000;
        SsdConfig {
            geometry: FlashGeometry::paper_default(),
            timing: FlashTiming::ull(),
            cores: 4,
            core_hz,
            firmware: FirmwareCosts::at_clock(core_hz),
            host: HostCosts::default_host(),
            dram_bandwidth: 12_800_000_000,
            pcie_bandwidth: 8_000_000_000,
            router_latency: Duration::from_ns(100),
            router_epoch: Duration::from_ns(500),
            dram_bypass: false,
        }
    }

    /// The §VII-E traditional-SSD variant (20 µs reads).
    pub fn traditional() -> Self {
        SsdConfig {
            timing: FlashTiming::traditional(),
            ..Self::paper_default()
        }
    }

    /// Returns the config with a different channel count (Fig 18d; dies
    /// per channel held constant).
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.geometry.channels = channels;
        self
    }

    /// Returns the config with a different dies-per-channel count
    /// (Fig 18e).
    pub fn with_dies_per_channel(mut self, dies: usize) -> Self {
        self.geometry.dies_per_channel = dies;
        self
    }

    /// Returns the config with a different page size (Fig 18f).
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.geometry.page_size = page_size;
        self
    }

    /// Returns the config with a different channel bandwidth (Fig 18b).
    pub fn with_channel_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.timing.channel_bandwidth = bytes_per_sec;
        self
    }

    /// Returns the config with a different core count (Fig 18c).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Returns the config with a different router inter-channel
    /// batching window (the partitioned engine's lookahead epoch).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    pub fn with_router_epoch(mut self, epoch: Duration) -> Self {
        assert!(!epoch.is_zero(), "router epoch must be positive");
        self.router_epoch = epoch;
        self
    }

    /// Returns the config with flash→accelerator-SRAM direct I/O
    /// enabled (§VIII's DRAM-bottleneck mitigation).
    pub fn with_dram_bypass(mut self, bypass: bool) -> Self {
        self.dram_bypass = bypass;
        self
    }

    /// Returns the config with HBM-class internal memory (§VIII's other
    /// mitigation: raise the memory bandwidth).
    pub fn with_hbm(mut self) -> Self {
        self.dram_bandwidth = 100_000_000_000;
        self
    }

    /// Aggregate channel bandwidth across the backend.
    pub fn total_channel_bandwidth(&self) -> u64 {
        self.timing.channel_bandwidth * self.geometry.channels as u64
    }
}

/// The inter-device fabric of a §VIII storage array: the link each SSD
/// uses to reach its peers (PCIe peer-to-peer through the switch, or an
/// NVMe-oF hop through a NIC).
///
/// `hop_latency` is the minimum end-to-end cost of any cross-device
/// message and therefore doubles as the conservative-lookahead window
/// of the array simulation (see `beacon_platforms::ArrayEngine`): no
/// device can affect another sooner than one hop, so device lanes may
/// advance a full hop without synchronizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Per-device egress bandwidth onto the fabric, bytes/second.
    pub bandwidth: u64,
    /// Fixed one-way latency per cross-device hop (switch traversal or
    /// NIC + network round).
    pub hop_latency: Duration,
}

impl FabricConfig {
    /// PCIe Gen4 peer-to-peer through a switch: ~4 GB/s effective per
    /// device (§VIII assumes the P2P path sees about half the host
    /// link), 600 ns switch traversal.
    pub fn pcie_p2p() -> Self {
        FabricConfig {
            bandwidth: 4_000_000_000,
            hop_latency: Duration::from_ns(600),
        }
    }

    /// NVMe-over-Fabrics (RDMA): 100 GbE-class links (~10 GB/s usable)
    /// but microsecond-scale hop latency through the NIC.
    pub fn nvme_of() -> Self {
        FabricConfig {
            bandwidth: 10_000_000_000,
            hop_latency: Duration::from_us(5),
        }
    }

    /// Returns the fabric with a different per-device bandwidth.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth = bytes_per_sec;
        self
    }

    /// Returns the fabric with a different hop latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero — the hop latency is the array
    /// engine's lookahead window, which must be positive.
    pub fn with_hop_latency(mut self, latency: Duration) -> Self {
        assert!(!latency.is_zero(), "fabric hop latency must be positive");
        self.hop_latency = latency;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_text() {
        let c = SsdConfig::paper_default();
        assert_eq!(c.geometry.channels, 16);
        assert_eq!(c.geometry.dies_per_channel, 8);
        assert_eq!(c.timing.read_latency, Duration::from_us(3));
        assert_eq!(c.timing.channel_bandwidth, 800_000_000);
        // 16 x 800 MB/s = 12.8 GB/s — exactly the DRAM bandwidth, which
        // is why §VIII calls DRAM the next bottleneck at 16 channels.
        assert_eq!(c.total_channel_bandwidth(), c.dram_bandwidth);
    }

    #[test]
    fn traditional_variant() {
        let c = SsdConfig::traditional();
        assert_eq!(c.timing.read_latency, Duration::from_us(20));
        assert_eq!(c.geometry.channels, 16);
    }

    #[test]
    fn sweep_builders() {
        let c = SsdConfig::paper_default()
            .with_channels(8)
            .with_dies_per_channel(16)
            .with_page_size(8192)
            .with_channel_bandwidth(2_400_000_000)
            .with_cores(8);
        assert_eq!(c.geometry.channels, 8);
        assert_eq!(c.geometry.dies_per_channel, 16);
        assert_eq!(c.geometry.page_size, 8192);
        assert_eq!(c.timing.channel_bandwidth, 2_400_000_000);
        assert_eq!(c.cores, 8);
    }

    #[test]
    fn firmware_costs_scale_with_clock() {
        let slow = FirmwareCosts::at_clock(500_000_000);
        let fast = FirmwareCosts::at_clock(1_000_000_000);
        assert_eq!(slow.flash_issue.as_ns(), 2 * fast.flash_issue.as_ns());
        assert!(slow.per_command_overhead() > fast.per_command_overhead());
    }

    #[test]
    fn fabric_presets_and_builders() {
        let p2p = FabricConfig::pcie_p2p();
        assert_eq!(p2p.bandwidth, 4_000_000_000);
        assert_eq!(p2p.hop_latency, Duration::from_ns(600));
        let nof = FabricConfig::nvme_of();
        assert!(nof.hop_latency > p2p.hop_latency);
        let thin = p2p
            .with_bandwidth(2_000_000)
            .with_hop_latency(Duration::from_us(1));
        assert_eq!(thin.bandwidth, 2_000_000);
        assert_eq!(thin.hop_latency, Duration::from_us(1));
    }

    #[test]
    #[should_panic(expected = "hop latency must be positive")]
    fn zero_hop_latency_rejected() {
        FabricConfig::pcie_p2p().with_hop_latency(Duration::ZERO);
    }

    #[test]
    fn per_command_overhead_sums_components() {
        let f = FirmwareCosts::at_clock(1_000_000_000);
        assert_eq!(
            f.per_command_overhead(),
            f.flash_issue + f.flash_complete + f.parse_result + f.dma_config
        );
    }
}
