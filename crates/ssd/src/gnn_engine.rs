//! The flash-firmware GNN engine (paper §VI-D).
//!
//! During acceleration mode, the firmware schedules the GNN workflow:
//! it receives mini-batches from the host, runs data preparation on the
//! flash backend, and **pipelines the preparation of the current
//! mini-batch with the computation of the previous one**, keeping the
//! spatial accelerator and the flash backend busy simultaneously. The
//! feature vectors and subgraph-reconstruction metadata of the previous
//! batch live in one half of a double-buffered DRAM region while the
//! other half fills.
//!
//! [`GnnEngine`] is that scheduler as an explicit, testable state
//! machine. The timed engine in `beacon-platforms` embodies the same
//! policy implicitly; this module pins the firmware-visible invariants:
//!
//! * at most one batch prepares and one batch computes at any instant;
//! * computation of batch *i* starts only after its preparation ends
//!   and after computation of batch *i−1* ends;
//! * a DRAM buffer half is recycled only after its batch's computation
//!   completes;
//! * regular I/O admitted mid-batch defers to the batch boundary
//!   (via [`crate::modes::ModeController`]).

use std::collections::VecDeque;
use std::fmt;

use simkit::{Duration, SimTime};

/// Lifecycle of one mini-batch inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchState {
    /// Received from the host, waiting for the flash backend.
    Queued,
    /// Data preparation in flight on the flash backend.
    Preparing,
    /// Prepared; waiting for the accelerator (previous batch computing).
    Ready,
    /// Computation in flight on the spatial accelerator.
    Computing,
    /// Fully processed.
    Done,
}

/// One tracked mini-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRecord {
    /// Host-assigned batch id.
    pub id: u32,
    /// Current state.
    pub state: BatchState,
    /// Which DRAM buffer half holds its prepared data (assigned at
    /// preparation start).
    pub buffer: Option<u8>,
    /// Preparation start time.
    pub prep_start: Option<SimTime>,
    /// Preparation end time.
    pub prep_end: Option<SimTime>,
    /// Computation end time.
    pub compute_end: Option<SimTime>,
}

/// Errors from driving the engine out of protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Another batch is already preparing.
    BackendBusy,
    /// Another batch is already computing.
    AcceleratorBusy,
    /// Both DRAM buffer halves are occupied.
    BuffersFull,
    /// The batch is not in the required state for this transition.
    WrongState { id: u32, state: BatchState },
    /// Unknown batch id.
    UnknownBatch(u32),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BackendBusy => write!(f, "flash backend already preparing a batch"),
            EngineError::AcceleratorBusy => write!(f, "accelerator already computing a batch"),
            EngineError::BuffersFull => write!(f, "both DRAM buffer halves in use"),
            EngineError::WrongState { id, state } => {
                write!(
                    f,
                    "batch {id} in state {state:?} cannot take this transition"
                )
            }
            EngineError::UnknownBatch(id) => write!(f, "unknown batch {id}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The firmware GNN workflow scheduler.
///
/// # Examples
///
/// ```
/// use beacon_ssd::gnn_engine::GnnEngine;
/// use simkit::{Duration, SimTime};
///
/// let mut engine = GnnEngine::new();
/// engine.receive_batch(0, SimTime::ZERO);
/// engine.receive_batch(1, SimTime::ZERO);
/// // Batch 0 prepares, finishes, starts computing...
/// assert_eq!(engine.start_next_prep(SimTime::ZERO).unwrap(), Some(0));
/// engine.finish_prep(0, SimTime::from_ns(100)).unwrap();
/// engine.start_compute_if_ready(SimTime::from_ns(100)).unwrap();
/// // ...while batch 1's preparation overlaps it.
/// assert_eq!(engine.start_next_prep(SimTime::from_ns(100)).unwrap(), Some(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GnnEngine {
    batches: Vec<BatchRecord>,
    queue: VecDeque<u32>,
    preparing: Option<u32>,
    computing: Option<u32>,
    /// Occupancy of the two DRAM buffer halves (§VI-D double buffering).
    buffer_busy: [bool; 2],
    overlap_time: Duration,
}

impl GnnEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a mini-batch arriving from the host at `now`.
    pub fn receive_batch(&mut self, id: u32, _now: SimTime) {
        self.batches.push(BatchRecord {
            id,
            state: BatchState::Queued,
            buffer: None,
            prep_start: None,
            prep_end: None,
            compute_end: None,
        });
        self.queue.push_back(id);
    }

    /// Starts preparing the next queued batch if the backend and a
    /// buffer half are free. Returns the started id, or `None` if the
    /// queue is empty.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BackendBusy`] / [`EngineError::BuffersFull`].
    pub fn start_next_prep(&mut self, now: SimTime) -> Result<Option<u32>, EngineError> {
        if self.preparing.is_some() {
            return Err(EngineError::BackendBusy);
        }
        let Some(&id) = self.queue.front() else {
            return Ok(None);
        };
        let buffer = match self.buffer_busy.iter().position(|&b| !b) {
            Some(b) => b as u8,
            None => return Err(EngineError::BuffersFull),
        };
        self.queue.pop_front();
        let rec = self.record_mut(id)?;
        rec.state = BatchState::Preparing;
        rec.buffer = Some(buffer);
        rec.prep_start = Some(now);
        self.buffer_busy[buffer as usize] = true;
        self.preparing = Some(id);
        Ok(Some(id))
    }

    /// Marks batch `id`'s preparation complete at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::WrongState`] unless the batch is the one
    /// preparing.
    pub fn finish_prep(&mut self, id: u32, now: SimTime) -> Result<(), EngineError> {
        if self.preparing != Some(id) {
            let state = self.record(id)?.state;
            return Err(EngineError::WrongState { id, state });
        }
        // Pipelining accounting: time this prep overlapped a compute.
        if self.computing.is_some() {
            let rec = self.record(id)?;
            let start = rec.prep_start.expect("preparing batch has a start");
            self.overlap_time += now.saturating_duration_since(start);
        }
        let rec = self.record_mut(id)?;
        rec.state = BatchState::Ready;
        rec.prep_end = Some(now);
        self.preparing = None;
        Ok(())
    }

    /// Starts computing the oldest Ready batch if the accelerator is
    /// idle. Returns the started id, or `None` if nothing is ready.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::AcceleratorBusy`].
    pub fn start_compute_if_ready(&mut self, _now: SimTime) -> Result<Option<u32>, EngineError> {
        if self.computing.is_some() {
            return Err(EngineError::AcceleratorBusy);
        }
        let next = self
            .batches
            .iter()
            .filter(|b| b.state == BatchState::Ready)
            .map(|b| b.id)
            .min();
        let Some(id) = next else { return Ok(None) };
        self.record_mut(id)?.state = BatchState::Computing;
        self.computing = Some(id);
        Ok(Some(id))
    }

    /// Marks batch `id`'s computation complete at `now`, recycling its
    /// DRAM buffer half.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::WrongState`] unless the batch is the one
    /// computing.
    pub fn finish_compute(&mut self, id: u32, now: SimTime) -> Result<(), EngineError> {
        if self.computing != Some(id) {
            let state = self.record(id)?.state;
            return Err(EngineError::WrongState { id, state });
        }
        let rec = self.record_mut(id)?;
        rec.state = BatchState::Done;
        rec.compute_end = Some(now);
        let buffer = rec.buffer.expect("computing batch holds a buffer");
        self.buffer_busy[buffer as usize] = false;
        self.computing = None;
        Ok(())
    }

    /// State of batch `id`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownBatch`] if never received.
    pub fn batch_state(&self, id: u32) -> Result<BatchState, EngineError> {
        Ok(self.record(id)?.state)
    }

    /// The batch currently preparing, if any.
    pub fn preparing(&self) -> Option<u32> {
        self.preparing
    }

    /// The batch currently computing, if any.
    pub fn computing(&self) -> Option<u32> {
        self.computing
    }

    /// Total time preparation overlapped computation (the §VI-D
    /// pipelining win).
    pub fn overlap_time(&self) -> Duration {
        self.overlap_time
    }

    /// True when every received batch is done.
    pub fn is_drained(&self) -> bool {
        self.batches.iter().all(|b| b.state == BatchState::Done)
    }

    fn record(&self, id: u32) -> Result<&BatchRecord, EngineError> {
        self.batches
            .iter()
            .find(|b| b.id == id)
            .ok_or(EngineError::UnknownBatch(id))
    }

    fn record_mut(&mut self, id: u32) -> Result<&mut BatchRecord, EngineError> {
        self.batches
            .iter_mut()
            .find(|b| b.id == id)
            .ok_or(EngineError::UnknownBatch(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    /// Drives `n` batches with fixed prep/compute times through the
    /// engine and returns it with the finish time.
    fn run_pipeline(n: u32, prep_ns: u64, compute_ns: u64) -> (GnnEngine, SimTime) {
        let mut e = GnnEngine::new();
        for id in 0..n {
            e.receive_batch(id, t(0));
        }
        let mut now = 0u64;
        let mut prep_done_at: Option<(u32, u64)> = None;
        let mut compute_done_at: Option<(u32, u64)> = None;
        // Simple event loop over the two units.
        if let Some(id) = e.start_next_prep(t(now)).unwrap() {
            prep_done_at = Some((id, now + prep_ns));
        }
        loop {
            match (prep_done_at, compute_done_at) {
                (None, None) => break,
                (p, c) => {
                    // Advance to the earliest pending completion.
                    let next = [p.map(|x| x.1), c.map(|x| x.1)]
                        .into_iter()
                        .flatten()
                        .min()
                        .expect("something pending");
                    now = next;
                    if let Some((id, at)) = p {
                        if at == now {
                            e.finish_prep(id, t(now)).unwrap();
                            prep_done_at = None;
                        }
                    }
                    if let Some((id, at)) = c {
                        if at == now {
                            e.finish_compute(id, t(now)).unwrap();
                            compute_done_at = None;
                        }
                    }
                    if e.computing().is_none() {
                        if let Some(id) = e.start_compute_if_ready(t(now)).unwrap() {
                            compute_done_at = Some((id, now + compute_ns));
                        }
                    }
                    if e.preparing().is_none() {
                        match e.start_next_prep(t(now)) {
                            Ok(Some(id)) => prep_done_at = Some((id, now + prep_ns)),
                            Ok(None) | Err(EngineError::BuffersFull) => {}
                            Err(other) => panic!("{other}"),
                        }
                    }
                }
            }
        }
        (e, t(now))
    }

    #[test]
    fn single_batch_flows_through_states() {
        let mut e = GnnEngine::new();
        e.receive_batch(7, t(0));
        assert_eq!(e.batch_state(7).unwrap(), BatchState::Queued);
        assert_eq!(e.start_next_prep(t(0)).unwrap(), Some(7));
        assert_eq!(e.batch_state(7).unwrap(), BatchState::Preparing);
        e.finish_prep(7, t(100)).unwrap();
        assert_eq!(e.batch_state(7).unwrap(), BatchState::Ready);
        assert_eq!(e.start_compute_if_ready(t(100)).unwrap(), Some(7));
        e.finish_compute(7, t(200)).unwrap();
        assert_eq!(e.batch_state(7).unwrap(), BatchState::Done);
        assert!(e.is_drained());
    }

    #[test]
    fn pipelining_overlaps_prep_and_compute() {
        // prep 100, compute 100: steady state runs both concurrently.
        let (e, end) = run_pipeline(4, 100, 100);
        assert!(e.is_drained());
        // Perfect pipeline: 4 batches finish at prep + 4*compute = 500,
        // not the serial 4*(100+100) = 800.
        assert_eq!(end, t(500));
        assert!(
            e.overlap_time() >= Duration::from_ns(200),
            "overlap {}",
            e.overlap_time()
        );
    }

    #[test]
    fn prep_bound_pipeline() {
        // prep 300 >> compute 50: throughput set by prep alone.
        let (_, end) = run_pipeline(3, 300, 50);
        assert_eq!(end, t(3 * 300 + 50));
    }

    #[test]
    fn compute_bound_pipeline() {
        // compute 300 >> prep 50.
        let (_, end) = run_pipeline(3, 50, 300);
        assert_eq!(end, t(50 + 3 * 300));
    }

    #[test]
    fn backend_exclusivity_enforced() {
        let mut e = GnnEngine::new();
        e.receive_batch(0, t(0));
        e.receive_batch(1, t(0));
        e.start_next_prep(t(0)).unwrap();
        assert_eq!(e.start_next_prep(t(1)), Err(EngineError::BackendBusy));
    }

    #[test]
    fn buffer_halves_limit_outstanding_batches() {
        let mut e = GnnEngine::new();
        for id in 0..3 {
            e.receive_batch(id, t(0));
        }
        // Batch 0 prepared (buffer 0), batch 1 prepared (buffer 1), but
        // neither computed: batch 2 cannot start.
        e.start_next_prep(t(0)).unwrap();
        e.finish_prep(0, t(10)).unwrap();
        e.start_next_prep(t(10)).unwrap();
        e.finish_prep(1, t(20)).unwrap();
        assert_eq!(e.start_next_prep(t(20)), Err(EngineError::BuffersFull));
        // Draining batch 0's compute frees its half.
        e.start_compute_if_ready(t(20)).unwrap();
        e.finish_compute(0, t(30)).unwrap();
        assert_eq!(e.start_next_prep(t(30)).unwrap(), Some(2));
    }

    #[test]
    fn wrong_transitions_are_rejected() {
        let mut e = GnnEngine::new();
        e.receive_batch(0, t(0));
        assert!(matches!(
            e.finish_prep(0, t(1)),
            Err(EngineError::WrongState { .. })
        ));
        assert_eq!(e.batch_state(9), Err(EngineError::UnknownBatch(9)));
        assert!(matches!(
            e.finish_compute(0, t(1)),
            Err(EngineError::WrongState { .. })
        ));
    }

    #[test]
    fn batches_compute_in_order() {
        let mut e = GnnEngine::new();
        for id in 0..2 {
            e.receive_batch(id, t(0));
        }
        e.start_next_prep(t(0)).unwrap();
        e.finish_prep(0, t(10)).unwrap();
        e.start_next_prep(t(10)).unwrap();
        e.finish_prep(1, t(20)).unwrap();
        // Both ready: the oldest computes first.
        assert_eq!(e.start_compute_if_ready(t(20)).unwrap(), Some(0));
    }
}
