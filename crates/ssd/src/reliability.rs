//! Firmware reliability loops (paper §VI-F).
//!
//! Two mechanisms protect pinned DirectGraph blocks:
//!
//! * **Data scrubbing** — during idle time the firmware reads each
//!   DirectGraph block, ECC-checks every page, and — because pages in a
//!   block share retention characteristics — erases and re-programs the
//!   whole block with corrected content as soon as any page shows
//!   errors.
//! * **Wear-leveling reclamation** — pinned blocks take no P/E cycles
//!   while regular blocks absorb all of them; when the P/E gap crosses a
//!   threshold, the firmware migrates the DirectGraph to clean regular
//!   blocks (rewriting all embedded physical addresses) and returns the
//!   old blocks to normal FTL management.

use beacon_flash::{EccOutcome, ReliabilityModel};
use directgraph::{DirectGraph, PageIndex};
use simkit::Duration;

use crate::ftl::{BlockId, Ftl, FtlError};

/// Results of one scrubbing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Pages ECC-checked.
    pub pages_scanned: u64,
    /// Pages whose errors were corrected in-flight.
    pub pages_corrected: u64,
    /// Pages with uncorrectable errors (caught before data loss only if
    /// scrubbing outpaces error accumulation).
    pub pages_uncorrectable: u64,
    /// Blocks erased and re-programmed with corrected content.
    pub blocks_reprogrammed: u64,
}

/// Outcome of a wear-leveling reclamation attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ReclamationOutcome {
    /// The wear gap was below threshold; nothing moved.
    NotNeeded { wear_gap: f64 },
    /// DirectGraph migrated: pages moved and old blocks released.
    Migrated {
        pages_moved: u64,
        blocks_released: usize,
    },
}

/// The firmware scrubbing/wear-management engine for one DirectGraph.
#[derive(Debug)]
pub struct Scrubber {
    reliability: ReliabilityModel,
    pages_per_block: usize,
    /// P/E cycles accrued by scrub re-programs, per DirectGraph block
    /// (indexed by page-range block number).
    scrub_pe: Vec<u32>,
}

impl Scrubber {
    /// Creates a scrubber with the given error model and block size.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_block` is zero.
    pub fn new(reliability: ReliabilityModel, pages_per_block: usize) -> Self {
        assert!(pages_per_block > 0, "pages_per_block must be positive");
        Scrubber {
            reliability,
            pages_per_block,
            scrub_pe: Vec::new(),
        }
    }

    /// Runs one scrubbing pass over every written DirectGraph page,
    /// with `retention` elapsed since the last pass.
    pub fn scrub_pass(&mut self, dg: &DirectGraph, retention: Duration) -> ScrubReport {
        let mut report = ScrubReport::default();
        let mut dirty_blocks: Vec<usize> = Vec::new();
        for (idx, _) in dg.image().iter_pages() {
            let block = idx.as_usize() / self.pages_per_block;
            if self.scrub_pe.len() <= block {
                self.scrub_pe.resize(block + 1, 0);
            }
            report.pages_scanned += 1;
            match self
                .reliability
                .read_outcome(retention, self.scrub_pe[block] as u64)
            {
                EccOutcome::Clean => {}
                EccOutcome::Corrected(_) => {
                    report.pages_corrected += 1;
                    if dirty_blocks.last() != Some(&block) {
                        dirty_blocks.push(block);
                    }
                }
                EccOutcome::Uncorrectable(_) => {
                    report.pages_uncorrectable += 1;
                    if dirty_blocks.last() != Some(&block) {
                        dirty_blocks.push(block);
                    }
                }
            }
        }
        dirty_blocks.dedup();
        for block in dirty_blocks {
            // Erase + re-program the block with corrected content.
            self.scrub_pe[block] += 1;
            report.blocks_reprogrammed += 1;
        }
        report
    }

    /// Total scrub-induced P/E cycles so far.
    pub fn scrub_pe_total(&self) -> u64 {
        self.scrub_pe.iter().map(|&c| c as u64).sum()
    }

    /// The underlying error model (for inspecting counters).
    pub fn reliability(&self) -> &ReliabilityModel {
        &self.reliability
    }
}

/// Checks the wear gap and, if it exceeds `threshold` P/E cycles,
/// migrates the DirectGraph to fresh blocks: reserves replacement blocks
/// in the FTL, relocates every page (rewriting embedded addresses), and
/// releases the old blocks to regular management.
///
/// `old_blocks` are the FTL blocks currently pinned for this
/// DirectGraph; `page_offset` is where the migrated image starts in the
/// DirectGraph page-index space.
///
/// # Errors
///
/// Returns [`FtlError`] if replacement blocks cannot be reserved, and a
/// corrupt-image error (as `FtlError` is not applicable there) panics in
/// debug via `expect` — scrub before reclaiming.
pub fn reclaim_if_needed(
    dg: &mut DirectGraph,
    ftl: &mut Ftl,
    old_blocks: &mut Vec<BlockId>,
    threshold: f64,
    page_offset: u64,
    pages_per_block: usize,
) -> Result<ReclamationOutcome, FtlError> {
    let gap = ftl.wear_gap();
    if gap < threshold {
        return Ok(ReclamationOutcome::NotNeeded { wear_gap: gap });
    }
    let pages = dg.image().pages_written() as u64;
    let blocks_needed = (pages as usize).div_ceil(pages_per_block);
    // Make room for the replacement blocks first: run GC until enough
    // blocks are free (or nothing more can be reclaimed).
    while ftl.free_blocks() < blocks_needed {
        match ftl.gc_once()? {
            Some(_) => {}
            None => break,
        }
    }
    let new_blocks = ftl.reserve_blocks(blocks_needed)?;
    dg.relocate_pages(|p: PageIndex| PageIndex::new(p.as_u64() + page_offset))
        .expect("image must be clean before reclamation");
    let released = old_blocks.len();
    for b in old_blocks.drain(..) {
        ftl.release_block(b)?;
    }
    *old_blocks = new_blocks;
    Ok(ReclamationOutcome::Migrated {
        pages_moved: pages,
        blocks_released: released,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_flash::FlashGeometry;
    use beacon_graph::{generate, FeatureTable, NodeId};
    use directgraph::{build::DirectGraphBuilder, AddrLayout};

    fn build_dg(n: usize) -> DirectGraph {
        let graph = generate::uniform(n, 6, 2);
        let features = FeatureTable::synthetic(n, 16, 2);
        DirectGraphBuilder::new(AddrLayout::for_page_size(4096).unwrap())
            .build(&graph, &features)
            .unwrap()
    }

    #[test]
    fn clean_flash_needs_no_reprogram() {
        let dg = build_dg(200);
        let mut s = Scrubber::new(ReliabilityModel::z_nand(4096, 1), 8);
        let r = s.scrub_pass(&dg, Duration::ZERO);
        assert_eq!(r.pages_scanned as usize, dg.image().pages_written());
        assert_eq!(r.blocks_reprogrammed, 0);
        assert_eq!(s.scrub_pe_total(), 0);
    }

    #[test]
    fn aged_flash_gets_reprogrammed() {
        let dg = build_dg(400);
        // Accelerated aging: high RBER forces corrections.
        let model = ReliabilityModel::z_nand(4096, 3).with_rber(3e-5);
        let mut s = Scrubber::new(model, 8);
        let r = s.scrub_pass(&dg, Duration::from_secs(86_400 * 30));
        assert!(r.pages_corrected > 0, "expected corrected pages");
        assert!(r.blocks_reprogrammed > 0);
        assert_eq!(s.scrub_pe_total(), r.blocks_reprogrammed);
    }

    #[test]
    fn scrubbing_keeps_uncorrectable_at_bay() {
        let dg = build_dg(400);
        let model = ReliabilityModel::z_nand(4096, 5).with_rber(1e-6);
        let mut s = Scrubber::new(model, 8);
        let mut total_uncorrectable = 0;
        for _ in 0..10 {
            let r = s.scrub_pass(&dg, Duration::from_secs(3600));
            total_uncorrectable += r.pages_uncorrectable;
        }
        assert_eq!(
            total_uncorrectable, 0,
            "Z-NAND + hourly scrubbing should never lose data"
        );
    }

    #[test]
    fn reclamation_not_needed_below_threshold() {
        let mut dg = build_dg(100);
        let geo = FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 16,
            page_size: 4096,
        };
        let mut ftl = Ftl::new(&geo, 0.1);
        let mut blocks = ftl.reserve_blocks(8).unwrap();
        let out = reclaim_if_needed(&mut dg, &mut ftl, &mut blocks, 10.0, 1 << 20, 16).unwrap();
        assert!(matches!(out, ReclamationOutcome::NotNeeded { .. }));
        assert_eq!(blocks.len(), 8);
    }

    #[test]
    fn reclamation_migrates_and_releases() {
        let mut dg = build_dg(100);
        let pages = dg.image().pages_written() as u64;
        let geo = FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 16,
            pages_per_block: 16,
            page_size: 4096,
        };
        let mut ftl = Ftl::new(&geo, 0.1);
        let mut blocks = ftl.reserve_blocks(8).unwrap();
        let old_first = blocks[0];
        // Wear the regular pool hard: churn over most of the logical
        // space so GC must erase regular blocks repeatedly.
        let logical = ftl.logical_pages() * 7 / 10;
        for _ in 0..8 {
            for lpa in 0..logical {
                ftl.write(lpa).unwrap();
            }
        }
        assert!(ftl.wear_gap() > 0.0);
        let out = reclaim_if_needed(&mut dg, &mut ftl, &mut blocks, 0.001, 1 << 20, 16).unwrap();
        match out {
            ReclamationOutcome::Migrated {
                pages_moved,
                blocks_released,
            } => {
                assert_eq!(pages_moved, pages);
                assert_eq!(blocks_released, 8);
            }
            other => panic!("expected migration, got {other:?}"),
        }
        // Old block returned to the pool; new blocks reserved.
        assert!(!ftl.is_reserved(old_first));
        assert!(blocks.iter().all(|&b| ftl.is_reserved(b)));
        // Graph still resolvable after migration.
        let addr = dg.directory().primary_addr(NodeId::new(0)).unwrap();
        assert_eq!(
            dg.image().parse_section(addr).unwrap().node(),
            NodeId::new(0)
        );
    }
}
