//! Page-mapped flash translation layer (paper §II-B2, §VI-A).
//!
//! A conventional FTL maps logical page addresses (LPAs) to physical
//! page addresses (PPAs), allocates pages log-structured into open
//! blocks, garbage-collects blocks with invalid pages, and tracks per-
//! block program/erase wear. BeaconGNN extends it with a **reserved
//! block list**: physical blocks handed to the host for direct
//! DirectGraph manipulation, marked unusable inside the FTL so regular
//! allocation and GC never touch them (§VI-A, §VI-E), at block
//! granularity to minimize metadata (a block-level bitmap).

use std::collections::VecDeque;
use std::fmt;

use beacon_flash::FlashGeometry;

/// A physical page address: flat page index across the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppa(u64);

impl Ppa {
    /// Creates a PPA from a flat page index.
    pub const fn new(v: u64) -> Self {
        Ppa(v)
    }

    /// The flat page index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppa{}", self.0)
    }
}

/// A physical block id: flat block index across the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id.
    pub const fn new(v: u32) -> Self {
        BlockId(v)
    }

    /// The flat block index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// FTL operation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// No free blocks remain (device full even after GC).
    OutOfSpace,
    /// The LPA exceeds the exported logical capacity.
    LpaOutOfRange { lpa: u64, logical_pages: u64 },
    /// Not enough free blocks to satisfy a reservation.
    ReservationTooLarge { requested: usize, available: usize },
    /// The block is not currently reserved.
    NotReserved(BlockId),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::OutOfSpace => write!(f, "no free blocks available"),
            FtlError::LpaOutOfRange { lpa, logical_pages } => {
                write!(f, "lpa {lpa} outside logical capacity {logical_pages}")
            }
            FtlError::ReservationTooLarge {
                requested,
                available,
            } => {
                write!(
                    f,
                    "cannot reserve {requested} blocks, only {available} free"
                )
            }
            FtlError::NotReserved(b) => write!(f, "{b} is not reserved"),
        }
    }
}

impl std::error::Error for FtlError {}

/// Garbage-collection victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GcPolicy {
    /// Pick the full block with the fewest valid pages (least copy
    /// work right now).
    #[default]
    Greedy,
    /// Cost-benefit (LFS-style): weigh reclaimable space against copy
    /// cost and block age — `(1−u)/(1+u) × age` — which beats greedy
    /// when the workload has hot and cold data.
    CostBenefit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Free,
    Open,
    Full,
    Reserved,
}

#[derive(Debug, Clone)]
struct BlockInfo {
    state: BlockState,
    written: usize,
    valid: usize,
    pe_cycles: u32,
    /// Logical clock of the last page write into this block (for the
    /// cost-benefit age term).
    last_write: u64,
}

/// Aggregate FTL statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtlStats {
    /// Pages written on behalf of the host.
    pub host_writes: u64,
    /// Pages rewritten by garbage collection.
    pub gc_writes: u64,
    /// Blocks erased.
    pub erases: u64,
}

impl FtlStats {
    /// Write amplification factor: total writes / host writes.
    pub fn waf(&self) -> f64 {
        if self.host_writes == 0 {
            return 1.0;
        }
        (self.host_writes + self.gc_writes) as f64 / self.host_writes as f64
    }

    /// Writes the stats into one section of a per-run metrics report.
    pub fn record_into(&self, s: &mut simkit::obs::Section) {
        s.set_u64("host_writes", self.host_writes);
        s.set_u64("gc_writes", self.gc_writes);
        s.set_u64("erases", self.erases);
        s.set_f64("waf", self.waf());
    }
}

/// A page-mapped FTL with greedy GC and reserved-block support.
///
/// # Examples
///
/// ```
/// use beacon_flash::FlashGeometry;
/// use beacon_ssd::Ftl;
///
/// let mut geo = FlashGeometry::paper_default();
/// geo.blocks_per_plane = 4; // keep the example small
/// let mut ftl = Ftl::new(&geo, 0.07);
/// let ppa = ftl.write(0).unwrap();
/// assert_eq!(ftl.translate(0), Some(ppa));
/// ```
#[derive(Debug, Clone)]
pub struct Ftl {
    pages_per_block: usize,
    map: Vec<Option<Ppa>>,
    rmap: Vec<Option<u64>>,
    blocks: Vec<BlockInfo>,
    free: VecDeque<BlockId>,
    open: Option<BlockId>,
    stats: FtlStats,
    gc_threshold_free_blocks: usize,
    policy: GcPolicy,
    write_clock: u64,
}

impl Ftl {
    /// Creates an FTL over `geometry` exporting `1 - overprovision` of
    /// the physical capacity as logical space.
    ///
    /// # Panics
    ///
    /// Panics if `overprovision` is not in `(0, 1)` or the geometry has
    /// fewer than 4 blocks.
    pub fn new(geometry: &FlashGeometry, overprovision: f64) -> Self {
        assert!((0.0..1.0).contains(&overprovision) && overprovision > 0.0);
        let total_blocks =
            geometry.total_dies() * geometry.planes_per_die * geometry.blocks_per_plane;
        assert!(total_blocks >= 4, "need at least 4 blocks");
        let pages_per_block = geometry.pages_per_block;
        let physical_pages = total_blocks * pages_per_block;
        let logical_pages = ((physical_pages as f64) * (1.0 - overprovision)) as usize;
        Ftl {
            pages_per_block,
            map: vec![None; logical_pages],
            rmap: vec![None; physical_pages],
            blocks: vec![
                BlockInfo {
                    state: BlockState::Free,
                    written: 0,
                    valid: 0,
                    pe_cycles: 0,
                    last_write: 0,
                };
                total_blocks
            ],
            free: (0..total_blocks as u32).map(BlockId::new).collect(),
            open: None,
            stats: FtlStats::default(),
            gc_threshold_free_blocks: 2,
            policy: GcPolicy::Greedy,
            write_clock: 0,
        }
    }

    /// Selects the GC victim policy (default [`GcPolicy::Greedy`]).
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.policy = policy;
    }

    /// The active GC policy.
    pub fn gc_policy(&self) -> GcPolicy {
        self.policy
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.map.len() as u64
    }

    /// Looks up the PPA currently backing `lpa`.
    pub fn translate(&self, lpa: u64) -> Option<Ppa> {
        self.map.get(lpa as usize).copied().flatten()
    }

    /// Writes `lpa`, allocating a fresh physical page and invalidating
    /// any previous mapping. Runs GC when free blocks run low.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError`] when the LPA is out of range or space is
    /// exhausted.
    pub fn write(&mut self, lpa: u64) -> Result<Ppa, FtlError> {
        if lpa as usize >= self.map.len() {
            return Err(FtlError::LpaOutOfRange {
                lpa,
                logical_pages: self.logical_pages(),
            });
        }
        self.invalidate(lpa);
        let ppa = self.allocate_page()?;
        self.map[lpa as usize] = Some(ppa);
        self.rmap[ppa.index() as usize] = Some(lpa);
        self.block_of_mut(ppa).valid += 1;
        self.stats.host_writes += 1;
        if self.free.len() < self.gc_threshold_free_blocks {
            self.gc_once()?;
        }
        Ok(ppa)
    }

    /// Discards `lpa`'s mapping (TRIM).
    pub fn trim(&mut self, lpa: u64) {
        self.invalidate(lpa);
    }

    /// Reserves `n` free blocks for DirectGraph: removed from the free
    /// list, excluded from allocation and GC (§VI-A).
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::ReservationTooLarge`] if fewer than `n` free
    /// blocks remain.
    pub fn reserve_blocks(&mut self, n: usize) -> Result<Vec<BlockId>, FtlError> {
        if self.free.len() < n {
            return Err(FtlError::ReservationTooLarge {
                requested: n,
                available: self.free.len(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let b = self.free.pop_front().expect("checked above");
            self.blocks[b.index()].state = BlockState::Reserved;
            out.push(b);
        }
        Ok(out)
    }

    /// Records one program/erase cycle on a reserved block (DirectGraph
    /// flush or scrub re-program).
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::NotReserved`] for non-reserved blocks.
    pub fn record_reserved_pe(&mut self, block: BlockId) -> Result<(), FtlError> {
        let info = self
            .blocks
            .get_mut(block.index())
            .ok_or(FtlError::NotReserved(block))?;
        if info.state != BlockState::Reserved {
            return Err(FtlError::NotReserved(block));
        }
        info.pe_cycles += 1;
        self.stats.erases += 1;
        Ok(())
    }

    /// Returns a reserved block to regular FTL management (after
    /// §VI-F reclamation migrates DirectGraph elsewhere).
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::NotReserved`] if the block was not reserved.
    pub fn release_block(&mut self, block: BlockId) -> Result<(), FtlError> {
        let info = self
            .blocks
            .get_mut(block.index())
            .ok_or(FtlError::NotReserved(block))?;
        if info.state != BlockState::Reserved {
            return Err(FtlError::NotReserved(block));
        }
        info.state = BlockState::Free;
        info.written = 0;
        info.valid = 0;
        self.free.push_back(block);
        Ok(())
    }

    /// Whether `block` is currently reserved for DirectGraph.
    pub fn is_reserved(&self, block: BlockId) -> bool {
        self.blocks
            .get(block.index())
            .is_some_and(|b| b.state == BlockState::Reserved)
    }

    /// The §VI-A block-level reservation bitmap — the compact metadata
    /// (one bit per block) the firmware persists so the reserved set
    /// survives power cycles.
    pub fn reserved_bitmap(&self) -> crate::bitmap::BlockBitmap {
        let mut bm = crate::bitmap::BlockBitmap::new(self.blocks.len());
        for (i, b) in self.blocks.iter().enumerate() {
            if b.state == BlockState::Reserved {
                bm.set(BlockId::new(i as u32), true);
            }
        }
        bm
    }

    /// Mean P/E cycles over regular (non-reserved) blocks.
    pub fn avg_pe_regular(&self) -> f64 {
        let regular: Vec<u32> = self
            .blocks
            .iter()
            .filter(|b| b.state != BlockState::Reserved)
            .map(|b| b.pe_cycles)
            .collect();
        if regular.is_empty() {
            return 0.0;
        }
        regular.iter().map(|&c| c as f64).sum::<f64>() / regular.len() as f64
    }

    /// Mean P/E cycles over reserved blocks.
    pub fn avg_pe_reserved(&self) -> f64 {
        let reserved: Vec<u32> = self
            .blocks
            .iter()
            .filter(|b| b.state == BlockState::Reserved)
            .map(|b| b.pe_cycles)
            .collect();
        if reserved.is_empty() {
            return 0.0;
        }
        reserved.iter().map(|&c| c as f64).sum::<f64>() / reserved.len() as f64
    }

    /// The §VI-F wear gap: how far regular blocks' wear has run ahead of
    /// the pinned DirectGraph blocks'.
    pub fn wear_gap(&self) -> f64 {
        self.avg_pe_regular() - self.avg_pe_reserved()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Free blocks currently available.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    fn invalidate(&mut self, lpa: u64) {
        if let Some(old) = self.map.get_mut(lpa as usize).and_then(Option::take) {
            self.rmap[old.index() as usize] = None;
            let b = self.block_of_mut(old);
            debug_assert!(b.valid > 0);
            b.valid -= 1;
        }
    }

    fn allocate_page(&mut self) -> Result<Ppa, FtlError> {
        loop {
            let open = match self.open {
                Some(b) => b,
                None => {
                    let b = self.free.pop_front().ok_or(FtlError::OutOfSpace)?;
                    self.blocks[b.index()].state = BlockState::Open;
                    self.open = Some(b);
                    b
                }
            };
            let info = &mut self.blocks[open.index()];
            if info.written < self.pages_per_block {
                let ppa = Ppa::new(
                    open.index() as u64 * self.pages_per_block as u64 + info.written as u64,
                );
                info.written += 1;
                self.write_clock += 1;
                info.last_write = self.write_clock;
                if info.written == self.pages_per_block {
                    info.state = BlockState::Full;
                    self.open = None;
                }
                return Ok(ppa);
            }
            // Shouldn't happen (full blocks clear `open`), but be safe.
            info.state = BlockState::Full;
            self.open = None;
        }
    }

    /// Runs one GC round: erase the fullest-of-invalid block, migrating
    /// surviving pages. Returns pages migrated, or `None` if no victim
    /// exists.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::OutOfSpace`] if migration cannot allocate.
    pub fn gc_once(&mut self) -> Result<Option<usize>, FtlError> {
        // Victim selection per policy, over full (non-reserved) blocks.
        let candidates = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.state == BlockState::Full);
        let victim = match self.policy {
            GcPolicy::Greedy => candidates.min_by_key(|(_, b)| b.valid).map(|(i, _)| i),
            GcPolicy::CostBenefit => {
                let now = self.write_clock;
                candidates
                    .map(|(i, b)| {
                        let u = b.valid as f64 / self.pages_per_block as f64;
                        let age = (now.saturating_sub(b.last_write)) as f64 + 1.0;
                        let score = (1.0 - u) / (1.0 + u) * age;
                        (i, score)
                    })
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
                    .map(|(i, _)| i)
            }
        }
        .map(|i| BlockId::new(i as u32));
        let Some(victim) = victim else {
            return Ok(None);
        };
        if self.blocks[victim.index()].valid == self.pages_per_block {
            return Ok(None); // nothing to reclaim anywhere
        }
        let base = victim.index() as u64 * self.pages_per_block as u64;
        let mut migrated = 0usize;
        for off in 0..self.pages_per_block as u64 {
            if let Some(lpa) = self.rmap[(base + off) as usize].take() {
                let ppa = self.allocate_page()?;
                self.map[lpa as usize] = Some(ppa);
                self.rmap[ppa.index() as usize] = Some(lpa);
                self.block_of_mut(ppa).valid += 1;
                self.stats.gc_writes += 1;
                migrated += 1;
            }
        }
        let info = &mut self.blocks[victim.index()];
        info.state = BlockState::Free;
        info.written = 0;
        info.valid = 0;
        info.pe_cycles += 1;
        self.stats.erases += 1;
        self.free.push_back(victim);
        Ok(Some(migrated))
    }

    fn block_of_mut(&mut self, ppa: Ppa) -> &mut BlockInfo {
        let b = (ppa.index() / self.pages_per_block as u64) as usize;
        &mut self.blocks[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geo() -> FlashGeometry {
        FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 4, // 16 blocks
            pages_per_block: 8,
            page_size: 4096,
        }
    }

    #[test]
    fn write_then_translate() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        let p0 = ftl.write(0).unwrap();
        let p1 = ftl.write(1).unwrap();
        assert_ne!(p0, p1);
        assert_eq!(ftl.translate(0), Some(p0));
        assert_eq!(ftl.translate(1), Some(p1));
        assert_eq!(ftl.translate(2), None);
    }

    #[test]
    fn overwrite_invalidates_old_page() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        let p0 = ftl.write(0).unwrap();
        let p0b = ftl.write(0).unwrap();
        assert_ne!(p0, p0b);
        assert_eq!(ftl.translate(0), Some(p0b));
    }

    #[test]
    fn trim_clears_mapping() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        ftl.write(3).unwrap();
        ftl.trim(3);
        assert_eq!(ftl.translate(3), None);
    }

    #[test]
    fn lpa_out_of_range() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        let lpa = ftl.logical_pages();
        let err = ftl.write(lpa).unwrap_err();
        assert!(matches!(err, FtlError::LpaOutOfRange { .. }));
    }

    #[test]
    fn sustained_overwrites_trigger_gc_not_exhaustion() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        let logical = ftl.logical_pages();
        // Write the whole logical space 6 times; GC must reclaim.
        for round in 0..6 {
            for lpa in 0..logical {
                ftl.write(lpa)
                    .unwrap_or_else(|e| panic!("round {round} lpa {lpa}: {e}"));
            }
        }
        assert!(ftl.stats().erases > 0, "GC should have erased blocks");
        assert!(ftl.stats().waf() >= 1.0);
        // All mappings still valid and unique.
        let mut seen = std::collections::HashSet::new();
        for lpa in 0..logical {
            let ppa = ftl.translate(lpa).expect("mapped");
            assert!(seen.insert(ppa), "duplicate PPA {ppa}");
        }
    }

    #[test]
    fn reserved_blocks_excluded_from_allocation_and_gc() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        let reserved = ftl.reserve_blocks(2).unwrap();
        assert_eq!(reserved.len(), 2);
        for &b in &reserved {
            assert!(ftl.is_reserved(b));
        }
        // Churn half the logical space (reservation shrank the spare
        // pool); reserved blocks must keep zero written pages.
        let logical = ftl.logical_pages() / 2;
        for _ in 0..6 {
            for lpa in 0..logical {
                ftl.write(lpa).unwrap();
            }
        }
        for &b in &reserved {
            assert!(ftl.is_reserved(b), "{b} lost reservation during churn");
            assert_eq!(ftl.blocks[b.index()].written, 0);
            assert_eq!(
                ftl.blocks[b.index()].pe_cycles,
                0,
                "GC touched reserved {b}"
            );
        }
    }

    #[test]
    fn reserved_bitmap_matches_state() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        let reserved = ftl.reserve_blocks(3).unwrap();
        let bm = ftl.reserved_bitmap();
        assert_eq!(bm.count_set(), 3);
        for &b in &reserved {
            assert!(bm.get(b));
        }
        // Round-trips through the persisted byte form.
        let restored = crate::bitmap::BlockBitmap::from_bytes(bm.len(), &bm.to_bytes()).unwrap();
        assert_eq!(restored, bm);
        // Releasing clears the bit.
        ftl.release_block(reserved[0]).unwrap();
        assert!(!ftl.reserved_bitmap().get(reserved[0]));
    }

    #[test]
    fn reservation_too_large_rejected() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        let err = ftl.reserve_blocks(1000).unwrap_err();
        assert!(matches!(err, FtlError::ReservationTooLarge { .. }));
    }

    #[test]
    fn release_returns_block_to_free_pool() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        let before = ftl.free_blocks();
        let blocks = ftl.reserve_blocks(2).unwrap();
        assert_eq!(ftl.free_blocks(), before - 2);
        ftl.release_block(blocks[0]).unwrap();
        assert_eq!(ftl.free_blocks(), before - 1);
        assert!(!ftl.is_reserved(blocks[0]));
        // Releasing twice fails.
        assert!(matches!(
            ftl.release_block(blocks[0]),
            Err(FtlError::NotReserved(_))
        ));
    }

    #[test]
    fn wear_gap_grows_with_regular_churn() {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        let reserved = ftl.reserve_blocks(2).unwrap();
        ftl.record_reserved_pe(reserved[0]).unwrap();
        let logical = ftl.logical_pages();
        for _ in 0..8 {
            for lpa in 0..logical {
                ftl.write(lpa).unwrap();
            }
        }
        assert!(ftl.wear_gap() > 0.0, "gap {}", ftl.wear_gap());
        assert!(ftl.avg_pe_regular() > ftl.avg_pe_reserved());
    }

    /// Drives a hot/cold workload (90% of writes to 10% of LPAs) and
    /// returns the resulting WAF.
    fn hot_cold_waf(policy: GcPolicy) -> f64 {
        let mut ftl = Ftl::new(&small_geo(), 0.25);
        ftl.set_gc_policy(policy);
        assert_eq!(ftl.gc_policy(), policy);
        let logical = ftl.logical_pages();
        let hot = (logical / 10).max(1);
        // Fill everything once (cold data).
        for lpa in 0..logical {
            ftl.write(lpa).unwrap();
        }
        // Then hammer the hot set.
        let mut rng = simkit::SplitMix64::new(7);
        for _ in 0..logical * 20 {
            let lpa = if rng.next_f64() < 0.9 {
                rng.next_bounded(hot)
            } else {
                hot + rng.next_bounded(logical - hot)
            };
            ftl.write(lpa).unwrap();
        }
        ftl.stats().waf()
    }

    #[test]
    fn cost_benefit_matches_or_beats_greedy_on_hot_cold() {
        let greedy = hot_cold_waf(GcPolicy::Greedy);
        let cb = hot_cold_waf(GcPolicy::CostBenefit);
        assert!(greedy >= 1.0 && cb >= 1.0);
        // The LFS result: age-weighted selection avoids repeatedly
        // migrating cold data; allow a small tolerance.
        assert!(
            cb <= greedy * 1.10,
            "cost-benefit WAF {cb:.3} vs greedy {greedy:.3}"
        );
    }

    #[test]
    fn both_policies_preserve_mappings_under_churn() {
        for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit] {
            let mut ftl = Ftl::new(&small_geo(), 0.25);
            ftl.set_gc_policy(policy);
            let logical = ftl.logical_pages();
            for round in 0..5 {
                for lpa in 0..logical {
                    ftl.write(lpa)
                        .unwrap_or_else(|e| panic!("{policy:?} r{round}: {e}"));
                }
            }
            let mut seen = std::collections::HashSet::new();
            for lpa in 0..logical {
                let ppa = ftl.translate(lpa).expect("mapped");
                assert!(seen.insert(ppa), "{policy:?}: duplicate {ppa}");
            }
        }
    }

    #[test]
    fn stats_waf_sane() {
        let s = FtlStats {
            host_writes: 100,
            gc_writes: 25,
            erases: 3,
        };
        assert!((s.waf() - 1.25).abs() < 1e-12);
        assert_eq!(FtlStats::default().waf(), 1.0);
    }
}
