//! NVMe queue-pair model (paper §II-B2, Fig 3).
//!
//! The I/O poller serves host requests through paired submission and
//! completion rings in host memory, with head/tail doorbell registers on
//! the host interface. BeaconGNN adds customized commands on the same
//! transport (§VI-A): reserving physical blocks, flushing DirectGraph
//! pages into them, and launching mini-batched GNN jobs.
//!
//! This module is a functional ring model: fixed-size rings, doorbell
//! semantics, and completion phase bits, plus the byte-level encoding of
//! the standard and customized commands.

use std::fmt;

use directgraph::PhysAddr;

/// Commands accepted on a BeaconGNN NVMe queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmeCommand {
    /// Standard block read.
    Read {
        /// Logical page address.
        lpa: u64,
        /// Pages to read.
        npages: u16,
    },
    /// Standard block write.
    Write {
        /// Logical page address.
        lpa: u64,
        /// Pages to write.
        npages: u16,
    },
    /// Custom (§VI-A): reserve `count` physical blocks for DirectGraph.
    ReserveBlocks {
        /// Blocks requested.
        count: u32,
    },
    /// Custom (§VI-A): flush one DirectGraph page to a reserved block.
    FlushPage {
        /// Destination physical page.
        ppa: u64,
    },
    /// Custom (§VI-D): configure the GNN task (model + sampling shape).
    ConfigureGnn {
        /// Sampling hops.
        hops: u8,
        /// Fanout per hop.
        fanout: u16,
        /// Feature bytes per node.
        feature_bytes: u16,
        /// Mini-batch size.
        batch_size: u32,
    },
    /// Custom (§VI-D): start a mini-batch; the payload carries
    /// `(node, primary-section address)` pairs.
    StartBatch {
        /// Number of targets in the payload.
        targets: u32,
    },
}

/// A completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The command identifier being completed.
    pub cid: u16,
    /// Status code (0 = success).
    pub status: u16,
    /// Phase bit for host-side new-entry detection.
    pub phase: bool,
}

/// Errors from queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// Submission ring is full.
    SubmissionFull,
    /// Completion ring is full (host not reaping).
    CompletionFull,
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::SubmissionFull => write!(f, "submission queue full"),
            QueueError::CompletionFull => write!(f, "completion queue full"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A paired submission/completion queue with doorbell semantics.
///
/// # Examples
///
/// ```
/// use beacon_ssd::nvme::{NvmeCommand, QueuePair};
///
/// let mut qp = QueuePair::new(8);
/// let cid = qp.submit(NvmeCommand::Read { lpa: 7, npages: 1 }).unwrap();
/// let (popped_cid, cmd) = qp.device_pop().unwrap();
/// assert_eq!(popped_cid, cid);
/// assert_eq!(cmd, NvmeCommand::Read { lpa: 7, npages: 1 });
/// qp.device_complete(cid, 0).unwrap();
/// assert_eq!(qp.host_reap().unwrap().cid, cid);
/// ```
#[derive(Debug, Clone)]
pub struct QueuePair {
    depth: usize,
    sq: Vec<Option<(u16, NvmeCommand)>>,
    sq_tail: usize, // host-written doorbell
    sq_head: usize, // device-consumed
    cq: Vec<Option<Completion>>,
    cq_tail: usize, // device-written
    cq_head: usize, // host-reaped doorbell
    phase: bool,
    next_cid: u16,
    submitted: u64,
    completed: u64,
}

impl QueuePair {
    /// Creates a queue pair with `depth` entries per ring.
    ///
    /// # Panics
    ///
    /// Panics if `depth < 2` (NVMe requires at least two entries).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 2, "queue depth must be at least 2");
        QueuePair {
            depth,
            sq: vec![None; depth],
            sq_tail: 0,
            sq_head: 0,
            cq: vec![None; depth],
            cq_tail: 0,
            cq_head: 0,
            phase: true,
            next_cid: 0,
            submitted: 0,
            completed: 0,
        }
    }

    /// Ring depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Entries waiting for the device.
    pub fn sq_pending(&self) -> usize {
        (self.sq_tail + self.depth - self.sq_head) % self.depth
    }

    /// Completions waiting for the host.
    pub fn cq_pending(&self) -> usize {
        (self.cq_tail + self.depth - self.cq_head) % self.depth
    }

    /// Host side: submits a command and rings the tail doorbell;
    /// returns the command id.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::SubmissionFull`] when the ring has no slot
    /// (one slot is sacrificed to distinguish full from empty).
    pub fn submit(&mut self, cmd: NvmeCommand) -> Result<u16, QueueError> {
        let next_tail = (self.sq_tail + 1) % self.depth;
        if next_tail == self.sq_head {
            return Err(QueueError::SubmissionFull);
        }
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        self.sq[self.sq_tail] = Some((cid, cmd));
        self.sq_tail = next_tail;
        self.submitted += 1;
        Ok(cid)
    }

    /// Device side: pops the next submitted command (the poller's
    /// acquire step).
    pub fn device_pop(&mut self) -> Option<(u16, NvmeCommand)> {
        if self.sq_head == self.sq_tail {
            return None;
        }
        let entry = self.sq[self.sq_head].take().expect("occupied slot");
        self.sq_head = (self.sq_head + 1) % self.depth;
        Some(entry)
    }

    /// Device side: posts a completion with the current phase bit.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::CompletionFull`] if the host has not reaped.
    pub fn device_complete(&mut self, cid: u16, status: u16) -> Result<(), QueueError> {
        let next_tail = (self.cq_tail + 1) % self.depth;
        if next_tail == self.cq_head {
            return Err(QueueError::CompletionFull);
        }
        self.cq[self.cq_tail] = Some(Completion {
            cid,
            status,
            phase: self.phase,
        });
        self.cq_tail = next_tail;
        if self.cq_tail == 0 {
            // Ring wrapped: flip the phase so the host can tell new
            // entries from stale ones.
            self.phase = !self.phase;
        }
        self.completed += 1;
        Ok(())
    }

    /// Host side: reaps the next completion and rings the head doorbell.
    pub fn host_reap(&mut self) -> Option<Completion> {
        if self.cq_head == self.cq_tail {
            return None;
        }
        let c = self.cq[self.cq_head].take().expect("occupied slot");
        self.cq_head = (self.cq_head + 1) % self.depth;
        Some(c)
    }

    /// Total commands submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total completions posted.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

/// Opcode bytes of the command encoding.
mod opcode {
    pub const READ: u8 = 0x02;
    pub const WRITE: u8 = 0x01;
    pub const RESERVE: u8 = 0xC0;
    pub const FLUSH_PAGE: u8 = 0xC1;
    pub const CONFIGURE: u8 = 0xC2;
    pub const START_BATCH: u8 = 0xC3;
}

impl NvmeCommand {
    /// Encodes the command into a 16-byte DW-style representation
    /// (opcode + operands, little-endian).
    pub fn encode(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        match *self {
            NvmeCommand::Read { lpa, npages } => {
                b[0] = opcode::READ;
                b[1..9].copy_from_slice(&lpa.to_le_bytes());
                b[9..11].copy_from_slice(&npages.to_le_bytes());
            }
            NvmeCommand::Write { lpa, npages } => {
                b[0] = opcode::WRITE;
                b[1..9].copy_from_slice(&lpa.to_le_bytes());
                b[9..11].copy_from_slice(&npages.to_le_bytes());
            }
            NvmeCommand::ReserveBlocks { count } => {
                b[0] = opcode::RESERVE;
                b[1..5].copy_from_slice(&count.to_le_bytes());
            }
            NvmeCommand::FlushPage { ppa } => {
                b[0] = opcode::FLUSH_PAGE;
                b[1..9].copy_from_slice(&ppa.to_le_bytes());
            }
            NvmeCommand::ConfigureGnn {
                hops,
                fanout,
                feature_bytes,
                batch_size,
            } => {
                b[0] = opcode::CONFIGURE;
                b[1] = hops;
                b[2..4].copy_from_slice(&fanout.to_le_bytes());
                b[4..6].copy_from_slice(&feature_bytes.to_le_bytes());
                b[6..10].copy_from_slice(&batch_size.to_le_bytes());
            }
            NvmeCommand::StartBatch { targets } => {
                b[0] = opcode::START_BATCH;
                b[1..5].copy_from_slice(&targets.to_le_bytes());
            }
        }
        b
    }

    /// Decodes a command from its 16-byte representation.
    ///
    /// Returns `None` for unknown opcodes.
    pub fn decode(b: &[u8; 16]) -> Option<Self> {
        Some(match b[0] {
            opcode::READ => NvmeCommand::Read {
                lpa: u64::from_le_bytes(b[1..9].try_into().expect("8 bytes")),
                npages: u16::from_le_bytes([b[9], b[10]]),
            },
            opcode::WRITE => NvmeCommand::Write {
                lpa: u64::from_le_bytes(b[1..9].try_into().expect("8 bytes")),
                npages: u16::from_le_bytes([b[9], b[10]]),
            },
            opcode::RESERVE => NvmeCommand::ReserveBlocks {
                count: u32::from_le_bytes(b[1..5].try_into().expect("4 bytes")),
            },
            opcode::FLUSH_PAGE => NvmeCommand::FlushPage {
                ppa: u64::from_le_bytes(b[1..9].try_into().expect("8 bytes")),
            },
            opcode::CONFIGURE => NvmeCommand::ConfigureGnn {
                hops: b[1],
                fanout: u16::from_le_bytes([b[2], b[3]]),
                feature_bytes: u16::from_le_bytes([b[4], b[5]]),
                batch_size: u32::from_le_bytes(b[6..10].try_into().expect("4 bytes")),
            },
            opcode::START_BATCH => NvmeCommand::StartBatch {
                targets: u32::from_le_bytes(b[1..5].try_into().expect("4 bytes")),
            },
            _ => return None,
        })
    }
}

/// One `(node, primary-section address)` target record in a StartBatch
/// payload (§VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetRecord {
    /// Target node index.
    pub node: u32,
    /// Its primary-section physical address.
    pub addr: PhysAddr,
}

impl TargetRecord {
    /// Payload bytes per record.
    pub const BYTES: usize = 8;

    /// Encodes a batch payload.
    pub fn encode_batch(records: &[TargetRecord]) -> Vec<u8> {
        let mut out = Vec::with_capacity(records.len() * Self::BYTES);
        for r in records {
            out.extend_from_slice(&r.node.to_le_bytes());
            out.extend_from_slice(&r.addr.to_raw().to_le_bytes());
        }
        out
    }

    /// Decodes a batch payload.
    ///
    /// Returns `None` if the byte length is not a record multiple.
    pub fn decode_batch(bytes: &[u8]) -> Option<Vec<TargetRecord>> {
        if !bytes.len().is_multiple_of(Self::BYTES) {
            return None;
        }
        Some(
            bytes
                .chunks_exact(Self::BYTES)
                .map(|c| TargetRecord {
                    node: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    addr: PhysAddr::from_raw(u32::from_le_bytes([c[4], c[5], c[6], c[7]])),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_pop_complete_reap_cycle() {
        let mut qp = QueuePair::new(4);
        let cid = qp.submit(NvmeCommand::Read { lpa: 1, npages: 2 }).unwrap();
        assert_eq!(qp.sq_pending(), 1);
        let (pc, cmd) = qp.device_pop().unwrap();
        assert_eq!(pc, cid);
        assert!(matches!(cmd, NvmeCommand::Read { lpa: 1, npages: 2 }));
        qp.device_complete(cid, 0).unwrap();
        let c = qp.host_reap().unwrap();
        assert_eq!((c.cid, c.status), (cid, 0));
        assert_eq!(qp.submitted(), 1);
        assert_eq!(qp.completed(), 1);
    }

    #[test]
    fn submission_full_detected() {
        let mut qp = QueuePair::new(4);
        for _ in 0..3 {
            qp.submit(NvmeCommand::Read { lpa: 0, npages: 1 }).unwrap();
        }
        assert_eq!(
            qp.submit(NvmeCommand::Read { lpa: 0, npages: 1 }),
            Err(QueueError::SubmissionFull)
        );
    }

    #[test]
    fn completion_full_detected() {
        let mut qp = QueuePair::new(4);
        for _ in 0..3 {
            let cid = qp.submit(NvmeCommand::Read { lpa: 0, npages: 1 }).unwrap();
            qp.device_pop();
            qp.device_complete(cid, 0).unwrap();
        }
        let cid = qp.submit(NvmeCommand::Read { lpa: 0, npages: 1 }).unwrap();
        qp.device_pop();
        assert_eq!(qp.device_complete(cid, 0), Err(QueueError::CompletionFull));
    }

    #[test]
    fn phase_bit_flips_on_wrap() {
        let mut qp = QueuePair::new(2);
        // Depth 2: the ring wraps every second completion, flipping the
        // phase the host uses to detect fresh entries.
        let mut phases = Vec::new();
        for _ in 0..4 {
            let cid = qp.submit(NvmeCommand::Read { lpa: 0, npages: 1 }).unwrap();
            qp.device_pop();
            qp.device_complete(cid, 0).unwrap();
            phases.push(qp.host_reap().unwrap().phase);
        }
        assert_eq!(phases, vec![true, true, false, false]);
    }

    #[test]
    fn ring_wraps_many_times() {
        let mut qp = QueuePair::new(3);
        for i in 0..100u64 {
            let cid = qp.submit(NvmeCommand::Write { lpa: i, npages: 1 }).unwrap();
            let (pc, cmd) = qp.device_pop().unwrap();
            assert_eq!(pc, cid);
            assert_eq!(cmd, NvmeCommand::Write { lpa: i, npages: 1 });
            qp.device_complete(cid, 0).unwrap();
            assert_eq!(qp.host_reap().unwrap().cid, cid);
        }
        assert_eq!(qp.submitted(), 100);
    }

    #[test]
    fn command_encoding_roundtrips() {
        let cmds = [
            NvmeCommand::Read {
                lpa: 0xDEAD_BEEF_CAFE,
                npages: 17,
            },
            NvmeCommand::Write { lpa: 42, npages: 1 },
            NvmeCommand::ReserveBlocks { count: 1000 },
            NvmeCommand::FlushPage {
                ppa: 0x1234_5678_9ABC,
            },
            NvmeCommand::ConfigureGnn {
                hops: 3,
                fanout: 3,
                feature_bytes: 400,
                batch_size: 256,
            },
            NvmeCommand::StartBatch { targets: 256 },
        ];
        for cmd in cmds {
            assert_eq!(NvmeCommand::decode(&cmd.encode()), Some(cmd));
        }
        assert_eq!(NvmeCommand::decode(&[0xFFu8; 16]), None);
    }

    #[test]
    fn target_records_roundtrip() {
        let records: Vec<TargetRecord> = (0..10)
            .map(|i| TargetRecord {
                node: i,
                addr: PhysAddr::from_raw(i * 16 + 3),
            })
            .collect();
        let bytes = TargetRecord::encode_batch(&records);
        assert_eq!(bytes.len(), 80);
        assert_eq!(TargetRecord::decode_batch(&bytes), Some(records));
        assert_eq!(TargetRecord::decode_batch(&bytes[..7]), None);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_queue_rejected() {
        QueuePair::new(1);
    }
}
