//! The channel-level command router (paper §V-B, Fig 12).
//!
//! In BeaconGNN-2.0 the flash interface controller is customized so
//! sampling commands flow die-to-die without firmware: when a sampling
//! command completes, a **data-stream parser** splits its results into
//! feature vectors (DMA'd to DRAM) and new sampling commands, which a
//! **crossbar** forwards to the destination channel, where per-die
//! **dispatch queues** buffer them until a **round-robin command
//! issuer** finds the die idle.
//!
//! This module is the functional half of that hardware: the queues, the
//! round-robin issue order, the address-based routing, and occupancy
//! statistics. The timing half (when a die is idle, how long the
//! crossbar hop takes) lives in the `beacon-platforms` engine.

use std::collections::VecDeque;

use beacon_flash::{DieId, FlashGeometry, SampleCommand};
use directgraph::AddrLayout;

/// Router occupancy and traffic statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Commands routed through the crossbar.
    pub routed: u64,
    /// Commands that crossed between different channels.
    pub cross_channel: u64,
    /// Commands issued to dies.
    pub issued: u64,
    /// High-water mark of any single dispatch queue.
    pub max_queue_depth: usize,
}

impl RouterStats {
    /// Writes the stats into one section of a per-run metrics report.
    pub fn record_into(&self, s: &mut simkit::obs::Section) {
        s.set_u64("routed", self.routed);
        s.set_u64("cross_channel", self.cross_channel);
        s.set_u64("issued", self.issued);
        s.set_u64("max_queue_depth", self.max_queue_depth as u64);
    }
}

/// The per-channel dispatch queues + crossbar of the BG-2 backend.
///
/// # Examples
///
/// ```
/// use beacon_flash::{FlashGeometry, SampleCommand};
/// use beacon_ssd::CommandRouter;
/// use directgraph::{AddrLayout, PageIndex};
///
/// let geo = FlashGeometry::paper_default();
/// let layout = AddrLayout::for_page_size(4096).unwrap();
/// let mut router = CommandRouter::new(&geo, layout);
/// let cmd = SampleCommand::root(layout.pack(PageIndex::new(5), 0), 0);
/// let die = router.route(cmd);
/// assert_eq!(die.channel(&geo), 5); // page 5 stripes to channel 5
/// ```
#[derive(Debug, Clone)]
pub struct CommandRouter {
    geometry: FlashGeometry,
    layout: AddrLayout,
    /// One dispatch queue per die (flattened die id order).
    queues: Vec<VecDeque<SampleCommand>>,
    /// Per-channel round-robin cursor over its dies.
    rr_cursor: Vec<usize>,
    stats: RouterStats,
}

impl CommandRouter {
    /// Creates a router for the given backend geometry and address
    /// layout.
    pub fn new(geometry: &FlashGeometry, layout: AddrLayout) -> Self {
        CommandRouter {
            geometry: *geometry,
            layout,
            queues: vec![VecDeque::new(); geometry.total_dies()],
            rr_cursor: vec![0; geometry.channels],
            stats: RouterStats::default(),
        }
    }

    /// Routes a command through the crossbar into its destination die's
    /// dispatch queue, returning the die. `source_channel` (if known)
    /// feeds the cross-channel traffic statistic.
    pub fn route_from(&mut self, cmd: SampleCommand, source_channel: Option<usize>) -> DieId {
        let (page, _) = self.layout.unpack(cmd.target);
        let die = self.geometry.die_of(page);
        if let Some(src) = source_channel {
            if src != die.channel(&self.geometry) {
                self.stats.cross_channel += 1;
            }
        }
        let q = &mut self.queues[die.index()];
        q.push_back(cmd);
        self.stats.routed += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(q.len());
        die
    }

    /// Routes a command with no known source channel (host-injected
    /// mini-batch roots).
    pub fn route(&mut self, cmd: SampleCommand) -> DieId {
        self.route_from(cmd, None)
    }

    /// The round-robin command issuer for one channel: starting after
    /// the last-issued die, finds the first die that `die_idle` reports
    /// idle *and* has a queued command, pops it, and returns it.
    ///
    /// Returns `None` when no (idle die, queued command) pair exists on
    /// the channel.
    pub fn issue_for_channel(
        &mut self,
        channel: usize,
        mut die_idle: impl FnMut(DieId) -> bool,
    ) -> Option<(DieId, SampleCommand)> {
        let dies = self.geometry.dies_per_channel;
        let start = self.rr_cursor[channel];
        for i in 0..dies {
            let die_in_channel = (start + i) % dies;
            let die = DieId::new((die_in_channel * self.geometry.channels + channel) as u32);
            if !die_idle(die) {
                continue;
            }
            if let Some(cmd) = self.queues[die.index()].pop_front() {
                self.rr_cursor[channel] = (die_in_channel + 1) % dies;
                self.stats.issued += 1;
                return Some((die, cmd));
            }
        }
        None
    }

    /// Queued commands waiting for `die`.
    pub fn queue_depth(&self, die: DieId) -> usize {
        self.queues[die.index()].len()
    }

    /// Total queued commands across all dispatch queues.
    pub fn total_queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Returns `true` if every dispatch queue is empty.
    pub fn is_drained(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Traffic statistics.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use directgraph::PageIndex;

    fn setup() -> (CommandRouter, FlashGeometry, AddrLayout) {
        let geo = FlashGeometry {
            channels: 4,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 64,
            page_size: 4096,
        };
        let layout = AddrLayout::for_page_size(4096).unwrap();
        (CommandRouter::new(&geo, layout), geo, layout)
    }

    fn cmd_for_page(layout: AddrLayout, page: u64) -> SampleCommand {
        SampleCommand::root(layout.pack(PageIndex::new(page), 0), 0)
    }

    #[test]
    fn routes_by_page_striping() {
        let (mut router, geo, layout) = setup();
        for page in 0..8u64 {
            let die = router.route(cmd_for_page(layout, page));
            assert_eq!(die, geo.die_of(PageIndex::new(page)));
        }
        assert_eq!(router.stats().routed, 8);
        assert_eq!(router.total_queued(), 8);
        assert!(!router.is_drained());
    }

    #[test]
    fn cross_channel_traffic_counted() {
        let (mut router, _, layout) = setup();
        // Page 1 -> channel 1; source channel 1 (same) then 0 (cross).
        router.route_from(cmd_for_page(layout, 1), Some(1));
        router.route_from(cmd_for_page(layout, 1), Some(0));
        assert_eq!(router.stats().cross_channel, 1);
    }

    #[test]
    fn round_robin_is_fair() {
        let (mut router, geo, layout) = setup();
        // Queue 3 commands on each of channel 0's two dies
        // (pages 0 and 4 stripe to channel 0, dies 0 and 1).
        for _ in 0..3 {
            router.route(cmd_for_page(layout, 0));
            router.route(cmd_for_page(layout, 4));
        }
        let mut order = Vec::new();
        while let Some((die, _)) = router.issue_for_channel(0, |_| true) {
            order.push(die.die_in_channel(&geo));
        }
        // Strict alternation between the two dies.
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(router.stats().issued, 6);
        assert!(router.is_drained());
    }

    #[test]
    fn busy_dies_are_skipped() {
        let (mut router, geo, layout) = setup();
        router.route(cmd_for_page(layout, 0)); // die 0 of channel 0
        router.route(cmd_for_page(layout, 4)); // die 1 of channel 0
                                               // Die 0 busy: issuer must pick die 1.
        let (die, _) = router
            .issue_for_channel(0, |d| d.die_in_channel(&geo) == 1)
            .expect("die 1 available");
        assert_eq!(die.die_in_channel(&geo), 1);
        // All dies busy: nothing to issue.
        assert!(router.issue_for_channel(0, |_| false).is_none());
    }

    #[test]
    fn empty_channel_issues_nothing() {
        let (mut router, _, _) = setup();
        assert!(router.issue_for_channel(2, |_| true).is_none());
    }

    #[test]
    fn queue_depth_highwater() {
        let (mut router, geo, layout) = setup();
        for _ in 0..5 {
            router.route(cmd_for_page(layout, 0));
        }
        assert_eq!(router.stats().max_queue_depth, 5);
        assert_eq!(router.queue_depth(geo.die_of(PageIndex::new(0))), 5);
    }
}
